//! Terminal charts for the figure binaries.
//!
//! Every figure binary prints the numeric series the paper plots; this
//! module renders the same series as a quick ASCII chart so curve shapes
//! (log vs linear, dips, crossovers) are visible without leaving the
//! terminal.

/// One named series of `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Points, assumed sorted by `x`.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Build a series from a label and points.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }
}

/// Markers assigned to successive series.
const MARKS: [char; 6] = ['o', 'x', '+', '*', '#', '@'];

/// Render series as an ASCII scatter/line chart of the given size.
///
/// The y axis is linear; use [`render_log`] for log-scale data. Returns a
/// multi-line string ending with an x-range line and a legend.
pub fn render(series: &[Series], width: usize, height: usize) -> String {
    render_with(series, width, height, false)
}

/// Render with a log₁₀ y axis (for Fig. 4-style magnitude plots).
pub fn render_log(series: &[Series], width: usize, height: usize) -> String {
    render_with(series, width, height, true)
}

fn render_with(series: &[Series], width: usize, height: usize, log_y: bool) -> String {
    let width = width.max(16);
    let height = height.max(4);
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .filter(|(x, y)| x.is_finite() && y.is_finite() && (!log_y || *y > 0.0))
        .collect();
    if all.is_empty() {
        return "(no data)\n".into();
    }
    let ty = |y: f64| if log_y { y.log10() } else { y };
    let (mut x_min, mut x_max) = (f64::MAX, f64::MIN);
    let (mut y_min, mut y_max) = (f64::MAX, f64::MIN);
    for &(x, y) in &all {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(ty(y));
        y_max = y_max.max(ty(y));
    }
    if (x_max - x_min).abs() < f64::EPSILON {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < f64::EPSILON {
        y_max = y_min + 1.0;
    }

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let mark = MARKS[si % MARKS.len()];
        for &(x, y) in &s.points {
            if !x.is_finite() || !y.is_finite() || (log_y && y <= 0.0) {
                continue;
            }
            let cx = (((x - x_min) / (x_max - x_min)) * (width - 1) as f64).round() as usize;
            let cy = (((ty(y) - y_min) / (y_max - y_min)) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            grid[row][cx.min(width - 1)] = mark;
        }
    }

    let fmt = |v: f64| -> String {
        if log_y {
            format!("1e{v:.1}")
        } else if v.abs() >= 1000.0 {
            format!("{:.0}", v)
        } else {
            format!("{v:.1}")
        }
    };
    let mut out = String::new();
    let y_label_top = fmt(y_max);
    let y_label_bot = fmt(y_min);
    let label_w = y_label_top.len().max(y_label_bot.len());
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{y_label_top:>label_w$}")
        } else if i == height - 1 {
            format!("{y_label_bot:>label_w$}")
        } else {
            " ".repeat(label_w)
        };
        out.push_str(&label);
        out.push_str(" |");
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&" ".repeat(label_w + 2));
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "{}x: {} .. {}   ",
        " ".repeat(label_w + 2),
        x_min,
        x_max
    ));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("[{}] {}  ", MARKS[si % MARKS.len()], s.label));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_series() -> Series {
        Series::new("lin", (0..10).map(|i| (i as f64, i as f64 * 2.0)).collect())
    }

    #[test]
    fn renders_marks_and_legend() {
        let out = render(&[linear_series()], 40, 10);
        assert!(out.contains('o'));
        assert!(out.contains("[o] lin"));
        assert!(out.contains("x: 0 .. 9"));
        assert_eq!(out.lines().count(), 12, "10 rows + axis + legend");
    }

    #[test]
    fn two_series_distinct_marks() {
        let a = linear_series();
        let b = Series::new("flat", (0..10).map(|i| (i as f64, 5.0)).collect());
        let out = render(&[a, b], 40, 8);
        assert!(out.contains('o'));
        assert!(out.contains('x'));
        assert!(out.contains("[x] flat"));
    }

    #[test]
    fn log_axis_spreads_magnitudes() {
        let s = Series::new("mag", vec![(1.0, 10.0), (2.0, 1_000.0), (3.0, 100_000.0)]);
        let out = render_log(&[s], 30, 9);
        // Top label is 1e5, bottom 1e1.
        assert!(out.contains("1e5.0"));
        assert!(out.contains("1e1.0"));
    }

    #[test]
    fn empty_series_no_panic() {
        assert_eq!(render(&[], 40, 10), "(no data)\n");
        let s = Series::new("nan", vec![(f64::NAN, 1.0)]);
        assert_eq!(render(&[s], 40, 10), "(no data)\n");
    }

    #[test]
    fn single_point_no_div_by_zero() {
        let s = Series::new("pt", vec![(5.0, 7.0)]);
        let out = render(&[s], 20, 5);
        assert!(out.contains('o'));
    }

    #[test]
    fn monotone_line_is_monotone_in_grid() {
        // The first mark column-by-column must not move upward as x grows
        // for a decreasing series.
        let s = Series::new(
            "dec",
            (0..20)
                .map(|i| (i as f64, 100.0 - 4.0 * i as f64))
                .collect(),
        );
        let out = render(&[s], 40, 12);
        let rows: Vec<&str> = out.lines().take(12).collect();
        let mut last_row_of_col = None;
        for col in 0..40 {
            for (r, row) in rows.iter().enumerate() {
                let cells: Vec<char> = row.chars().collect();
                // Skip the label prefix (find the '|').
                let bar = cells.iter().position(|&c| c == '|').unwrap();
                if cells.get(bar + 1 + col) == Some(&'o') {
                    if let Some(prev) = last_row_of_col {
                        assert!(r >= prev, "decreasing series went up");
                    }
                    last_row_of_col = Some(r);
                }
            }
        }
    }
}
