//! `bench_suite` — the fixed macrobench matrix behind `BENCH_ROADS.json`.
//!
//! Runs every macrobench the repository tracks for performance
//! regressions and writes one [`BenchReport`] document (schema in
//! [`roads_bench::suite`]):
//!
//! * `build_1t` / `build_4t` — wall time of the hierarchical network
//!   build, sequential and with 4 worker threads.
//! * `update_round` — wall time of one full summary-propagation round on
//!   the built network.
//! * `update_round_full` / `update_round_delta` — wall time of a
//!   rebuild-everything propagation round vs the incremental delta round
//!   over the same churn workload (a fraction of a large record
//!   population updated per round); the suite asserts the delta path
//!   stays at least 10x faster before the artifact is written.
//! * `qps_overlay` / `qps_root` — live query-plane throughput with 4
//!   client threads, entry servers spread via the replication overlay vs
//!   all funneled through the root.
//! * `failover_recovery` — response time of a full-coverage query issued
//!   right after a branch server is killed: the time the overlay needs
//!   to detect the death and route around it.
//! * `qps_planner` — the `qps_overlay` workload re-run on a cluster with
//!   the replica-aware set-cover planner and the TTL'd result cache
//!   enabled; the suite first asserts planned dispatch reproduces greedy
//!   recall exactly and never contacts more servers.
//!
//! ```text
//! bench_suite [--smoke] [--out PATH]
//! ```
//!
//! `--smoke` shrinks the matrix for CI (seconds, not minutes); `--out`
//! overrides the default output path, which is
//! `$ROADS_RESULTS_DIR/BENCH_ROADS.json` (`results/BENCH_ROADS.json`
//! when the variable is unset — the same directory every `fig*` binary
//! writes to). Compare two reports with `roads-inspect bench-diff OLD
//! NEW --fail-over <pct>`.
//!
//! The live-cluster phases run with a flight recorder and tail-based
//! sampler attached, so alongside the bench report the suite writes
//! `SLOW_QUERIES.json` (next to `--out`): the tail-sampler report of the
//! slowest / failed / incomplete queries of the run with full
//! [`QueryExplain`] provenance, inspectable with `roads-inspect explain`
//! and `roads-inspect slow` and validated by `roads-inspect check`.
//!
//! A background [`Auditor`] additionally samples summary ground truth
//! throughout the run and writes `AUDIT.json` (also next to `--out`):
//! cumulative per-level FP/FN counts, overlay divergence and staleness,
//! inspectable with `roads-inspect audit` and validated by
//! `roads-inspect check`.
//!
//! The planner phase writes two more artifacts next to `--out`:
//! `PLAN.json` — the planner/cache summary ([`PlanReport`], inspectable
//! with `roads-inspect plan` and validated by `roads-inspect check`) —
//! and `PLANNER_METRICS.txt`, the final OpenMetrics scrape of the
//! planner cluster's registry (the `roads.planner.*` and `roads.cache.*`
//! families CI asserts against).
//!
//! The churn phase writes `DELTA.json` next to `--out`: the
//! incremental-update summary ([`DeltaReport`], inspectable with
//! `roads-inspect delta` and validated by `roads-inspect check`,
//! which re-enforces the 10x floor offline).
//!
//! A background [`Watchdog`] also runs across the whole live-cluster
//! phase — the standard detector bank over the live registry — and the
//! suite writes `INCIDENTS.json` next to `--out`: the coalesced
//! incident timeline with fault correlation and suspected-cause
//! rankings, inspectable with `roads-inspect incidents` and validated
//! by `roads-inspect check`. The failover phase's kills (and the brief
//! straggler episode the suite injects after them) are the ground
//! truth those incidents are matched against.
//!
//! [`DeltaReport`]: roads_bench::delta_view::DeltaReport
//! [`PlanReport`]: roads_bench::plan_view::PlanReport
//! [`QueryExplain`]: roads_telemetry::QueryExplain

use roads_bench::delta_view::{DeltaReport, DELTA_SCHEMA_VERSION};
use roads_bench::plan_view::{PlanReport, PLAN_SCHEMA_VERSION};
use roads_bench::suite::{print_metrics_digest, BenchRecord, BenchReport};
use roads_core::{
    update_round_delta, update_round_full, BuildOptions, RecordDelta, RoadsConfig, RoadsNetwork,
    ServerId,
};
use roads_netsim::DelaySpace;
use roads_records::{OwnerId, Query, QueryBuilder, QueryId, Record, RecordId, Schema, Value};
use roads_runtime::{
    AuditConfig, AuditMetrics, Auditor, RoadsCluster, RuntimeConfig, Watchdog, WatchdogConfig,
};
use roads_summary::SummaryConfig;
use roads_telemetry::{results_dir, OpenMetricsSnapshot, Recorder, Registry, TailSampler};
use roads_workload::{default_schema, generate_node_records, RecordWorkloadConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Matrix dimensions, scaled by `--smoke`.
struct Matrix {
    config: &'static str,
    build_nodes: usize,
    build_records: usize,
    build_attrs: usize,
    build_buckets: usize,
    build_repeats: usize,
    update_repeats: usize,
    delta_servers: usize,
    delta_records_per_server: usize,
    delta_churn: f64,
    delta_repeats: usize,
    cluster_servers: usize,
    cluster_queries: usize,
    qps_repeats: usize,
    failover_repeats: usize,
}

impl Matrix {
    fn full() -> Matrix {
        Matrix {
            config: "full",
            build_nodes: 160,
            build_records: 200,
            build_attrs: 16,
            build_buckets: 500,
            build_repeats: 3,
            update_repeats: 5,
            delta_servers: 64,
            delta_records_per_server: 15_625, // 1M records total
            delta_churn: 0.01,
            delta_repeats: 3,
            cluster_servers: 24,
            cluster_queries: 96,
            qps_repeats: 3,
            failover_repeats: 5,
        }
    }

    fn smoke() -> Matrix {
        Matrix {
            config: "smoke",
            build_nodes: 48,
            build_records: 40,
            build_attrs: 8,
            build_buckets: 128,
            build_repeats: 2,
            update_repeats: 3,
            // The delta row keeps the full 1M-record scale even in smoke:
            // the >=10x delta-vs-full guarantee is a DRAM-resident-scale
            // property (at cache-friendly sizes the full rebuild is
            // proportionally cheaper), so shrinking it would assert a
            // different claim. Only the repeat count drops.
            delta_servers: 64,
            delta_records_per_server: 15_625, // 1M records total
            delta_churn: 0.01,
            delta_repeats: 2,
            cluster_servers: 13,
            cluster_queries: 32,
            qps_repeats: 2,
            failover_repeats: 3,
        }
    }
}

fn time_ms(f: impl FnOnce()) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64() * 1000.0
}

/// The build-plane workload (figure-scale records across many nodes).
fn build_workload(m: &Matrix) -> (Schema, RoadsConfig, Vec<Vec<Record>>) {
    let schema = default_schema(m.build_attrs);
    let cfg = RoadsConfig {
        max_children: 8,
        summary: SummaryConfig::with_buckets(m.build_buckets),
        ..RoadsConfig::paper_default()
    };
    let records = generate_node_records(&RecordWorkloadConfig {
        nodes: m.build_nodes,
        records_per_node: m.build_records,
        attrs: m.build_attrs,
        seed: 42,
    });
    (schema, cfg, records)
}

fn churn_record(id: u64, x: f64) -> Record {
    Record::new_unchecked(
        RecordId(id),
        OwnerId((id % 1000) as u32),
        vec![Value::Float(x), Value::Float((x * 7.0).fract())],
    )
}

/// The churn workload: a large, evenly spread two-attribute population
/// sharded over many servers; each round updates a fraction of it in
/// place.
fn delta_net(servers: usize, per: usize) -> RoadsNetwork {
    let schema = Schema::unit_numeric(2);
    let cfg = RoadsConfig {
        max_children: 8,
        summary: SummaryConfig::with_buckets(128),
        ..RoadsConfig::paper_default()
    };
    let total = (servers * per) as f64;
    let records: Vec<Vec<Record>> = (0..servers)
        .map(|s| {
            (0..per)
                .map(|i| {
                    let id = s * per + i;
                    churn_record(id as u64, id as f64 / total)
                })
                .collect()
        })
        .collect();
    RoadsNetwork::build_with(schema, cfg, records, BuildOptions::with_threads(4))
}

/// One churn round: `fraction` of the population updated in place, ids
/// and values deterministic so repeats are comparable. The 9973 stride is
/// prime to the matrix's population sizes, so every round touches
/// distinct records.
fn churn_delta(servers: usize, per: usize, fraction: f64, round: u64) -> RecordDelta {
    let total = servers * per;
    let changes = ((total as f64 * fraction) as usize).max(1);
    let mut delta = RecordDelta::new();
    for j in 0..changes {
        let id = (j * 9973 + round as usize * 131) % total;
        let x = ((id as f64 / total as f64) + 0.37 * (round + 1) as f64).fract();
        delta.update(ServerId((id / per) as u32), churn_record(id as u64, x));
    }
    delta
}

/// The live-cluster workload: one numeric attribute, evenly spread
/// records, so every 0.25-length range matches somewhere.
fn cluster_net(n: usize) -> RoadsNetwork {
    const RECORDS_PER_SERVER: usize = 10;
    let schema = Schema::unit_numeric(1);
    let cfg = RoadsConfig {
        max_children: 3,
        summary: SummaryConfig::with_buckets(128),
        ..RoadsConfig::paper_default()
    };
    let records: Vec<Vec<Record>> = (0..n)
        .map(|s| {
            (0..RECORDS_PER_SERVER)
                .map(|i| {
                    let id = s * RECORDS_PER_SERVER + i;
                    Record::new_unchecked(
                        RecordId(id as u64),
                        OwnerId(s as u32),
                        vec![Value::Float(id as f64 / (n * RECORDS_PER_SERVER) as f64)],
                    )
                })
                .collect()
        })
        .collect();
    RoadsNetwork::build(schema, cfg, records)
}

fn cluster_config() -> RuntimeConfig {
    RuntimeConfig {
        dispatch_timeout_ms: 400,
        max_retries: 1,
        backoff_base_ms: 10,
        query_deadline_ms: 20_000,
        delay_scale: 0.1,
        per_record_retrieval_us: 150,
        base_query_cost_us: 1_000,
        max_inflight_queries: 64,
        ..RuntimeConfig::paper_like()
    }
}

/// Sliding 0.25-length ranges; entries stride the federation when
/// `spread`, else all enter at the root.
fn queries(
    schema: &Schema,
    n: usize,
    count: usize,
    root: ServerId,
    spread: bool,
) -> Vec<(Query, ServerId)> {
    (0..count)
        .map(|i| {
            let lo = 0.75 * (i as f64 * 0.37).fract();
            let q = QueryBuilder::new(schema, QueryId(i as u64))
                .range("x0", lo, lo + 0.25)
                .build();
            let entry = if spread {
                ServerId(((i * 7 + 3) % n) as u32)
            } else {
                root
            };
            (q, entry)
        })
        .collect()
}

fn measure_qps(c: &RoadsCluster, workload: &[(Query, ServerId)], threads: usize) -> f64 {
    let cursor = AtomicUsize::new(0);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= workload.len() {
                    break;
                }
                let (q, entry) = &workload[i];
                let out = c.query(q, *entry);
                assert!(!out.records.is_empty(), "every range matches something");
            });
        }
    });
    workload.len() as f64 / t0.elapsed().as_secs_f64()
}

/// The first non-root server with children: killing it forces the
/// overlay to detect the death and re-route its subtree.
fn a_branch(net: &RoadsNetwork) -> ServerId {
    let tree = net.tree();
    (0..net.len() as u32)
        .map(ServerId)
        .find(|&s| s != tree.root() && !tree.children(s).is_empty())
        .expect("hierarchy has an internal non-root server")
}

fn main() {
    let mut smoke = false;
    let mut out = results_dir().join("BENCH_ROADS.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" | "--quick" => smoke = true,
            "--out" => match args.next() {
                Some(p) => out = PathBuf::from(p),
                None => {
                    eprintln!("error: --out requires a path");
                    std::process::exit(2);
                }
            },
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
    }
    if let Some(dir) = out.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: could not create {}: {e}", dir.display());
            std::process::exit(1);
        }
    }
    let m = if smoke {
        Matrix::smoke()
    } else {
        Matrix::full()
    };
    println!("==================================================================");
    println!("bench_suite — macrobench matrix ({})", m.config);
    println!("==================================================================");

    let mut benches = Vec::new();

    // --- Build plane: sequential vs 4 worker threads. -------------------
    let (schema, roads_cfg, records) = build_workload(&m);
    for (bench, threads) in [("build_1t", 1usize), ("build_4t", 4)] {
        let samples: Vec<f64> = (0..m.build_repeats)
            .map(|_| {
                time_ms(|| {
                    let net = RoadsNetwork::build_with(
                        schema.clone(),
                        roads_cfg,
                        records.clone(),
                        BuildOptions::with_threads(threads),
                    );
                    assert_eq!(net.len(), m.build_nodes);
                })
            })
            .collect();
        let r = BenchRecord::from_samples(bench, "ms", &samples);
        println!("{:<20} {:>10.1} ms (p99 {:.1})", r.name, r.value, r.p99);
        benches.push(r);
    }

    // --- Update propagation: one full summary round. ---------------------
    let net = RoadsNetwork::build_with(
        schema.clone(),
        roads_cfg,
        records.clone(),
        BuildOptions::with_threads(4),
    );
    let samples: Vec<f64> = (0..m.update_repeats)
        .map(|_| {
            time_ms(|| {
                roads_core::update_round(&net);
            })
        })
        .collect();
    let r = BenchRecord::from_samples("update_round", "ms", &samples);
    println!("{:<20} {:>10.1} ms (p99 {:.1})", r.name, r.value, r.p99);
    benches.push(r);
    drop(net);

    // --- Incremental update path: full rebuild round vs delta round. -----
    // The full path re-aggregates every shard summary from its records
    // before propagating; the delta path folds only the changed records
    // into their shards and re-aggregates only the dirty branch closure.
    let mut dnet = delta_net(m.delta_servers, m.delta_records_per_server);
    let total_records = (m.delta_servers * m.delta_records_per_server) as u64;
    let mut full_bytes = 0u64;
    let full_samples: Vec<f64> = (0..m.delta_repeats)
        .map(|_| {
            time_ms(|| {
                full_bytes = update_round_full(&mut dnet).total_bytes();
            })
        })
        .collect();
    let full = BenchRecord::from_samples("update_round_full", "ms", &full_samples);
    println!(
        "{:<20} {:>10.1} ms (p99 {:.1})",
        full.name, full.value, full.p99
    );
    // Deltas are generated outside the timer; each round touches a
    // distinct deterministic slice of the population.
    let deltas: Vec<RecordDelta> = (0..m.delta_repeats)
        .map(|r| {
            churn_delta(
                m.delta_servers,
                m.delta_records_per_server,
                m.delta_churn,
                r as u64,
            )
        })
        .collect();
    let mut delta_bytes = 0u64;
    let mut last_outcome = None;
    let delta_samples: Vec<f64> = deltas
        .iter()
        .map(|d| {
            time_ms(|| {
                let (b, o) = update_round_delta(&mut dnet, d);
                delta_bytes = b.total_bytes();
                last_outcome = Some(o);
            })
        })
        .collect();
    let delta = BenchRecord::from_samples("update_round_delta", "ms", &delta_samples);
    println!(
        "{:<20} {:>10.1} ms (p99 {:.1})",
        delta.name, delta.value, delta.p99
    );
    let speedup = full.value / delta.value;
    assert!(
        speedup >= 10.0,
        "delta round must stay >= 10x faster than the full round \
         (got {speedup:.1}x: {:.1} ms vs {:.1} ms)",
        full.value,
        delta.value
    );
    let outcome = last_outcome.expect("at least one delta round");
    let delta_report = DeltaReport {
        schema_version: DELTA_SCHEMA_VERSION,
        config: m.config.to_string(),
        servers: m.delta_servers as u64,
        records: total_records,
        churn_changes: deltas.last().map_or(0, |d| d.len()) as u64,
        full_ms: full.value,
        delta_ms: delta.value,
        speedup,
        full_bytes,
        delta_bytes,
        applied: outcome.applied,
        rejected: outcome.rejected,
        dirty_servers: outcome.dirty.len() as u64,
        dirty_branches: outcome.dirty_branches.len() as u64,
        shard_rebuilds: outcome.shard_rebuilds,
    };
    benches.push(full);
    benches.push(delta);
    drop(dnet);

    // --- Live query plane: overlay-spread vs root-only entry. -----------
    let n = m.cluster_servers;
    let reg = Arc::new(Registry::new());
    let mut cluster = RoadsCluster::start_instrumented(
        cluster_net(n),
        DelaySpace::paper(n, 31),
        cluster_config(),
        &reg,
    );
    // Tail-based sampling over the whole live-cluster run: slow / failed /
    // incomplete queries keep their explain record + flight-recorder trace.
    let recorder = Arc::new(Recorder::new(65_536));
    let tail = TailSampler::shared();
    cluster.set_recorder(Arc::clone(&recorder));
    cluster.set_tail_sampler(Arc::clone(&tail));
    // Summary-fidelity auditing over the whole live-cluster run: live
    // branch outcomes fold into `audit.live_*`, a background auditor
    // samples ground truth on a budget, and the final AUDIT.json lands
    // next to the bench report.
    let audit_metrics = Arc::new(AuditMetrics::new(&reg, cluster.network().tree().levels()));
    cluster.set_audit_metrics(Arc::clone(&audit_metrics));
    let root = cluster.network().tree().root();
    let cschema = cluster.network().schema().clone();
    let audit_probes: Vec<Query> = queries(&cschema, n, 16, root, false)
        .into_iter()
        .map(|(q, _)| q)
        .collect();
    let auditor = Auditor::start(
        cluster.shared_network(),
        audit_metrics,
        AuditConfig {
            interval: Duration::from_millis(100),
            probes_per_tick: 4,
            refresh_every: 4,
            ..AuditConfig::default()
        },
        audit_probes,
        cluster.liveness(),
    );
    // Watchdog over the same run: the standard detector bank (per-server
    // liveness, windowed-p99 latency spikes, SLO burn rate) evaluated
    // against the live registry every tick, correlated with the fault
    // log into the INCIDENTS.json timeline written at the end.
    let watchdog = Watchdog::for_cluster(
        &cluster,
        &reg,
        WatchdogConfig {
            interval: Duration::from_millis(100),
            ..WatchdogConfig::default()
        },
    );
    let spread = queries(&cschema, n, m.cluster_queries, root, true);
    let rooted = queries(&cschema, n, m.cluster_queries, root, false);
    for (bench, workload) in [("qps_overlay", &spread), ("qps_root", &rooted)] {
        let samples: Vec<f64> = (0..m.qps_repeats)
            .map(|_| measure_qps(&cluster, workload, 4))
            .collect();
        let r = BenchRecord::from_samples(bench, "qps", &samples);
        println!("{:<20} {:>10.1} qps (p99 {:.1})", r.name, r.value, r.p99);
        benches.push(r);
    }

    // --- Planner + cache: planned dispatch vs greedy, then cached replays.
    // A second cluster over the same data runs with the replica-aware
    // set-cover planner and a 2-round TTL'd result cache; its instruments
    // land in a separate registry so the `roads.cache.*` /
    // `roads.planner.*` families are attributable to this phase alone.
    let plan_reg = Registry::new();
    let planner_cluster = RoadsCluster::start_instrumented(
        cluster_net(n),
        DelaySpace::paper(n, 31),
        RuntimeConfig {
            enable_planner: true,
            cache_ttl_rounds: 2,
            ..cluster_config()
        },
        &plan_reg,
    );
    // Comparison pass, cold cache: recall must be identical and planned
    // dispatch must never widen a query — both asserted here, before the
    // artifact is even written.
    let (mut greedy_contacts, mut planned_contacts) = (0u64, 0u64);
    for (q, entry) in &spread {
        let g = cluster.query(q, *entry);
        let p = planner_cluster.query(q, *entry);
        assert_eq!(
            g.records.len(),
            p.records.len(),
            "planner changed recall (entry {entry:?})"
        );
        greedy_contacts += g.servers_contacted as u64;
        planned_contacts += p.servers_contacted as u64;
    }
    assert!(
        planned_contacts <= greedy_contacts,
        "planned dispatch widened the workload ({planned_contacts} > {greedy_contacts})"
    );
    // Throughput with replays: the comparison pass populated the cache,
    // so these passes measure the planner + cache steady state.
    let samples: Vec<f64> = (0..m.qps_repeats)
        .map(|_| measure_qps(&planner_cluster, &spread, 4))
        .collect();
    let r = BenchRecord::from_samples("qps_planner", "qps", &samples);
    println!("{:<20} {:>10.1} qps (p99 {:.1})", r.name, r.value, r.p99);
    benches.push(r);
    // Age every cached answer out so invalidations land on the scrape.
    planner_cluster.advance_cache_round();
    planner_cluster.advance_cache_round();
    let counter = |name: &str| plan_reg.counter(name).get();
    let plan_report = PlanReport {
        schema_version: PLAN_SCHEMA_VERSION,
        config: m.config.to_string(),
        queries: spread.len() as u64,
        planned_queries: counter("roads.planner.planned_queries"),
        pruned_probes: counter("roads.planner.pruned_probes"),
        greedy_contacts,
        planned_contacts,
        cache_hits: counter("roads.cache.hits"),
        cache_misses: counter("roads.cache.misses"),
        // Aged-out and delta-invalidated entries count separately since
        // the expiry/invalidation split; the plan artifact reports their
        // sum.
        cache_invalidations: counter("roads.cache.expired") + counter("roads.cache.invalidated"),
    };
    let planner_scrape = OpenMetricsSnapshot::from_registry(&plan_reg).render();
    planner_cluster.shutdown();

    // --- Failover recovery: kill a branch, time the next query. ----------
    let victim = a_branch(cluster.network());
    let full = QueryBuilder::new(&cschema, QueryId(9_999))
        .range("x0", 0.0, 1.0)
        .build();
    let samples: Vec<f64> = (0..m.failover_repeats)
        .map(|_| {
            assert!(cluster.kill_server(victim));
            let out = cluster.query(&full, root);
            assert!(
                out.failed_servers.contains(&victim),
                "post-kill query must see the dead server"
            );
            assert!(cluster.restart_server(victim));
            // One healthy query so the restarted server rejoins cleanly
            // before the next repeat.
            let healed = cluster.query(&full, root);
            assert!(healed.complete, "restart must restore full coverage");
            out.response_ms
        })
        .collect();
    let r = BenchRecord::from_samples("failover_recovery", "ms", &samples);
    println!("{:<20} {:>10.1} ms (p99 {:.1})", r.name, r.value, r.p99);
    benches.push(r);

    // --- Straggler episode: slow the same branch, let the watchdog see
    // the tail shift, then restore. The queries keep the windowed-p99
    // probe fed while the episode is live.
    assert!(cluster.slow_server(victim, 8.0));
    for _ in 0..3 {
        let _ = cluster.query(&full, root);
        watchdog.tick_now();
    }
    assert!(cluster.restore_server(victim));
    let healed = cluster.query(&full, root);
    assert!(healed.complete, "restore must bring the branch back");

    let audit_report = auditor.stop();
    let incident_report = watchdog.stop();
    cluster.shutdown();

    let report = BenchReport::new(m.config, benches);
    match report.write(&out) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => {
            eprintln!("error: could not write {}: {e}", out.display());
            std::process::exit(1);
        }
    }

    // The tail of this run: retained slow/failed/incomplete queries with
    // full provenance, next to the bench report.
    let slow_path = match out.parent() {
        Some(dir) if dir.as_os_str().is_empty() => PathBuf::from("SLOW_QUERIES.json"),
        Some(dir) => dir.join("SLOW_QUERIES.json"),
        None => PathBuf::from("SLOW_QUERIES.json"),
    };
    match std::fs::write(&slow_path, tail.report().to_string_pretty()) {
        Ok(()) => println!(
            "wrote {} ({} retained of {} observed, threshold {:.2} ms)",
            slow_path.display(),
            tail.retained().len(),
            tail.observed(),
            tail.threshold_ms()
        ),
        Err(e) => {
            eprintln!("error: could not write {}: {e}", slow_path.display());
            std::process::exit(1);
        }
    }

    // The audit of this run: cumulative per-level fidelity plus the final
    // divergence/staleness state, next to the bench report.
    let audit_path = match out.parent() {
        Some(dir) if dir.as_os_str().is_empty() => PathBuf::from("AUDIT.json"),
        Some(dir) => dir.join("AUDIT.json"),
        None => PathBuf::from("AUDIT.json"),
    };
    match audit_report.write(&audit_path) {
        Ok(()) => println!(
            "wrote {} ({} ticks, {} probes, divergence {:.2}%, staleness p99 {})",
            audit_path.display(),
            audit_report.ticks,
            audit_report.probes(),
            audit_report.divergence * 100.0,
            audit_report.staleness_p99
        ),
        Err(e) => {
            eprintln!("error: could not write {}: {e}", audit_path.display());
            std::process::exit(1);
        }
    }

    // The planner/cache summary of this run (validated by `roads-inspect
    // check`, rendered by `roads-inspect plan`), plus the raw OpenMetrics
    // scrape of the planner registry — CI asserts a non-zero
    // `roads.cache.hits` against it.
    let plan_path = match out.parent() {
        Some(dir) if dir.as_os_str().is_empty() => PathBuf::from("PLAN.json"),
        Some(dir) => dir.join("PLAN.json"),
        None => PathBuf::from("PLAN.json"),
    };
    match plan_report.write(&plan_path) {
        Ok(()) => println!(
            "wrote {} ({} queries, contacts {} → {}, cache hit rate {:.1}%)",
            plan_path.display(),
            plan_report.queries,
            plan_report.greedy_contacts,
            plan_report.planned_contacts,
            100.0 * plan_report.cache_hit_rate(),
        ),
        Err(e) => {
            eprintln!("error: could not write {}: {e}", plan_path.display());
            std::process::exit(1);
        }
    }
    let scrape_path = match out.parent() {
        Some(dir) if dir.as_os_str().is_empty() => PathBuf::from("PLANNER_METRICS.txt"),
        Some(dir) => dir.join("PLANNER_METRICS.txt"),
        None => PathBuf::from("PLANNER_METRICS.txt"),
    };
    match std::fs::write(&scrape_path, &planner_scrape) {
        Ok(()) => println!("wrote {}", scrape_path.display()),
        Err(e) => {
            eprintln!("error: could not write {}: {e}", scrape_path.display());
            std::process::exit(1);
        }
    }

    // The incremental-update summary of this run (validated by
    // `roads-inspect check`, which re-enforces the 10x floor offline;
    // rendered by `roads-inspect delta`).
    let delta_path = match out.parent() {
        Some(dir) if dir.as_os_str().is_empty() => PathBuf::from("DELTA.json"),
        Some(dir) => dir.join("DELTA.json"),
        None => PathBuf::from("DELTA.json"),
    };
    match delta_report.write(&delta_path) {
        Ok(()) => println!(
            "wrote {} ({} records, {} changes/round, delta {:.1}x over full)",
            delta_path.display(),
            delta_report.records,
            delta_report.churn_changes,
            delta_report.speedup,
        ),
        Err(e) => {
            eprintln!("error: could not write {}: {e}", delta_path.display());
            std::process::exit(1);
        }
    }

    // The incident timeline of this run: every detector firing coalesced
    // into incidents, correlated with the failover kills and the
    // straggler episode (validated by `roads-inspect check`, rendered by
    // `roads-inspect incidents`).
    let incidents_path = match out.parent() {
        Some(dir) if dir.as_os_str().is_empty() => PathBuf::from("INCIDENTS.json"),
        Some(dir) => dir.join("INCIDENTS.json"),
        None => PathBuf::from("INCIDENTS.json"),
    };
    match incident_report.write(&incidents_path) {
        Ok(()) => println!(
            "wrote {} ({} ticks, {} firings, {} incidents, {} matched, {} false alarms)",
            incidents_path.display(),
            incident_report.ticks,
            incident_report.firings,
            incident_report.rows.len(),
            incident_report.matched(),
            incident_report.false_alarms,
        ),
        Err(e) => {
            eprintln!("error: could not write {}: {e}", incidents_path.display());
            std::process::exit(1);
        }
    }
    print_metrics_digest(&reg.snapshot());
}
