//! Ablation (§III-A join policy): balance-aware join vs random parent.
//!
//! The paper's join walk descends into "the child whose branch has the
//! least depth, or least number of descendants when depths are equal". This
//! binary compares the resulting tree shape (and thus query latency, which
//! Fig. 10 ties to depth) against joining under a uniformly random
//! non-full server.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use roads_bench::{banner, figure_config};
use roads_core::{HierarchyTree, ServerId};
use roads_telemetry::{write_chrome_trace_default, EventKind, FigureExport, Recorder, SpanId};

/// Build a tree by attaching each new server under a random server with
/// spare capacity.
fn random_tree(n: usize, max_children: usize, seed: u64) -> HierarchyTree {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = HierarchyTree::new(n, ServerId(0));
    for s in 1..n as u32 {
        let candidates: Vec<ServerId> = t
            .servers()
            .into_iter()
            .filter(|&p| t.children(p).len() < max_children)
            .collect();
        let parent = candidates[rng.gen_range(0..candidates.len())];
        t.attach(ServerId(s), parent).expect("valid attach");
    }
    t
}

fn describe(label: &str, t: &HierarchyTree) {
    let n = t.len();
    let depths: Vec<usize> = t.servers().iter().map(|&s| t.depth(s)).collect();
    let mean_depth = depths.iter().sum::<usize>() as f64 / n as f64;
    println!(
        "{:<18} levels={:<3} mean depth={:<5.2} max depth={}",
        label,
        t.levels(),
        mean_depth,
        depths.iter().max().unwrap()
    );
}

fn main() {
    banner(
        "Ablation — join policy: least-depth walk vs random parent",
        "balance-aware joins keep the tree flat (fewer hops per query, Fig. 10)",
    );
    let cfg = figure_config();
    let rec = Recorder::new(4096);
    let t0 = std::time::Instant::now();
    let mut balanced_pts = Vec::new();
    let mut random_pts = Vec::new();
    for (n, k) in [(cfg.nodes, cfg.degree), (640, 8), (320, 4)] {
        println!("\n{n} servers, degree {k}:");
        // One wall-clock trace per configuration: a Mark root spanning
        // both build strategies, with one child Mark span each.
        let trace = rec.next_trace_id();
        let cfg_start = t0.elapsed().as_micros() as u64;
        let build_start = t0.elapsed().as_micros() as u64;
        let balanced = HierarchyTree::build(n, k);
        let build_end = t0.elapsed().as_micros() as u64;
        describe("least-depth", &balanced);
        let mut worst_levels = 0;
        let mut sum_levels = 0;
        let random_start = t0.elapsed().as_micros() as u64;
        for seed in 0..5u64 {
            let t = random_tree(n, k, seed);
            worst_levels = worst_levels.max(t.levels());
            sum_levels += t.levels();
            if seed == 0 {
                describe("random (seed 0)", &t);
            }
        }
        let random_end = t0.elapsed().as_micros() as u64;
        let root_span = rec.record_span(
            trace,
            SpanId::NONE,
            n as u32,
            EventKind::Mark,
            cfg_start,
            random_end.saturating_sub(cfg_start).max(1),
            k as u64,
        );
        rec.record_span(
            trace,
            root_span,
            n as u32,
            EventKind::Mark,
            build_start,
            build_end.saturating_sub(build_start).max(1),
            balanced.levels() as u64,
        );
        rec.record_span(
            trace,
            root_span,
            n as u32,
            EventKind::Mark,
            random_start,
            random_end.saturating_sub(random_start).max(1),
            worst_levels as u64,
        );
        println!(
            "{:<18} mean levels={:.1} worst={}",
            "random (5 seeds)",
            sum_levels as f64 / 5.0,
            worst_levels
        );
        balanced_pts.push((n as f64, balanced.levels() as f64));
        random_pts.push((n as f64, sum_levels as f64 / 5.0));
    }

    let mut fig = FigureExport::new(
        "fig_ablation_join",
        "Join policy: least-depth walk vs random parent (tree levels)",
    )
    .axes("servers", "hierarchy levels");
    if let (Some(&(_, b)), Some(&(_, r))) = (balanced_pts.first(), random_pts.first()) {
        fig.push_reference("balanced_over_random_levels", b / r, 1.0);
    }
    fig.push_series("least_depth_levels", &balanced_pts);
    fig.push_series("random_mean_levels", &random_pts);
    fig.push_note("balance-aware joins keep the tree no deeper than random attachment");
    fig.write_default();
    write_chrome_trace_default(&fig.figure, &rec);
    // This binary drives no query plane; the digest records that
    // explicitly rather than omitting the line.
    roads_bench::suite::print_metrics_digest(&roads_telemetry::Registry::new().snapshot());
}
