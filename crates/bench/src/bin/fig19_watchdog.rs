//! Figure 19 (reproduction extra): watchdog detection latency under
//! injected faults.
//!
//! The watchdog plane answers *how fast the system notices it is
//! broken*: a background [`Watchdog`] evaluates the standard detector
//! bank (per-server liveness thresholds, EWMA z-score spikes over the
//! windowed query-latency p99, multi-window SLO burn rate) against the
//! live registry every tick and correlates firings with the cluster's
//! fault log into ranked-cause incidents. This figure sweeps fault type
//! (kill vs straggler) against severity (number of killed servers;
//! straggler slowdown factor): for each cell a live cluster warms up
//! healthy, the fault is injected, and the figure records how long the
//! watchdog took to open an incident whose suspected-cause ranking
//! names the faulted server.
//!
//! Three properties are asserted, not just plotted:
//!
//! * every injected kill and straggler is matched by at least one
//!   incident whose cause ranking names the faulted server;
//! * detection latency stays within three watchdog intervals of the
//!   fault onset (kills trip the liveness threshold on the next tick;
//!   stragglers shift the *windowed* p99 — per-tick histogram bucket
//!   deltas — so one slowed query is enough, where a cumulative p99
//!   would need the straggler to dominate the whole run's samples);
//! * a fault-free control run produces zero firings and zero
//!   incidents.

use roads_bench::parse_args;
use roads_core::{RoadsConfig, RoadsNetwork, ServerId};
use roads_netsim::DelaySpace;
use roads_records::{OwnerId, QueryBuilder, QueryId, Record, RecordId, Schema, Value};
use roads_runtime::{
    CauseKind, IncidentReport, RoadsCluster, RuntimeConfig, Watchdog, WatchdogConfig,
};
use roads_summary::SummaryConfig;
use roads_telemetry::FigureExport;
use roads_telemetry::Registry;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

/// One record per server at `s / n`: a full-range query contacts every
/// branch, so its response time tracks the slowest (or slowed) server.
fn build_net(n: usize) -> RoadsNetwork {
    let schema = Schema::unit_numeric(1);
    let cfg = RoadsConfig {
        max_children: 3,
        summary: SummaryConfig::with_buckets(256),
        ..RoadsConfig::paper_default()
    };
    let records: Vec<Vec<Record>> = (0..n)
        .map(|s| {
            vec![Record::new_unchecked(
                RecordId(s as u64),
                OwnerId(s as u32),
                vec![Value::Float(s as f64 / n as f64)],
            )]
        })
        .collect();
    RoadsNetwork::build(schema, cfg, records)
}

/// Fault victims with pairwise-disjoint subtrees (see Fig. 13/16):
/// interior servers with small subtrees first, leaves as a fallback.
fn pick_victims(net: &RoadsNetwork, k: usize) -> Vec<ServerId> {
    let tree = net.tree();
    let mut candidates: Vec<ServerId> = (0..net.len() as u32)
        .map(ServerId)
        .filter(|&s| s != tree.root())
        .collect();
    candidates.sort_by_key(|&s| (tree.children(s).is_empty(), tree.subtree(s).len(), s.0));
    let mut victims = Vec::new();
    let mut covered: HashSet<ServerId> = HashSet::new();
    for s in candidates {
        if victims.len() == k {
            break;
        }
        let sub = tree.subtree(s);
        if sub.iter().any(|x| covered.contains(x)) {
            continue;
        }
        covered.extend(sub);
        victims.push(s);
    }
    victims
}

/// The fault a cell injects after its healthy warmup.
#[derive(Clone, Copy)]
enum Fault {
    /// Kill `k` disjoint-subtree servers at once.
    Kill(usize),
    /// Slow one branch server's responses by `factor`.
    Slow(f64),
}

/// Does the report contain an incident whose cause ranking names
/// `server` via a fault-event candidate?
fn names_server(report: &IncidentReport, server: u32) -> bool {
    report.rows.iter().any(|i| {
        i.causes
            .iter()
            .any(|c| c.kind == CauseKind::FaultEvent && c.server == Some(server))
    })
}

struct CellOutcome {
    report: IncidentReport,
    /// Rounds of query+tick between injection and full attribution.
    rounds: usize,
}

/// Run one sweep cell: warm up healthy, inject the fault, drive
/// query+tick rounds until every victim is named, recover, stop.
fn run_cell(n: usize, interval: Duration, fault: Fault, label: &str) -> CellOutcome {
    let runtime_cfg = RuntimeConfig {
        dispatch_timeout_ms: 200,
        max_retries: 1,
        backoff_base_ms: 5,
        query_deadline_ms: 20_000,
        delay_scale: 0.03,
        per_record_retrieval_us: 100,
        base_query_cost_us: 300,
        ..RuntimeConfig::paper_like()
    };
    let reg = Arc::new(Registry::new());
    let cluster =
        RoadsCluster::start_instrumented(build_net(n), DelaySpace::paper(n, 31), runtime_cfg, &reg);
    let watchdog = Watchdog::for_cluster(
        &cluster,
        &reg,
        WatchdogConfig {
            interval,
            ..WatchdogConfig::default()
        },
    );
    let root = cluster.network().tree().root();
    let full = QueryBuilder::new(cluster.network().schema(), QueryId(19_000))
        .range("x0", 0.0, 1.0)
        .build();

    // Healthy warmup: seed the EWMA baseline (and its warmup sample
    // count) so the post-injection shift registers as a spike.
    for _ in 0..6 {
        let out = cluster.query(&full, root);
        assert!(out.complete, "warmup query must see every branch");
        watchdog.tick_now();
    }
    let warm = watchdog.report();
    assert_eq!(
        warm.firings, 0,
        "{label}: healthy warmup must not trip any detector"
    );

    // Inject. Kills flip the liveness gauge immediately, so a tick right
    // after the injection is already a detection opportunity; stragglers
    // only surface once a slowed query lands in the latency histogram.
    let victims: Vec<ServerId> = match fault {
        Fault::Kill(k) => {
            let v = pick_victims(cluster.network(), k);
            assert_eq!(v.len(), k, "need {k} disjoint victims among {n}");
            for &s in &v {
                assert!(cluster.kill_server(s));
            }
            watchdog.tick_now();
            v
        }
        Fault::Slow(factor) => {
            let v = pick_victims(cluster.network(), 1);
            assert!(cluster.slow_server(v[0], factor));
            v
        }
    };

    // Drive rounds until every victim is named by an incident's cause
    // ranking; the latency bound below keeps this loop honest.
    let mut rounds = 0usize;
    loop {
        let named = {
            let r = watchdog.report();
            victims.iter().all(|v| names_server(&r, v.0))
        };
        if named {
            break;
        }
        assert!(
            rounds < 30,
            "{label}: watchdog failed to attribute the fault within 30 rounds"
        );
        rounds += 1;
        let _ = cluster.query(&full, root);
        watchdog.tick_now();
    }

    // Recover so the cell ends converged (and the restore path is
    // exercised under the watchdog as well).
    match fault {
        Fault::Kill(_) => {
            for &s in &victims {
                assert!(cluster.restart_server(s));
            }
        }
        Fault::Slow(_) => {
            assert!(cluster.restore_server(victims[0]));
        }
    }
    let healed = cluster.query(&full, root);
    assert!(healed.complete, "{label}: recovery must restore coverage");

    let report = watchdog.stop();
    cluster.shutdown();

    // The acceptance bar: every victim named, detection within three
    // watchdog intervals of the onset.
    for v in &victims {
        assert!(
            names_server(&report, v.0),
            "{label}: no incident names server {}",
            v.0
        );
    }
    let budget_ms = 3.0 * interval.as_secs_f64() * 1e3;
    let worst = report
        .max_detection_latency_ms()
        .unwrap_or_else(|| panic!("{label}: no detection latency recorded"));
    assert!(
        worst <= budget_ms,
        "{label}: detection latency {worst:.0} ms exceeds 3 intervals ({budget_ms:.0} ms)"
    );
    CellOutcome { report, rounds }
}

/// Fault-free control: same cluster, same detectors, no injection —
/// the watchdog must stay silent.
fn run_control(n: usize, interval: Duration, ticks: usize) -> (IncidentReport, Arc<Registry>) {
    let runtime_cfg = RuntimeConfig {
        dispatch_timeout_ms: 200,
        max_retries: 1,
        backoff_base_ms: 5,
        query_deadline_ms: 20_000,
        delay_scale: 0.03,
        per_record_retrieval_us: 100,
        base_query_cost_us: 300,
        ..RuntimeConfig::paper_like()
    };
    let reg = Arc::new(Registry::new());
    let cluster =
        RoadsCluster::start_instrumented(build_net(n), DelaySpace::paper(n, 31), runtime_cfg, &reg);
    let watchdog = Watchdog::for_cluster(
        &cluster,
        &reg,
        WatchdogConfig {
            interval,
            ..WatchdogConfig::default()
        },
    );
    let root = cluster.network().tree().root();
    let full = QueryBuilder::new(cluster.network().schema(), QueryId(19_500))
        .range("x0", 0.0, 1.0)
        .build();
    for _ in 0..ticks {
        let out = cluster.query(&full, root);
        assert!(out.complete, "control query must see every branch");
        watchdog.tick_now();
    }
    let report = watchdog.stop();
    cluster.shutdown();
    (report, reg)
}

fn main() {
    let (quick, _) = parse_args();
    let n = if quick { 13 } else { 25 };
    let interval = Duration::from_millis(100);
    let kill_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 3] };
    let slow_factors: &[f64] = if quick {
        &[4.0, 8.0]
    } else {
        &[4.0, 8.0, 12.0]
    };
    println!("==================================================================");
    println!("Figure 19 — watchdog detection latency under injected faults");
    println!(
        "({n} servers, watchdog interval {} ms; kill k servers vs",
        interval.as_millis()
    );
    println!("slow one server by a factor; latency bound = 3 intervals)");
    println!("==================================================================");

    let mut fig = FigureExport::new(
        "fig19_watchdog",
        "watchdog detection latency vs fault severity, kill vs straggler",
    )
    .axes(
        "severity (servers killed / slowdown factor)",
        "detection latency (ms)",
    );

    println!(
        "{:>10} {:>9} {:>7} {:>10} {:>8} {:>8} {:>12}",
        "fault", "severity", "rounds", "incidents", "matched", "firings", "latency(ms)"
    );
    let mut kill_lat: Vec<(f64, f64)> = Vec::new();
    let mut slow_lat: Vec<(f64, f64)> = Vec::new();
    let mut kill_inc: Vec<(f64, f64)> = Vec::new();
    let mut slow_inc: Vec<(f64, f64)> = Vec::new();
    for &k in kill_counts {
        let label = format!("kill k={k}");
        let cell = run_cell(n, interval, Fault::Kill(k), &label);
        let lat = cell.report.max_detection_latency_ms().unwrap_or(0.0);
        println!(
            "{:>10} {:>9} {:>7} {:>10} {:>8} {:>8} {:>12.0}",
            "kill",
            k,
            cell.rounds,
            cell.report.rows.len(),
            cell.report.matched(),
            cell.report.firings,
            lat
        );
        kill_lat.push((k as f64, lat));
        kill_inc.push((k as f64, cell.report.rows.len() as f64));
    }
    for &f in slow_factors {
        let label = format!("slow x{f}");
        let cell = run_cell(n, interval, Fault::Slow(f), &label);
        let lat = cell.report.max_detection_latency_ms().unwrap_or(0.0);
        println!(
            "{:>10} {:>9} {:>7} {:>10} {:>8} {:>8} {:>12.0}",
            "slow",
            f,
            cell.rounds,
            cell.report.rows.len(),
            cell.report.matched(),
            cell.report.firings,
            lat
        );
        slow_lat.push((f, lat));
        slow_inc.push((f, cell.report.rows.len() as f64));
    }

    // Fault-free control: silence is the assertion.
    let (control, control_reg) = run_control(n, interval, 12);
    assert_eq!(
        control.firings, 0,
        "control run must not trip any detector (got {} firings)",
        control.firings
    );
    assert!(
        control.rows.is_empty(),
        "control run must open zero incidents (got {})",
        control.rows.len()
    );
    println!(
        "{:>10} {:>9} {:>7} {:>10} {:>8} {:>8} {:>12}",
        "control", "-", 12, 0, 0, 0, "-"
    );

    fig.push_series("detection_latency_ms_kill", &kill_lat);
    fig.push_series("detection_latency_ms_slow", &slow_lat);
    fig.push_series("incidents_kill", &kill_inc);
    fig.push_series("incidents_slow", &slow_inc);
    fig.push_reference(
        "detection_latency_budget_ms",
        kill_lat
            .iter()
            .chain(slow_lat.iter())
            .map(|p| p.1)
            .fold(0.0, f64::max),
        3.0 * interval.as_secs_f64() * 1e3,
    );
    fig.push_note(format!(
        "{n} servers x 1 record, watchdog interval {} ms; kills trip the \
         per-server liveness threshold, stragglers the windowed-p99 EWMA \
         spike detector; every cell asserts cause attribution to the \
         faulted server within 3 intervals",
        interval.as_millis()
    ));
    fig.push_note("fault-free control run produced zero firings and zero incidents");
    fig.write_default();
    // Digest covers the control run's cluster + watchdog registry.
    roads_bench::suite::print_metrics_digest(&control_reg.snapshot());
}
