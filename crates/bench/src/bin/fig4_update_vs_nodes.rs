//! Figure 4: update message overhead as a function of the number of nodes
//! (log scale in the paper).
//!
//! Paper result: "ROADS has two orders of magnitude less update overhead
//! than SWORD due to the use of condensed summary."

use roads_bench::chart::{render_log, Series};
use roads_bench::{banner, figure_config, run_comparison_recorded, TrialConfig};
use roads_telemetry::{write_chrome_trace_default, FigureExport, Recorder, Registry};

fn main() {
    banner(
        "Figure 4 — update overhead vs number of nodes (bytes/second)",
        "ROADS 1-2 orders of magnitude below SWORD",
    );
    let base = figure_config();
    let reg = Registry::new();
    let rec = Recorder::new(65_536);
    println!(
        "{:>6} {:>16} {:>16} {:>16} {:>12}",
        "nodes", "ROADS (B/s)", "SWORD (B/s)", "Central (B/s)", "SWORD/ROADS"
    );
    let sweep: Vec<usize> = if base.nodes <= 64 {
        vec![32, 64, 96, 128]
    } else {
        (1..=10).map(|i| i * 64).collect()
    };
    let mut roads_pts = Vec::new();
    let mut sword_pts = Vec::new();
    let mut central_pts = Vec::new();
    for nodes in sweep {
        let cfg = TrialConfig { nodes, ..base };
        let (r, _) = run_comparison_recorded(&cfg, Some(&reg), Some(&rec));
        println!(
            "{:>6} {:>16.3e} {:>16.3e} {:>16.3e} {:>12.1}",
            nodes,
            r.roads_update_bps,
            r.sword_update_bps,
            r.central_update_bps,
            r.sword_update_bps / r.roads_update_bps
        );
        roads_pts.push((nodes as f64, r.roads_update_bps));
        sword_pts.push((nodes as f64, r.sword_update_bps));
        central_pts.push((nodes as f64, r.central_update_bps));
    }
    println!();
    print!(
        "{}",
        render_log(
            &[
                Series::new("ROADS", roads_pts.clone()),
                Series::new("SWORD", sword_pts.clone()),
                Series::new("Central", central_pts.clone())
            ],
            60,
            14
        )
    );
    println!("\npaper: ~1e7 vs ~1e9 bytes at 320 nodes (log-scale figure).");

    let mut fig = FigureExport::new(
        "fig4_update_vs_nodes",
        "Update overhead vs number of nodes (bytes/second)",
    )
    .axes("nodes", "update overhead (B/s)");
    if let (Some(&(_, r320)), Some(&(_, s320))) = (
        roads_pts.iter().find(|(n, _)| *n == 320.0),
        sword_pts.iter().find(|(n, _)| *n == 320.0),
    ) {
        fig.push_reference("sword_over_roads_ratio@320", s320 / r320, 100.0);
    }
    fig.push_series("roads_bps", &roads_pts);
    fig.push_series("sword_bps", &sword_pts);
    fig.push_series("central_bps", &central_pts);
    fig.push_note("paper: 1-2 orders of magnitude between ROADS and SWORD (log-scale figure)");
    fig.set_telemetry(reg.snapshot());
    fig.write_default();
    write_chrome_trace_default(&fig.figure, &rec);
    roads_bench::suite::print_metrics_digest(&reg.snapshot());
}
