//! Figure 4: update message overhead as a function of the number of nodes
//! (log scale in the paper).
//!
//! Paper result: "ROADS has two orders of magnitude less update overhead
//! than SWORD due to the use of condensed summary."

use roads_bench::chart::{render_log, Series};
use roads_bench::{banner, figure_config, run_comparison, TrialConfig};

fn main() {
    banner(
        "Figure 4 — update overhead vs number of nodes (bytes/second)",
        "ROADS 1-2 orders of magnitude below SWORD",
    );
    let base = figure_config();
    println!(
        "{:>6} {:>16} {:>16} {:>16} {:>12}",
        "nodes", "ROADS (B/s)", "SWORD (B/s)", "Central (B/s)", "SWORD/ROADS"
    );
    let sweep: Vec<usize> = if base.nodes <= 64 {
        vec![32, 64, 96, 128]
    } else {
        (1..=10).map(|i| i * 64).collect()
    };
    let mut roads_pts = Vec::new();
    let mut sword_pts = Vec::new();
    let mut central_pts = Vec::new();
    for nodes in sweep {
        let cfg = TrialConfig { nodes, ..base };
        let r = run_comparison(&cfg);
        println!(
            "{:>6} {:>16.3e} {:>16.3e} {:>16.3e} {:>12.1}",
            nodes,
            r.roads_update_bps,
            r.sword_update_bps,
            r.central_update_bps,
            r.sword_update_bps / r.roads_update_bps
        );
        roads_pts.push((nodes as f64, r.roads_update_bps));
        sword_pts.push((nodes as f64, r.sword_update_bps));
        central_pts.push((nodes as f64, r.central_update_bps));
    }
    println!();
    print!(
        "{}",
        render_log(
            &[
                Series::new("ROADS", roads_pts),
                Series::new("SWORD", sword_pts),
                Series::new("Central", central_pts)
            ],
            60,
            14
        )
    );
    println!("\npaper: ~1e7 vs ~1e9 bytes at 320 nodes (log-scale figure).");
}
