//! Figure 15 (reproduction extra): p99 latency attribution in the tail.
//!
//! The explain plane answers *where the tail comes from*: every live
//! query assembles a [`QueryExplain`] provenance record whose per-hop
//! latency splits fold into a queue / network / compute / retry /
//! failover [`Attribution`]. This figure drives a full-coverage query
//! batch through the live prototype under increasing fault levels
//! (k crashed branch servers, killed incrementally like Fig. 13) and two
//! entry strategies — all queries funneled through the root vs spread
//! across the federation via the replication overlay — and plots the
//! stacked attribution of the batch's p99 query at each (mode, k).
//!
//! Expected shape: at k = 0 the p99 is network + compute dominated with
//! zero retry/failover time in both modes; as k grows, retry (timed-out
//! attempts burning the dispatch timeout) and failover (stand-in
//! contacts) take over the tail, and the root-funneled mode additionally
//! accumulates queue time at the shared entry.
//!
//! [`QueryExplain`]: roads_telemetry::QueryExplain
//! [`Attribution`]: roads_telemetry::Attribution

use roads_bench::parse_args;
use roads_core::{RoadsConfig, RoadsNetwork, ServerId};
use roads_netsim::DelaySpace;
use roads_records::{OwnerId, Query, QueryBuilder, QueryId, Record, RecordId, Schema, Value};
use roads_runtime::{RoadsCluster, RuntimeConfig};
use roads_summary::SummaryConfig;
use roads_telemetry::{
    write_chrome_trace_default, Attribution, FigureExport, QueryExplain, Recorder, Registry,
};
use std::collections::HashSet;
use std::sync::Arc;

const RECORDS_PER_SERVER: usize = 30;

fn build_net(n: usize) -> RoadsNetwork {
    let schema = Schema::unit_numeric(1);
    let cfg = RoadsConfig {
        max_children: 3,
        summary: SummaryConfig::with_buckets(128),
        ..RoadsConfig::paper_default()
    };
    let records: Vec<Vec<Record>> = (0..n)
        .map(|s| {
            (0..RECORDS_PER_SERVER)
                .map(|i| {
                    let id = s * RECORDS_PER_SERVER + i;
                    Record::new_unchecked(
                        RecordId(id as u64),
                        OwnerId(s as u32),
                        vec![Value::Float(id as f64 / (n * RECORDS_PER_SERVER) as f64)],
                    )
                })
                .collect()
        })
        .collect();
    RoadsNetwork::build(schema, cfg, records)
}

/// Crash victims with pairwise-disjoint subtrees (see Fig. 13): interior
/// servers with small subtrees first, leaves as a fallback.
fn pick_victims(net: &RoadsNetwork, k: usize) -> Vec<ServerId> {
    let tree = net.tree();
    let mut candidates: Vec<ServerId> = (0..net.len() as u32)
        .map(ServerId)
        .filter(|&s| s != tree.root())
        .collect();
    candidates.sort_by_key(|&s| (tree.children(s).is_empty(), tree.subtree(s).len(), s.0));
    let mut victims = Vec::new();
    let mut covered: HashSet<ServerId> = HashSet::new();
    for s in candidates {
        if victims.len() == k {
            break;
        }
        let sub = tree.subtree(s);
        if sub.iter().any(|x| covered.contains(x)) {
            continue;
        }
        covered.extend(sub);
        victims.push(s);
    }
    victims
}

/// Run the batch and return the p99-latency query's explain record (the
/// batch is small, so p99 selects the slowest-but-one tail query).
fn p99_explain(c: &RoadsCluster, q: &Query, entries: &[ServerId]) -> QueryExplain {
    let mut explains: Vec<QueryExplain> =
        entries.iter().map(|&e| c.query_explained(q, e).1).collect();
    explains.sort_by(|a, b| a.response_us.total_cmp(&b.response_us));
    let idx = ((explains.len() as f64 * 0.99).ceil() as usize).clamp(1, explains.len()) - 1;
    explains.swap_remove(idx)
}

fn main() {
    let (quick, _) = parse_args();
    let n = if quick { 13 } else { 40 };
    let kill_counts: &[usize] = if quick {
        &[0, 1, 2, 3]
    } else {
        &[0, 1, 2, 4, 6, 8]
    };
    let batch = if quick { 16 } else { 48 };
    println!("==================================================================");
    println!("Figure 15 — p99 latency attribution in the tail ({n} servers)");
    println!("queue/network/compute/retry/failover split of the p99 query,");
    println!("root-funneled vs overlay-spread entries, k crashed servers");
    println!("==================================================================");

    let runtime_cfg = RuntimeConfig {
        dispatch_timeout_ms: 400,
        max_retries: 1,
        backoff_base_ms: 10,
        query_deadline_ms: 20_000,
        delay_scale: 0.1,
        per_record_retrieval_us: 150,
        base_query_cost_us: 1_000,
        ..RuntimeConfig::paper_like()
    };
    let k_max = *kill_counts.last().unwrap();
    let victims = pick_victims(&build_net(n), k_max);
    assert_eq!(
        victims.len(),
        k_max,
        "hierarchy of {n} servers holds too few disjoint branch victims"
    );

    let reg = Registry::new();
    let rec = Arc::new(Recorder::new(65_536));
    let mut cluster =
        RoadsCluster::start_instrumented(build_net(n), DelaySpace::paper(n, 31), runtime_cfg, &reg);
    cluster.set_recorder(Arc::clone(&rec));
    let root = cluster.network().tree().root();
    let q = QueryBuilder::new(cluster.network().schema(), QueryId(15))
        .range("x0", 0.0, 1.0)
        .build();
    let rooted: Vec<ServerId> = vec![root; batch];
    let spread: Vec<ServerId> = (0..batch)
        .map(|i| {
            // Stride live servers, skipping crash victims so the entry
            // itself is never dead (entry failover is Fig. 13's subject).
            let mut s = ServerId(((i * 7 + 3) % n) as u32);
            while victims.contains(&s) {
                s = ServerId((s.0 + 1) % n as u32);
            }
            s
        })
        .collect();

    println!(
        "{:>6} {:<7} {:>10} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "killed", "entry", "p99 ms", "queue", "network", "compute", "retry", "failover"
    );
    type ModeSeries = (&'static str, &'static str, Vec<(f64, f64)>);
    let mut series: Vec<ModeSeries> = Vec::new();
    for component in ["queue", "network", "compute", "retry", "failover", "total"] {
        for mode in ["root", "spread"] {
            series.push((component, mode, Vec::new()));
        }
    }
    let mut killed_so_far = 0usize;
    for &k in kill_counts {
        while killed_so_far < k {
            assert!(cluster.kill_server(victims[killed_so_far]));
            killed_so_far += 1;
        }
        for (mode, entries) in [("root", &rooted), ("spread", &spread)] {
            let ex = p99_explain(&cluster, &q, entries);
            let a = ex.attribution();
            if k == 0 {
                assert!(
                    a.retry_us == 0.0 && a.failover_us == 0.0,
                    "healthy cluster p99 must have no retry/failover time"
                );
            } else {
                assert!(
                    a.retry_us + a.failover_us > 0.0,
                    "post-kill p99 must show retry or failover time"
                );
            }
            println!(
                "{:>6} {:<7} {:>10.1} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
                k,
                mode,
                ex.response_us / 1_000.0,
                a.queue_us / 1_000.0,
                a.network_us / 1_000.0,
                a.compute_us / 1_000.0,
                a.retry_us / 1_000.0,
                a.failover_us / 1_000.0,
            );
            let pick = |a: &Attribution, component: &str| match component {
                "queue" => a.queue_us,
                "network" => a.network_us,
                "compute" => a.compute_us,
                "retry" => a.retry_us,
                "failover" => a.failover_us,
                _ => a.total_us(),
            };
            for (component, m, points) in series.iter_mut() {
                if *m == mode {
                    points.push((k as f64, pick(&a, component) / 1_000.0));
                }
            }
        }
    }
    cluster.shutdown();

    let mut fig = FigureExport::new(
        "fig15_tail_attribution",
        "p99 latency attribution (stacked) vs crashed servers, per entry mode",
    )
    .axes("crashed branch servers", "p99 work time (ms)");
    for (component, mode, points) in &series {
        fig.push_series(format!("p99_{component}_ms_{mode}"), points);
    }
    fig.push_note(format!(
        "{n} servers x {RECORDS_PER_SERVER} records, {batch}-query full-coverage batches; \
         victims gate disjoint subtrees; dispatch timeout {} ms, {} retry, deadline {} ms",
        runtime_cfg.dispatch_timeout_ms, runtime_cfg.max_retries, runtime_cfg.query_deadline_ms
    ));
    fig.push_note(
        "work-time attribution from QueryExplain::attribution(): concurrent hops add, \
         so components can exceed the end-to-end response time",
    );
    fig.write_default();
    write_chrome_trace_default(&fig.figure, &rec);
    roads_bench::suite::print_metrics_digest(&reg.snapshot());
}
