//! Figure 14 (reproduction extra): query throughput vs client threads.
//!
//! The paper's overlay argument (§III-C) is about load as much as
//! availability: "each server stores summaries which combined together
//! cover the whole hierarchy", so *any* server can be a query entry point
//! and clients need not funnel through the root. This figure measures what
//! that buys on the live prototype: queries per second as the number of
//! concurrent client threads grows, with overlay entry (queries start at
//! spread-out entry servers) and without (every query enters at the root,
//! as it must in a plain hierarchy). A degraded series repeats the overlay
//! run with `k` branch servers crashed to show throughput under churn, and
//! a simulation-plane series runs the same workload through
//! [`roads_core::QueryBatch`] to measure raw evaluation throughput with no
//! network emulation.
//!
//! Expected shape: queries spend most of their life waiting on emulated
//! link and retrieval delays, so throughput scales near-linearly with
//! client threads until the admission gate or a hot server serializes
//! them. Root-only entry funnels every query through one mailbox and
//! flattens earlier.

use roads_bench::chart::{render, Series};
use roads_bench::parse_args;
use roads_core::{QueryBatch, RoadsConfig, RoadsNetwork, SearchScope, ServerId};
use roads_netsim::DelaySpace;
use roads_records::{OwnerId, Query, QueryBuilder, QueryId, Record, RecordId, Schema, Value};
use roads_runtime::{RoadsCluster, RuntimeConfig};
use roads_summary::SummaryConfig;
use roads_telemetry::{write_chrome_trace_default, FigureExport, Recorder, Registry};
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

const RECORDS_PER_SERVER: usize = 10;

fn build_net(n: usize) -> RoadsNetwork {
    let schema = Schema::unit_numeric(1);
    let cfg = RoadsConfig {
        max_children: 3,
        summary: SummaryConfig::with_buckets(128),
        ..RoadsConfig::paper_default()
    };
    let records: Vec<Vec<Record>> = (0..n)
        .map(|s| {
            (0..RECORDS_PER_SERVER)
                .map(|i| {
                    let id = s * RECORDS_PER_SERVER + i;
                    Record::new_unchecked(
                        RecordId(id as u64),
                        OwnerId(s as u32),
                        vec![Value::Float(id as f64 / (n * RECORDS_PER_SERVER) as f64)],
                    )
                })
                .collect()
        })
        .collect();
    RoadsNetwork::build(schema, cfg, records)
}

/// Crash victims with pairwise-disjoint subtrees (same policy as fig13).
fn pick_victims(net: &RoadsNetwork, k: usize) -> Vec<ServerId> {
    let tree = net.tree();
    let mut candidates: Vec<ServerId> = (0..net.len() as u32)
        .map(ServerId)
        .filter(|&s| s != tree.root())
        .collect();
    candidates.sort_by_key(|&s| (tree.children(s).is_empty(), tree.subtree(s).len(), s.0));
    let mut victims = Vec::new();
    let mut covered: HashSet<ServerId> = HashSet::new();
    for s in candidates {
        if victims.len() == k {
            break;
        }
        let sub = tree.subtree(s);
        if sub.iter().any(|x| covered.contains(x)) {
            continue;
        }
        covered.extend(sub);
        victims.push(s);
    }
    victims
}

/// The query workload: sliding 0.25-length ranges, one entry per query.
/// Entries stride over the federation when `spread` (overlay entry) or all
/// point at the root otherwise.
fn workload(
    schema: &Schema,
    n: usize,
    count: usize,
    root: ServerId,
    spread: bool,
) -> Vec<(Query, ServerId)> {
    (0..count)
        .map(|i| {
            let lo = 0.75 * (i as f64 * 0.37).fract();
            let q = QueryBuilder::new(schema, QueryId(i as u64))
                .range("x0", lo, lo + 0.25)
                .build();
            let entry = if spread {
                ServerId(((i * 7 + 3) % n) as u32)
            } else {
                root
            };
            (q, entry)
        })
        .collect()
}

/// Drive `queries` through the cluster from `threads` client threads
/// pulling off a shared cursor; returns queries per second.
fn measure_qps(c: &RoadsCluster, queries: &[(Query, ServerId)], threads: usize) -> f64 {
    let cursor = AtomicUsize::new(0);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= queries.len() {
                    break;
                }
                let (q, entry) = &queries[i];
                let out = c.query(q, *entry);
                assert!(!out.records.is_empty(), "every range matches something");
            });
        }
    });
    queries.len() as f64 / t0.elapsed().as_secs_f64()
}

fn main() {
    let (quick, _) = parse_args();
    let n = if quick { 13 } else { 40 };
    let q_count = if quick { 48 } else { 160 };
    let kills = if quick { 2 } else { 4 };
    let thread_counts: &[usize] = &[1, 2, 4, 8];
    println!("==================================================================");
    println!("Figure 14 — query throughput vs client threads ({n} servers)");
    println!("queries/sec with overlay entry spread vs root-only entry,");
    println!("plus {kills} crashed branch servers and the simulation plane");
    println!("==================================================================");

    let runtime_cfg = RuntimeConfig {
        dispatch_timeout_ms: 400,
        max_retries: 1,
        backoff_base_ms: 10,
        query_deadline_ms: 20_000,
        delay_scale: 0.1,
        per_record_retrieval_us: 150,
        base_query_cost_us: 1_000,
        max_inflight_queries: 64,
        ..RuntimeConfig::paper_like()
    };

    let reg = Registry::new();
    let rec = Arc::new(Recorder::new(65_536));
    let mut healthy =
        RoadsCluster::start_instrumented(build_net(n), DelaySpace::paper(n, 31), runtime_cfg, &reg);
    healthy.set_recorder(Arc::clone(&rec));
    let degraded = RoadsCluster::start(build_net(n), DelaySpace::paper(n, 31), runtime_cfg);
    let victims = pick_victims(degraded.network(), kills);
    assert_eq!(victims.len(), kills, "not enough disjoint branch victims");
    for &v in &victims {
        assert!(degraded.kill_server(v));
    }

    let schema = healthy.network().schema().clone();
    let root = healthy.network().tree().root();
    let spread_queries = workload(&schema, n, q_count, root, true);
    let root_queries = workload(&schema, n, q_count, root, false);
    // Degraded runs can lose crashed subtrees, so drop the non-empty
    // assertion by filtering entries onto live servers only.
    let dead: HashSet<ServerId> = victims
        .iter()
        .flat_map(|&v| degraded.network().tree().subtree(v))
        .collect();
    let degraded_queries: Vec<(Query, ServerId)> = spread_queries
        .iter()
        .map(|(q, e)| {
            let e = if dead.contains(e) { root } else { *e };
            (q.clone(), e)
        })
        .collect();

    // Simulation plane: the spread workload tiled large enough that worker
    // spawn cost is noise next to evaluation work.
    let sim_net = Arc::new(build_net(n));
    let sim_delays = Arc::new(DelaySpace::paper(n, 31));
    let sim_queries: Vec<(Query, ServerId)> = (0..if quick { 50 } else { 100 })
        .flat_map(|_| spread_queries.iter().cloned())
        .collect();

    println!(
        "{:>8} {:>14} {:>14} {:>14} {:>16}",
        "clients", "qps(overlay)", "qps(root)", "qps(degraded)", "batch sim kqps"
    );
    let mut s_overlay = Vec::new();
    let mut s_root = Vec::new();
    let mut s_degraded = Vec::new();
    let mut s_sim = Vec::new();
    for &t in thread_counts {
        let qps_overlay = measure_qps(&healthy, &spread_queries, t);
        let qps_root = measure_qps(&healthy, &root_queries, t);
        let qps_degraded = {
            let cursor = AtomicUsize::new(0);
            let t0 = Instant::now();
            std::thread::scope(|s| {
                for _ in 0..t {
                    s.spawn(|| loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= degraded_queries.len() {
                            break;
                        }
                        let (q, entry) = &degraded_queries[i];
                        let _ = degraded.query(q, *entry);
                    });
                }
            });
            degraded_queries.len() as f64 / t0.elapsed().as_secs_f64()
        };
        let sim_kqps = {
            let batch = QueryBatch::new(Arc::clone(&sim_net), Arc::clone(&sim_delays))
                .threads(t)
                .scope(SearchScope::full());
            let t0 = Instant::now();
            let out = batch.run(&sim_queries);
            assert_eq!(out.len(), sim_queries.len());
            sim_queries.len() as f64 / t0.elapsed().as_secs_f64() / 1_000.0
        };
        println!(
            "{:>8} {:>14.1} {:>14.1} {:>14.1} {:>16.1}",
            t, qps_overlay, qps_root, qps_degraded, sim_kqps
        );
        s_overlay.push((t as f64, qps_overlay));
        s_root.push((t as f64, qps_root));
        s_degraded.push((t as f64, qps_degraded));
        s_sim.push((t as f64, sim_kqps));
    }

    let qps_1 = s_overlay.first().unwrap().1;
    let qps_4 = s_overlay[2].1;
    assert!(
        qps_4 >= 1.5 * qps_1,
        "4 client threads must beat 1 by well over 1.5x (got {qps_1:.1} -> {qps_4:.1})"
    );
    let snap = reg.snapshot();
    assert_eq!(
        snap.gauges["runtime.inflight_queries"], 0,
        "all admission slots released"
    );

    println!();
    print!(
        "{}",
        render(
            &[
                Series::new("qps overlay entry", s_overlay.clone()),
                Series::new("qps root-only entry", s_root.clone()),
                Series::new(format!("qps overlay, {kills} killed"), s_degraded.clone()),
            ],
            48,
            12
        )
    );
    println!("(x axis: concurrent client threads)");
    healthy.shutdown();
    degraded.shutdown();

    let mut fig = FigureExport::new(
        "fig14_throughput",
        "Query throughput vs concurrent client threads, overlay entry vs root-only",
    )
    .axes("concurrent client threads", "queries / second");
    fig.push_series("qps_overlay_entry", &s_overlay);
    fig.push_series("qps_root_entry", &s_root);
    fig.push_series("qps_overlay_degraded", &s_degraded);
    fig.push_series("batch_sim_kqps", &s_sim);
    // Sleep-dominated queries should scale ~linearly 1 -> 4 clients.
    fig.push_reference("qps_scaling_1_to_4", qps_4 / qps_1, 4.0);
    fig.push_note(format!(
        "{n} servers x {RECORDS_PER_SERVER} records, {q_count} queries of 0.25-length ranges; \
         max_inflight_queries {}, dispatch timeout {} ms, degraded series kills {kills} \
         disjoint branch servers with failover on",
        runtime_cfg.max_inflight_queries, runtime_cfg.dispatch_timeout_ms
    ));
    fig.push_note(format!(
        "batch_sim_kqps is the simulation plane (QueryBatch workers, no network emulation), \
         in thousands of queries per second; CPU-bound, so it only scales with host cores \
         (this host: {}) while the latency-dominated live series scales with client threads \
         regardless",
        std::thread::available_parallelism().map_or(1, |p| p.get())
    ));
    fig.write_default();
    write_chrome_trace_default(&fig.figure, &rec);
    roads_bench::suite::print_metrics_digest(&reg.snapshot());
}
