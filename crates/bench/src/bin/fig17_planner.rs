//! Figure 17: the replica-aware planner vs greedy expansion.
//!
//! Beyond the paper — sweeps query selectivity (the range length per
//! query dimension) against the overlay replication degree (the
//! hierarchy fan-out `k`, which sets how many sibling / ancestor-sibling
//! summary copies every server replicates): mean servers contacted and
//! query-forwarding bytes per query under greedy hop-by-hop expansion vs
//! the planner's batched set-cover dispatch, with recall asserted
//! identical on every single query. A second pass replays the same
//! workload through the TTL'd result cache to show the steady-state hit
//! rate. The planner's licensed win is pruning ancestor probes whose
//! replicated local summary rules them out, so the reduction is largest
//! for highly selective queries (small ranges) and the figure asserts a
//! strict servers-contacted reduction at the most selective point.

use roads_bench::{banner, figure_config, parse_args};
use roads_core::{
    execute_query_cached, execute_query_planned, execute_query_traced, plan_query,
    record_query_events, record_query_outcome, ResultCache, RoadsConfig, RoadsNetwork, SearchScope,
    ServerId,
};
use roads_netsim::DelaySpace;
use roads_summary::SummaryConfig;
use roads_telemetry::{write_chrome_trace_default, FigureExport, Recorder, Registry};
use roads_workload::{
    default_schema, generate_node_records, generate_queries, QueryWorkloadConfig,
    RecordWorkloadConfig,
};

/// Per-(degree, selectivity) aggregates over all runs and queries.
#[derive(Default)]
struct Cell {
    queries: u64,
    greedy_servers: f64,
    planned_servers: f64,
    greedy_bytes: f64,
    planned_bytes: f64,
    pruned_probes: u64,
    cache_hits: u64,
    cache_lookups: u64,
}

fn main() {
    banner(
        "Figure 17 — replica-aware planner vs greedy expansion",
        "beyond the paper: set-cover dispatch over replicated summaries",
    );
    let cfg = figure_config();
    let (quick, _) = parse_args();
    let degrees: &[usize] = if quick { &[4, 8] } else { &[4, 8, 16] };
    let range_lens = [0.05, 0.10, 0.25, 0.40];
    let reg = Registry::new();
    let rec = Recorder::new(65_536);

    println!(
        "{:>3} {:>6} {:>12} {:>13} {:>8} {:>13} {:>14} {:>9}",
        "k", "range", "greedy srv", "planned srv", "fewer", "greedy B", "planned B", "hits"
    );
    let mut cells: Vec<(usize, f64, Cell)> = Vec::new();
    for &degree in degrees {
        for run in 0..cfg.runs {
            let seed = cfg.seed.wrapping_add(run as u64 * 7919);
            let schema = default_schema(cfg.attrs);
            let records = generate_node_records(&RecordWorkloadConfig {
                nodes: cfg.nodes,
                records_per_node: cfg.records_per_node,
                attrs: cfg.attrs,
                seed,
            });
            let net = RoadsNetwork::build(
                schema.clone(),
                RoadsConfig {
                    max_children: degree,
                    summary: SummaryConfig::with_buckets(cfg.buckets),
                    ts_ms: cfg.ts_ms,
                    tr_ms: cfg.tr_ms,
                    ..RoadsConfig::paper_default()
                },
                records,
            );
            let delays = DelaySpace::paper(cfg.nodes, seed);
            for (si, &range_len) in range_lens.iter().enumerate() {
                let queries = generate_queries(
                    &schema,
                    &QueryWorkloadConfig {
                        count: cfg.queries,
                        dims: cfg.query_dims,
                        range_len,
                        nodes: cfg.nodes,
                        seed: seed ^ 0xABCD ^ (si as u64) << 32,
                    },
                );
                let cell = match cells
                    .iter_mut()
                    .find(|(d, r, _)| *d == degree && *r == range_len)
                {
                    Some((_, _, c)) => c,
                    None => {
                        cells.push((degree, range_len, Cell::default()));
                        &mut cells.last_mut().unwrap().2
                    }
                };
                let cache = ResultCache::new(4);
                for (qi, (q, start)) in queries.iter().enumerate() {
                    let entry = ServerId(*start as u32);
                    let scope = SearchScope::full();
                    // The greedy baseline runs traced; every 8th query
                    // feeds the flight-recorder artifact next to the
                    // figure (span-tree validation in `roads-inspect
                    // check` is per-trace, so full recording would
                    // dominate the check's wall clock).
                    let (greedy, trace) = execute_query_traced(&net, &delays, q, entry, scope);
                    if qi % 8 == 0 {
                        let _ = record_query_events(&rec, rec.next_trace_id(), &trace);
                    }
                    let plan = plan_query(&net, q, entry, scope);
                    let planned = execute_query_planned(&net, &delays, q, entry, scope, &plan);
                    record_query_outcome(&reg, &planned);

                    let (mut a, mut b) = (
                        greedy.matching_servers.clone(),
                        planned.matching_servers.clone(),
                    );
                    a.sort();
                    b.sort();
                    assert_eq!(
                        a, b,
                        "recall drift at k={degree} range={range_len} entry={entry}"
                    );
                    assert_eq!(greedy.matching_records, planned.matching_records);
                    assert!(planned.servers_contacted <= greedy.servers_contacted);

                    cell.queries += 1;
                    cell.greedy_servers += greedy.servers_contacted as f64;
                    cell.planned_servers += planned.servers_contacted as f64;
                    cell.greedy_bytes += greedy.query_bytes as f64;
                    cell.planned_bytes += planned.query_bytes as f64;
                    cell.pruned_probes += plan.pruned_probes as u64;

                    // Two cached replays of the same query: the first
                    // populates (miss), the second must hit.
                    for _ in 0..2 {
                        let (cached, hit) = execute_query_cached(
                            &net,
                            &delays,
                            q,
                            entry,
                            scope,
                            &cache,
                            Some(&plan),
                        );
                        assert_eq!(cached.matching_records, greedy.matching_records);
                        cell.cache_lookups += 1;
                        if hit {
                            cell.cache_hits += 1;
                        }
                    }
                }
            }
        }
    }

    let mut fig = FigureExport::new(
        "fig17_planner",
        "Replica-aware planner vs greedy: servers contacted and query bytes",
    )
    .axes("query range length per dimension", "mean servers contacted");
    let mut total_greedy_srv = 0.0;
    let mut total_planned_srv = 0.0;
    for &degree in degrees {
        let mut srv_greedy = Vec::new();
        let mut srv_planned = Vec::new();
        let mut bytes_greedy = Vec::new();
        let mut bytes_planned = Vec::new();
        for (_, range_len, c) in cells.iter().filter(|(d, _, _)| *d == degree) {
            let n = c.queries as f64;
            println!(
                "{:>3} {:>6.2} {:>12.2} {:>13.2} {:>7.1}% {:>13.0} {:>14.0} {:>8.1}%",
                degree,
                range_len,
                c.greedy_servers / n,
                c.planned_servers / n,
                100.0 * (1.0 - c.planned_servers / c.greedy_servers),
                c.greedy_bytes / n,
                c.planned_bytes / n,
                100.0 * c.cache_hits as f64 / c.cache_lookups as f64,
            );
            srv_greedy.push((*range_len, c.greedy_servers / n));
            srv_planned.push((*range_len, c.planned_servers / n));
            bytes_greedy.push((*range_len, c.greedy_bytes / n));
            bytes_planned.push((*range_len, c.planned_bytes / n));
            total_greedy_srv += c.greedy_servers;
            total_planned_srv += c.planned_servers;
            // The cache pass replays every query exactly twice with no
            // intervening epoch advance: exactly half the lookups hit.
            assert_eq!(
                2 * c.cache_hits,
                c.cache_lookups,
                "cache hit rate must be 50%"
            );
        }
        fig.push_series(format!("servers_greedy_k{degree}"), &srv_greedy);
        fig.push_series(format!("servers_planned_k{degree}"), &srv_planned);
        fig.push_series(format!("bytes_greedy_k{degree}"), &bytes_greedy);
        fig.push_series(format!("bytes_planned_k{degree}"), &bytes_planned);
    }

    // The planner must strictly reduce total contacts at the most
    // selective point of the sweep (ancestor probes pruned by replicated
    // local summaries) and never widen anywhere.
    let (_, _, tightest) = cells
        .iter()
        .find(|(d, r, _)| *d == degrees[0] && *r == range_lens[0])
        .expect("tightest cell");
    assert!(
        tightest.planned_servers < tightest.greedy_servers,
        "no contact reduction at the most selective point ({} vs {})",
        tightest.planned_servers,
        tightest.greedy_servers
    );
    assert!(tightest.planned_bytes < tightest.greedy_bytes);
    let reduction = 1.0 - total_planned_srv / total_greedy_srv;
    println!(
        "\nsweep total: {:.1}% fewer servers contacted than greedy, recall identical on every query",
        100.0 * reduction
    );
    fig.push_reference("contact_reduction_fraction", reduction, 0.05);
    fig.push_note("planner prunes ancestor probes via replicated local summaries; recall asserted identical per query");
    fig.set_telemetry(reg.snapshot());
    fig.write_default();
    write_chrome_trace_default(&fig.figure, &rec);
    roads_bench::suite::print_metrics_digest(&reg.snapshot());
}
