//! Figure 18: the incremental delta update path vs the full rebuild
//! round, swept across churn fractions.
//!
//! Beyond the paper — fixes a large record population (1M records over
//! 64 servers at full scale) and sweeps the fraction of records updated
//! per round: wall time and propagation bytes of one full
//! rebuild-everything round vs one incremental delta round over the same
//! network, plus the dirty-server footprint of each delta. The full
//! round's cost is flat in churn (it always re-aggregates every shard
//! from its records); the delta round's cost scales with the changed
//! slice and its dirty branch closure, so the speedup is largest at low
//! churn and the figure asserts the 10x floor at the 1% point the bench
//! suite gates on. Propagation bytes shrink with churn too: only dirty
//! summaries travel.

use roads_bench::{banner, figure_config, parse_args};
use roads_core::{
    update_round_delta, update_round_full, BuildOptions, RecordDelta, RoadsConfig, RoadsNetwork,
    ServerId,
};
use roads_records::{OwnerId, Record, RecordId, Schema, Value};
use roads_summary::SummaryConfig;
use roads_telemetry::FigureExport;
use std::time::Instant;

/// Per-churn-fraction aggregates over all runs.
#[derive(Default)]
struct Cell {
    rounds: u64,
    changes: u64,
    full_ms: f64,
    delta_ms: f64,
    full_bytes: u64,
    delta_bytes: u64,
    dirty_servers: f64,
}

fn churn_record(id: u64, x: f64) -> Record {
    Record::new_unchecked(
        RecordId(id),
        OwnerId((id % 1000) as u32),
        vec![Value::Float(x), Value::Float((x * 7.0).fract())],
    )
}

fn delta_net(servers: usize, per: usize, threads: usize) -> RoadsNetwork {
    let schema = Schema::unit_numeric(2);
    let cfg = RoadsConfig {
        max_children: 8,
        summary: SummaryConfig::with_buckets(128),
        ..RoadsConfig::paper_default()
    };
    let total = (servers * per) as f64;
    let records: Vec<Vec<Record>> = (0..servers)
        .map(|s| {
            (0..per)
                .map(|i| {
                    let id = s * per + i;
                    churn_record(id as u64, id as f64 / total)
                })
                .collect()
        })
        .collect();
    RoadsNetwork::build_with(schema, cfg, records, BuildOptions::with_threads(threads))
}

/// `fraction` of the population updated in place; the 9973 stride is
/// prime to both population sizes, so each round touches distinct
/// records.
fn churn_delta(servers: usize, per: usize, fraction: f64, round: u64) -> RecordDelta {
    let total = servers * per;
    let changes = ((total as f64 * fraction) as usize).max(1);
    let mut delta = RecordDelta::new();
    for j in 0..changes {
        let id = (j * 9973 + round as usize * 131) % total;
        let x = ((id as f64 / total as f64) + 0.37 * (round + 1) as f64).fract();
        delta.update(ServerId((id / per) as u32), churn_record(id as u64, x));
    }
    delta
}

fn main() {
    banner(
        "Figure 18 — incremental delta round vs full rebuild across churn",
        "beyond the paper: record-diff propagation over sharded stores",
    );
    let cfg = figure_config();
    let (_quick, _) = parse_args();
    // The 1M-record scale is part of the claim: the 10x floor below is a
    // DRAM-resident-scale property, so --quick shrinks only the repeat
    // count (via figure_config), never the federation.
    let (servers, per) = (64, 15_625);
    let fractions = [0.001, 0.01, 0.05, 0.20];
    let mut cells: Vec<Cell> = fractions.iter().map(|_| Cell::default()).collect();

    println!(
        "{:>7} {:>9} {:>11} {:>11} {:>9} {:>10} {:>11} {:>11}",
        "churn", "changes", "full ms", "delta ms", "speedup", "dirty srv", "full B", "delta B"
    );
    for run in 0..cfg.runs {
        let mut net = delta_net(servers, per, cfg.build_threads.max(4));
        for (fi, &fraction) in fractions.iter().enumerate() {
            let round = (run * fractions.len() + fi) as u64;
            let delta = churn_delta(servers, per, fraction, round);
            let cell = &mut cells[fi];
            cell.rounds += 1;
            cell.changes = delta.len() as u64;

            let t0 = Instant::now();
            let (breakdown, outcome) = update_round_delta(&mut net, &delta);
            cell.delta_ms += t0.elapsed().as_secs_f64() * 1000.0;
            cell.delta_bytes = breakdown.total_bytes();
            cell.dirty_servers += outcome.dirty.len() as f64;
            assert_eq!(
                outcome.applied,
                delta.len() as u64,
                "in-place churn never rejects"
            );

            // The full round doubles as the reset: it rebuilds every
            // shard summary, so the next fraction starts converged.
            let t0 = Instant::now();
            let full = update_round_full(&mut net);
            cell.full_ms += t0.elapsed().as_secs_f64() * 1000.0;
            cell.full_bytes = full.total_bytes();
            assert!(
                cell.delta_bytes <= cell.full_bytes,
                "delta round moved more bytes than the full round at churn {fraction}"
            );
        }
    }

    let mut fig = FigureExport::new(
        "fig18_delta_churn",
        "Incremental delta round vs full rebuild: wall time and bytes across churn",
    )
    .axes("churn fraction per round", "round wall time (ms)");
    let mut full_series = Vec::new();
    let mut delta_series = Vec::new();
    let mut speedup_series = Vec::new();
    let mut full_bytes_series = Vec::new();
    let mut delta_bytes_series = Vec::new();
    let mut speedup_at_gate = 0.0;
    for (fi, &fraction) in fractions.iter().enumerate() {
        let c = &cells[fi];
        let n = c.rounds as f64;
        let (full_ms, delta_ms) = (c.full_ms / n, c.delta_ms / n);
        let speedup = full_ms / delta_ms;
        if fraction == 0.01 {
            speedup_at_gate = speedup;
        }
        println!(
            "{:>6.1}% {:>9} {:>11.1} {:>11.1} {:>8.1}x {:>10.1} {:>11} {:>11}",
            100.0 * fraction,
            c.changes,
            full_ms,
            delta_ms,
            speedup,
            c.dirty_servers / n,
            c.full_bytes,
            c.delta_bytes,
        );
        full_series.push((fraction, full_ms));
        delta_series.push((fraction, delta_ms));
        speedup_series.push((fraction, speedup));
        full_bytes_series.push((fraction, c.full_bytes as f64));
        delta_bytes_series.push((fraction, c.delta_bytes as f64));
    }
    // The bench suite gates the 1% point at 10x; the figure re-asserts it
    // so a --quick CI run catches a slow delta path without the suite.
    assert!(
        speedup_at_gate >= 10.0,
        "delta round only {speedup_at_gate:.1}x faster than full at 1% churn (floor: 10x)"
    );

    fig.push_series("full_round_ms", &full_series);
    fig.push_series("delta_round_ms", &delta_series);
    fig.push_series("speedup", &speedup_series);
    fig.push_series("full_round_bytes", &full_bytes_series);
    fig.push_series("delta_round_bytes", &delta_bytes_series);
    fig.push_reference("speedup_at_1pct_churn", speedup_at_gate, 10.0);
    fig.push_note(
        "delta rounds fold record diffs into sharded stores and re-aggregate only the dirty \
         branch closure; full rounds rebuild every shard summary from its records",
    );
    fig.write_default();
}
