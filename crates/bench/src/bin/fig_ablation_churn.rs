//! Ablation (§VI): cost of membership churn — soft-state summaries vs
//! hash-placed records.
//!
//! In a DHT, record placement is determined by the hash function, so every
//! join or leave moves the records on the affected arc. In ROADS nothing
//! moves: summaries are soft state that expires and re-aggregates within
//! one refresh period. This binary joins/leaves servers in both designs
//! and accounts the bytes each event costs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use roads_bench::banner;
use roads_core::{update_round, RoadsConfig, RoadsNetwork};
use roads_records::WireSize;
use roads_summary::SummaryConfig;
use roads_sword::DynamicRing;
use roads_telemetry::{
    write_chrome_trace_default, EventKind, FigureExport, Recorder, Registry, SpanId,
};
use roads_workload::{default_schema, generate_node_records, RecordWorkloadConfig};

fn main() {
    banner(
        "Ablation — churn cost: ROADS soft state vs DHT record transfers",
        "§VI: DHT placement is hash-determined, so churn moves data; summaries just refresh",
    );
    let nodes = 64;
    let records_per_node = 200;
    let records = generate_node_records(&RecordWorkloadConfig {
        nodes,
        records_per_node,
        attrs: 16,
        seed: 31,
    });
    let schema = default_schema(16);
    let mut rng = StdRng::seed_from_u64(7);

    // DHT side: one attribute ring holding every record (per-record cost of
    // the other 15 rings is identical, so scale at the end).
    let mut ring = DynamicRing::new();
    for i in 0..nodes as u32 {
        ring.join(i, rng.gen::<f64>());
    }
    for rec in records.iter().flatten() {
        let p = rec.get_f64(roads_records::AttrId(0)).unwrap_or(0.5);
        ring.store(p, rec.clone());
    }

    // ROADS side: a membership event moves NO data synchronously. The
    // departed branch simply stops refreshing (soft state expires) and the
    // next periodic round re-aggregates — traffic that is already part of
    // the steady-state budget. We print that budget for context.
    let net = RoadsNetwork::build(
        schema,
        RoadsConfig {
            summary: SummaryConfig::with_buckets(1000),
            ..RoadsConfig::paper_default()
        },
        records.clone(),
    );
    let cfg = RoadsConfig::paper_default();
    let roads_steady_bps = update_round(&net).bytes_per_second(cfg.ts_ms);

    println!(
        "{:>6} {:>10} {:>18} {:>18} {:>14}",
        "event", "kind", "DHT moved (recs)", "DHT sync bytes", "ROADS sync"
    );
    let reg = Registry::new();
    let rec = Recorder::new(4096);
    let churn_trace = rec.next_trace_id();
    // One Mark span brackets the whole churn schedule; each membership
    // event hangs off it as a ChurnJoin/ChurnLeave child span.
    let churn_root = rec.record_span(churn_trace, SpanId::NONE, 0, EventKind::Mark, 0, 21_000, 0);
    let dht_bytes_ctr = reg.counter("churn.dht_sync_bytes");
    let dht_moved_ctr = reg.counter("churn.dht_records_moved");
    let events_ctr = reg.counter("churn.events");
    let mut dht_total = 0u64;
    let mut dht_pts = Vec::new();
    for event in 0..20 {
        let (kind, cost) = if event % 2 == 0 {
            ("join", ring.join(1000 + event, rng.gen::<f64>()))
        } else {
            // Leave a random existing position by probing.
            let p = rng.gen::<f64>();
            ("leave", ring.leave_nearest(p))
        };
        // One ring measured; SWORD keeps 16 (one per attribute).
        let dht_bytes = cost.bytes * 16;
        dht_total += dht_bytes;
        events_ctr.inc();
        dht_bytes_ctr.add(dht_bytes);
        dht_moved_ctr.add(cost.records_moved);
        dht_pts.push((event as f64, dht_bytes as f64));
        let event_kind = if kind == "join" {
            EventKind::ChurnJoin
        } else {
            EventKind::ChurnLeave
        };
        rec.record_span(
            churn_trace,
            churn_root,
            1000 + event,
            event_kind,
            (event as u64 + 1) * 1_000,
            1_000,
            dht_bytes,
        );
        println!(
            "{:>6} {:>10} {:>18} {:>18} {:>14}",
            event, kind, cost.records_moved, dht_bytes, 0
        );
    }
    println!("\ntotals over 20 events:");
    println!(
        "  DHT synchronous record transfer : {dht_total} bytes (blocks correctness until done)"
    );
    println!("  ROADS synchronous transfer      : 0 bytes (view heals on the next refresh, bounded by ts)");
    println!("  ROADS steady-state refresh rate : {roads_steady_bps:.0} B/s regardless of churn");
    println!(
        "(total corpus: {} records x {} bytes avg)",
        nodes * records_per_node,
        records
            .iter()
            .flatten()
            .map(WireSize::wire_size)
            .sum::<usize>()
            / (nodes * records_per_node)
    );

    let mut fig = FigureExport::new(
        "fig_ablation_churn",
        "Churn cost: ROADS soft state vs DHT record transfers",
    )
    .axes("membership event index", "synchronous bytes");
    fig.push_reference("roads_sync_bytes_per_event", 0.0, 0.0);
    fig.push_series("dht_sync_bytes", &dht_pts);
    fig.push_note(format!(
        "20 events: DHT moved {dht_total} bytes synchronously; ROADS moved 0 \
         (steady refresh {roads_steady_bps:.0} B/s regardless of churn)"
    ));
    fig.set_telemetry(reg.snapshot());
    fig.write_default();
    write_chrome_trace_default(&fig.figure, &rec);
    roads_bench::suite::print_metrics_digest(&reg.snapshot());
}
