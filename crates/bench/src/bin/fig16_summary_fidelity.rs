//! Figure 16 (reproduction extra): summary fidelity and overlay staleness
//! under churn.
//!
//! The audit plane answers *how wrong the replicated summaries are*: a
//! [`ReplicaLedger`](roads_core::ReplicaLedger) inside a background
//! [`Auditor`] tracks every overlay copy against ground truth recomputed
//! from live records. This figure sweeps the update (refresh) interval
//! against the number of crashed servers k: for each combination a live
//! cluster runs a healthy phase, a kill phase (k disjoint branch victims
//! down) and a recovery phase (all restarted), with one audit round per
//! phase step, and plots the overlay divergence and staleness-p99 series
//! over the rounds plus the cumulative per-level FP/FN rates.
//!
//! Expected shape: divergence is zero while converged, spikes the moment
//! servers die (their branch copies linger at overlay holders — nobody
//! can re-push a dead branch), only partially reconverges on refreshes
//! while the victims are down, and returns to zero after restart + the
//! next refresh. Slower refresh intervals hold divergence (and
//! staleness-p99) up for proportionally longer, and refreshes taken while
//! servers were dead surface as false *negatives* once they restart —
//! the correctness-critical direction the conservative evaluation
//! otherwise never produces.

use roads_bench::parse_args;
use roads_core::{RoadsConfig, RoadsNetwork, ServerId};
use roads_netsim::DelaySpace;
use roads_records::{OwnerId, Query, QueryBuilder, QueryId, Record, RecordId, Schema, Value};
use roads_runtime::{AuditConfig, AuditMetrics, Auditor, RoadsCluster, RuntimeConfig};
use roads_summary::SummaryConfig;
use roads_telemetry::{write_chrome_trace_default, FigureExport, Recorder, Registry};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

/// One record per server at `s / n` with fine buckets: every record sits
/// alone in its histogram bucket, so the converged overlay audits with
/// zero false positives and a refresh taken while a server was dead
/// demonstrably prunes its record (false negative after restart).
fn build_net(n: usize) -> RoadsNetwork {
    let schema = Schema::unit_numeric(1);
    let cfg = RoadsConfig {
        max_children: 3,
        summary: SummaryConfig::with_buckets(256),
        ..RoadsConfig::paper_default()
    };
    let records: Vec<Vec<Record>> = (0..n)
        .map(|s| {
            vec![Record::new_unchecked(
                RecordId(s as u64),
                OwnerId(s as u32),
                vec![Value::Float(s as f64 / n as f64)],
            )]
        })
        .collect();
    RoadsNetwork::build(schema, cfg, records)
}

/// Ground-truth probes: one narrow range query per server, centered on
/// its record.
fn probes(net: &RoadsNetwork, n: usize) -> Vec<Query> {
    (0..n)
        .map(|s| {
            let v = s as f64 / n as f64;
            QueryBuilder::new(net.schema(), QueryId(s as u64))
                .range("x0", v - 0.001, v + 0.001)
                .build()
        })
        .collect()
}

/// Crash victims with pairwise-disjoint subtrees (see Fig. 13): interior
/// servers with small subtrees first, leaves as a fallback.
fn pick_victims(net: &RoadsNetwork, k: usize) -> Vec<ServerId> {
    let tree = net.tree();
    let mut candidates: Vec<ServerId> = (0..net.len() as u32)
        .map(ServerId)
        .filter(|&s| s != tree.root())
        .collect();
    candidates.sort_by_key(|&s| (tree.children(s).is_empty(), tree.subtree(s).len(), s.0));
    let mut victims = Vec::new();
    let mut covered: HashSet<ServerId> = HashSet::new();
    for s in candidates {
        if victims.len() == k {
            break;
        }
        let sub = tree.subtree(s);
        if sub.iter().any(|x| covered.contains(x)) {
            continue;
        }
        covered.extend(sub);
        victims.push(s);
    }
    victims
}

fn main() {
    let (quick, _) = parse_args();
    let n = if quick { 13 } else { 40 };
    let intervals: &[u64] = if quick { &[1, 4] } else { &[1, 2, 4] };
    let kill_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4] };
    // Audit rounds per phase: healthy, killed, restarted. The recovery
    // phase is long enough that even the slowest refresh interval runs at
    // least one refresh after the restart.
    let (healthy, dead, recovered) = (4u64, 6u64, 6u64);
    println!("==================================================================");
    println!("Figure 16 — summary fidelity & overlay staleness ({n} servers)");
    println!("overlay divergence / staleness p99 per audit round, refresh");
    println!("interval x k crashed servers; cumulative per-level FP/FN rates");
    println!("==================================================================");

    let runtime_cfg = RuntimeConfig {
        dispatch_timeout_ms: 200,
        max_retries: 1,
        backoff_base_ms: 10,
        query_deadline_ms: 20_000,
        delay_scale: 0.1,
        per_record_retrieval_us: 150,
        base_query_cost_us: 500,
        ..RuntimeConfig::paper_like()
    };

    let mut fig = FigureExport::new(
        "fig16_summary_fidelity",
        "overlay divergence & staleness p99 vs audit round, refresh interval x crashed servers",
    )
    .axes("audit round", "divergence (%) / staleness p99 (rounds)");
    let rec = Arc::new(Recorder::new(65_536));
    let mut last_reg = Registry::new();
    let mut any_false_negatives = 0u64;

    println!(
        "{:>8} {:>2} {:>7} {:>12} {:>12} {:>10} {:>6} {:>6}",
        "refresh", "k", "rounds", "peak-div%", "end-div%", "stale-p99", "fp", "fn"
    );
    for &interval in intervals {
        for &k in kill_counts {
            // A fresh registry per configuration keeps the per-level
            // audit counters (and the AuditLevelRow.live_* fields read
            // from them) from bleeding across configurations.
            let reg = Registry::new();
            let mut cluster = RoadsCluster::start_instrumented(
                build_net(n),
                DelaySpace::paper(n, 31),
                runtime_cfg,
                &reg,
            );
            // The shared recorder collects real traces across configs.
            cluster.set_recorder(Arc::clone(&rec));
            let net = cluster.shared_network();
            let victims = pick_victims(&net, k);
            assert_eq!(victims.len(), k, "need {k} disjoint victims among {n}");
            let metrics = Arc::new(AuditMetrics::new(&reg, net.tree().levels()));
            cluster.set_audit_metrics(Arc::clone(&metrics));
            let auditor = Auditor::start(
                Arc::clone(&net),
                metrics,
                AuditConfig {
                    interval: Duration::from_secs(3600), // rounds driven manually
                    probes_per_tick: n,
                    refresh_every: interval,
                    ..AuditConfig::default()
                },
                probes(&net, n),
                cluster.liveness(),
            );
            let root = net.tree().root();
            let full = QueryBuilder::new(net.schema(), QueryId(1_000))
                .range("x0", 0.0, 1.0)
                .build();

            let mut div_series: Vec<(f64, f64)> = Vec::new();
            let mut stale_series: Vec<(f64, f64)> = Vec::new();
            let mut round = 0u64;
            let mut peak_div = 0.0f64;
            let mut observe = |auditor: &Auditor, rounds: u64, peak: &mut f64| {
                for _ in 0..rounds {
                    auditor.tick_now();
                    round += 1;
                    let r = auditor.report();
                    *peak = peak.max(r.divergence);
                    div_series.push((round as f64, r.divergence * 100.0));
                    stale_series.push((round as f64, r.staleness_p99 as f64));
                }
            };

            // Healthy phase: converged, clean.
            observe(&auditor, healthy, &mut peak_div);
            let clean = auditor.report();
            assert_eq!(clean.divergence, 0.0, "converged overlay must audit clean");
            assert_eq!(clean.staleness_p99, 0, "no refresh misses while all live");
            let out = cluster.query(&full, root);
            assert_eq!(out.records.len(), n, "healthy full-coverage query");

            // Kill phase: k victims down, their branch copies linger.
            for &v in &victims {
                assert!(cluster.kill_server(v));
            }
            observe(&auditor, dead, &mut peak_div);
            let degraded = auditor.report();
            assert!(
                degraded.divergence > 0.0 || peak_div > 0.0,
                "killing {k} servers must diverge the overlay"
            );
            assert!(peak_div > 0.0);
            let faulted = cluster.query(&full, root);
            assert!(
                faulted.records.len() < n,
                "dead servers' records are unreachable"
            );

            // Recovery phase: restart everyone; the next refresh re-pushes
            // every copy and the overlay reconverges.
            for &v in &victims {
                assert!(cluster.restart_server(v));
            }
            observe(&auditor, recovered, &mut peak_div);
            let report = auditor.stop();
            assert_eq!(
                report.divergence, 0.0,
                "restart + refresh must reconverge (interval {interval}, k {k})"
            );
            let healed = cluster.query(&full, root);
            assert_eq!(healed.records.len(), n, "restored full coverage");
            cluster.shutdown();
            last_reg = reg;

            any_false_negatives += report.false_negatives();
            println!(
                "{:>8} {:>2} {:>7} {:>11.1}% {:>11.1}% {:>10} {:>6} {:>6}",
                interval,
                k,
                round,
                peak_div * 100.0,
                report.divergence * 100.0,
                report.staleness_p99,
                report.false_positives(),
                report.false_negatives(),
            );
            fig.push_series(format!("divergence_pct_r{interval}_k{k}"), &div_series);
            fig.push_series(format!("staleness_p99_r{interval}_k{k}"), &stale_series);
            let fp_rates: Vec<(f64, f64)> = report
                .levels
                .iter()
                .map(|l| (l.level as f64, 100.0 * l.fp_rate()))
                .collect();
            let fn_rates: Vec<(f64, f64)> = report
                .levels
                .iter()
                .map(|l| (l.level as f64, 100.0 * l.fn_rate()))
                .collect();
            fig.push_series(format!("fp_rate_pct_by_level_r{interval}_k{k}"), &fp_rates);
            fig.push_series(format!("fn_rate_pct_by_level_r{interval}_k{k}"), &fn_rates);
        }
    }
    assert!(
        any_false_negatives > 0,
        "a refresh taken while servers were dead must surface as false \
         negatives after restart in at least one configuration"
    );

    fig.push_note(format!(
        "{n} servers x 1 record, {}-round phases healthy/killed/restarted; \
         refresh every 1..4 audit rounds; disjoint-subtree victims",
        healthy + dead + recovered
    ));
    fig.push_note(
        "divergence spikes on kills (dead branch copies linger at overlay holders), \
         partially reconverges on refreshes while dead, fully after restart + refresh; \
         refreshes while dead prune live records -> false negatives until the next refresh",
    );
    fig.write_default();
    write_chrome_trace_default(&fig.figure, &rec);
    // Digest covers the last configuration's cluster + audit registry.
    roads_bench::suite::print_metrics_digest(&last_reg.snapshot());
}
