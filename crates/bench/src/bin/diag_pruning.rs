//! Diagnostic: summary pruning effectiveness under the default workload.
//!
//! Prints per-query ground truth (servers with real matches) vs servers the
//! ROADS execution contacts, split by reason, plus per-dimension match
//! statistics. Not a paper figure — a harness health check.

use roads_bench::{figure_config, TrialConfig};
use roads_core::{execute_query, RoadsConfig, RoadsNetwork, SearchScope, ServerId};
use roads_netsim::DelaySpace;
use roads_summary::SummaryConfig;
use roads_workload::{
    default_schema, generate_node_records, generate_queries, QueryWorkloadConfig,
    RecordWorkloadConfig,
};

fn main() {
    let cfg = TrialConfig {
        runs: 1,
        queries: 100,
        ..figure_config()
    };
    let rec_cfg = RecordWorkloadConfig {
        nodes: cfg.nodes,
        records_per_node: cfg.records_per_node,
        attrs: cfg.attrs,
        seed: cfg.seed,
    };
    let records = generate_node_records(&rec_cfg);
    let schema = default_schema(cfg.attrs);
    let queries = generate_queries(
        &schema,
        &QueryWorkloadConfig {
            count: cfg.queries,
            dims: cfg.query_dims,
            range_len: 0.25,
            nodes: cfg.nodes,
            seed: cfg.seed ^ 0xABCD,
        },
    );
    let net = RoadsNetwork::build(
        schema,
        RoadsConfig {
            max_children: cfg.degree,
            summary: SummaryConfig::with_buckets(cfg.buckets),
            ..RoadsConfig::paper_default()
        },
        records,
    );
    let delays = DelaySpace::paper(cfg.nodes, cfg.seed);

    let mut gt_sum = 0usize;
    let mut contacted_sum = 0usize;
    let mut leaf_fp_sum = 0usize;
    for (q, start) in &queries {
        let gt = net.matching_servers(q).len();
        let out = execute_query(
            &net,
            &delays,
            q,
            ServerId(*start as u32),
            SearchScope::full(),
        );
        gt_sum += gt;
        contacted_sum += out.servers_contacted;
        leaf_fp_sum += out.servers_contacted.saturating_sub(gt);
    }
    let nq = queries.len() as f64;
    println!("queries: {}", queries.len());
    println!(
        "mean ground-truth matching servers: {:.1}",
        gt_sum as f64 / nq
    );
    println!(
        "mean servers contacted:             {:.1}",
        contacted_sum as f64 / nq
    );
    println!(
        "mean excess (false pos + routing):  {:.1}",
        leaf_fp_sum as f64 / nq
    );
}
