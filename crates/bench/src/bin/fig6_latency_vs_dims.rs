//! Figure 6: latency as a function of query dimensionality.
//!
//! Paper result: "the latency in ROADS decreases by roughly 40% as the
//! number of query dimensions increases from 2 to 8 … In contrast, SWORD
//! only uses one dimension in the search. Thus its query latency remains
//! largely the same."

use roads_bench::{banner, figure_config, run_comparison_recorded, TrialConfig};
use roads_telemetry::{write_chrome_trace_default, FigureExport, Recorder, Registry};

fn main() {
    banner(
        "Figure 6 — query latency vs query dimensionality",
        "ROADS drops ~40% from 2 to 8 dims; SWORD flat",
    );
    let base = figure_config();
    let reg = Registry::new();
    let rec = Recorder::new(65_536);
    let mut roads_pts = Vec::new();
    let mut sword_pts = Vec::new();
    println!(
        "{:>5} {:>14} {:>14} {:>12} {:>12}",
        "dims", "ROADS (ms)", "SWORD (ms)", "ROADS srv", "SWORD srv"
    );
    for dims in 2..=8 {
        let cfg = TrialConfig {
            query_dims: dims,
            ..base
        };
        let (r, _) = run_comparison_recorded(&cfg, Some(&reg), Some(&rec));
        println!(
            "{:>5} {:>14.1} {:>14.1} {:>12.1} {:>12.1}",
            dims,
            r.roads_latency.mean,
            r.sword_latency.mean,
            r.roads_servers_contacted,
            r.sword_servers_contacted
        );
        roads_pts.push((dims as f64, r.roads_latency.mean));
        sword_pts.push((dims as f64, r.sword_latency.mean));
    }
    println!("\npaper: ROADS ~1400 ms at 2 dims -> ~850 ms at 8 dims; SWORD ~1500 ms flat.");

    let mut fig = FigureExport::new(
        "fig6_latency_vs_dims",
        "Query latency vs query dimensionality",
    )
    .axes("query dimensions", "latency (ms)");
    if let (Some(&(_, at2)), Some(&(_, at8))) = (roads_pts.first(), roads_pts.last()) {
        fig.push_reference("roads_latency_drop_2_to_8_dims", 1.0 - at8 / at2, 0.4);
    }
    fig.push_series("roads_ms", &roads_pts);
    fig.push_series("sword_ms", &sword_pts);
    fig.push_note("paper: ROADS drops ~40% from 2 to 8 dims; SWORD flat");
    fig.set_telemetry(reg.snapshot());
    fig.write_default();
    write_chrome_trace_default(&fig.figure, &rec);
    roads_bench::suite::print_metrics_digest(&reg.snapshot());
}
