//! Figure 6: latency as a function of query dimensionality.
//!
//! Paper result: "the latency in ROADS decreases by roughly 40% as the
//! number of query dimensions increases from 2 to 8 … In contrast, SWORD
//! only uses one dimension in the search. Thus its query latency remains
//! largely the same."

use roads_bench::{banner, figure_config, run_comparison, TrialConfig};

fn main() {
    banner(
        "Figure 6 — query latency vs query dimensionality",
        "ROADS drops ~40% from 2 to 8 dims; SWORD flat",
    );
    let base = figure_config();
    println!(
        "{:>5} {:>14} {:>14} {:>12} {:>12}",
        "dims", "ROADS (ms)", "SWORD (ms)", "ROADS srv", "SWORD srv"
    );
    for dims in 2..=8 {
        let cfg = TrialConfig {
            query_dims: dims,
            ..base
        };
        let r = run_comparison(&cfg);
        println!(
            "{:>5} {:>14.1} {:>14.1} {:>12.1} {:>12.1}",
            dims,
            r.roads_latency.mean,
            r.sword_latency.mean,
            r.roads_servers_contacted,
            r.sword_servers_contacted
        );
    }
    println!("\npaper: ROADS ~1400 ms at 2 dims -> ~850 ms at 8 dims; SWORD ~1500 ms flat.");
}
