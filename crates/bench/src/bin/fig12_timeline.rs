//! Figure 12 (reproduction extra): soft-state convergence timeline.
//!
//! Runs the message-driven ROADS data plane with the flight recorder and
//! the periodic timeline sampler attached, crashes a subtree mid-run, and
//! plots how the federation's soft state reacts: live child summaries
//! drop as the crashed branch's TTLs expire, then recover nothing (the
//! branch is gone) while overlay replicas and load share re-stabilise.
//! The exported Perfetto trace (`results/fig12_timeline.trace.json`)
//! shows the same run as causal spans: aggregation ticks, summary
//! publishes/merges, replica installs/refreshes, TTL expiries and the
//! query issued after the crash.

use roads_bench::parse_args;
use roads_core::protocol::{build_data_simulation, issue_query, run_with_timeline, DataNode};
use roads_core::{HierarchyTree, RoadsConfig, ServerId};
use roads_netsim::{DelaySpace, NodeId, SimTime, Simulator};
use roads_records::{OwnerId, QueryBuilder, QueryId, Record, RecordId, Schema, Value};
use roads_summary::SummaryConfig;
use roads_telemetry::{write_chrome_trace_default, FigureExport, Recorder, Registry, Timeline};
use std::sync::Arc;

fn records(n: usize) -> Vec<Vec<Record>> {
    (0..n)
        .map(|s| {
            vec![Record::new_unchecked(
                RecordId(s as u64),
                OwnerId(s as u32),
                vec![Value::Float(s as f64 / n as f64)],
            )]
        })
        .collect()
}

fn main() {
    let (quick, _) = parse_args();
    let n = if quick { 27 } else { 81 };
    println!("==================================================================");
    println!("Figure 12 — soft-state convergence timeline ({n} servers)");
    println!("gauges sampled every 2 s; a leaf subtree crashes at t = 30 s");
    println!("==================================================================");

    let schema = Schema::unit_numeric(1);
    let cfg = RoadsConfig {
        max_children: 3,
        summary: SummaryConfig::with_buckets(100),
        ts_ms: 2_000,
        summary_ttl_ms: 7_000,
        ..RoadsConfig::paper_default()
    };
    let tree = HierarchyTree::build(n, cfg.max_children);
    let mut sim = build_data_simulation(
        &tree,
        cfg,
        schema.clone(),
        records(n),
        DelaySpace::paper(n, 17),
    );
    let rec = Arc::new(Recorder::new(65_536));
    sim.set_recorder(Arc::clone(&rec));
    let mut timeline = Timeline::new(2_000.0);

    // Phase 1: converge from cold soft state.
    run_with_timeline(&mut sim, SimTime::from_millis(30_000), &mut timeline);

    // Crash one non-root branch: its summaries stop refreshing and the
    // parents' TTLs sweep them out within summary_ttl_ms.
    let victim = *tree
        .children(tree.root())
        .last()
        .expect("root has children");
    let mut crashed = 0usize;
    crash_subtree(&mut sim, &tree, victim, &mut crashed);
    println!(
        "crashed branch under server {} ({crashed} servers)",
        victim.0
    );

    // Phase 2: watch the soft state heal around the hole, then query.
    run_with_timeline(&mut sim, SimTime::from_millis(60_000), &mut timeline);
    let reg = Registry::new();
    let query = QueryBuilder::new(&schema, QueryId(1))
        .range("x0", 0.0, 1.0)
        .build();
    issue_query(&mut sim, NodeId(0), query);
    reg.counter("protocol.queries").inc();
    run_with_timeline(&mut sim, SimTime::from_millis(65_000), &mut timeline);

    for s in timeline.series() {
        let last = s.points.last().map(|p| p.1).unwrap_or(0.0);
        println!(
            "{:<18} {} samples, final value {:.2}",
            s.name,
            s.points.len(),
            last
        );
    }
    let expiries = rec
        .events()
        .iter()
        .filter(|e| e.kind == roads_telemetry::EventKind::TtlExpire)
        .count();
    println!("TTL expiry events recorded: {expiries}");

    let mut fig = FigureExport::new(
        "fig12_timeline",
        "Soft-state convergence timeline with a mid-run branch crash",
    )
    .axes("virtual time (ms)", "gauge value");
    timeline.attach(&mut fig);
    fig.push_note(format!(
        "{n} servers, ts=2s, TTL=7s; branch under server {} ({crashed} servers) crashed at t=30s",
        victim.0
    ));
    fig.push_note(format!("{expiries} TTL expiry events in the trace"));
    fig.write_default();
    write_chrome_trace_default(&fig.figure, &rec);
    roads_bench::suite::print_metrics_digest(&reg.snapshot());
}

fn crash_subtree(
    sim: &mut Simulator<DataNode>,
    tree: &HierarchyTree,
    at: ServerId,
    crashed: &mut usize,
) {
    sim.node_mut(NodeId(at.0)).crash();
    *crashed += 1;
    for &c in tree.children(at) {
        crash_subtree(sim, tree, c, crashed);
    }
}
