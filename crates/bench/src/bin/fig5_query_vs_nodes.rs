//! Figure 5: query message overhead as a function of the number of nodes.
//!
//! Paper result: "ROADS has 2∼5 times higher query overhead than SWORD,
//! because ROADS has to visit more servers due to voluntary sharing" —
//! every owner retains its records, so the query must reach all owners with
//! matches, while SWORD concentrates matching records on fewer DHT servers.

use roads_bench::{banner, figure_config, run_comparison_recorded, TrialConfig};
use roads_telemetry::{write_chrome_trace_default, FigureExport, Recorder, Registry};

fn main() {
    banner(
        "Figure 5 — query message overhead vs number of nodes (bytes/query)",
        "ROADS 2-5x higher than SWORD",
    );
    let base = figure_config();
    let reg = Registry::new();
    let rec = Recorder::new(65_536);
    let mut roads_pts = Vec::new();
    let mut sword_pts = Vec::new();
    let mut ratio_pts = Vec::new();
    println!(
        "{:>6} {:>14} {:>14} {:>12} {:>12} {:>12}",
        "nodes", "ROADS (B)", "SWORD (B)", "ROADS/SWORD", "ROADS srv", "SWORD srv"
    );
    let sweep: Vec<usize> = if base.nodes <= 64 {
        vec![32, 64, 96, 128]
    } else {
        (1..=10).map(|i| i * 64).collect()
    };
    for nodes in sweep {
        let cfg = TrialConfig { nodes, ..base };
        let (r, _) = run_comparison_recorded(&cfg, Some(&reg), Some(&rec));
        println!(
            "{:>6} {:>14.0} {:>14.0} {:>12.2} {:>12.1} {:>12.1}",
            nodes,
            r.roads_query_bytes,
            r.sword_query_bytes,
            r.roads_query_bytes / r.sword_query_bytes,
            r.roads_servers_contacted,
            r.sword_servers_contacted
        );
        roads_pts.push((nodes as f64, r.roads_query_bytes));
        sword_pts.push((nodes as f64, r.sword_query_bytes));
        ratio_pts.push((nodes as f64, r.roads_query_bytes / r.sword_query_bytes));
    }
    println!("\npaper: ROADS up to ~5000 bytes/query at 640 nodes, SWORD ~1000-2500.");

    let mut fig = FigureExport::new(
        "fig5_query_vs_nodes",
        "Query message overhead vs number of nodes (bytes/query)",
    )
    .axes("nodes", "query overhead (B)");
    if let Some(&(_, ratio)) = ratio_pts.last() {
        fig.push_reference("roads_over_sword_ratio@max_nodes", ratio, 3.5);
    }
    fig.push_series("roads_bytes", &roads_pts);
    fig.push_series("sword_bytes", &sword_pts);
    fig.push_series("roads_over_sword", &ratio_pts);
    fig.push_note("paper: ROADS 2-5x higher query overhead than SWORD");
    fig.set_telemetry(reg.snapshot());
    fig.write_default();
    write_chrome_trace_default(&fig.figure, &rec);
    roads_bench::suite::print_metrics_digest(&reg.snapshot());
}
