//! Ablation (§III-C): client-controlled search scope.
//!
//! "Each ancestor (or their siblings) of the starting server is one level
//! higher in the hierarchy, providing more resources but requiring a longer
//! search path. Based on the needs of how wide a range should be searched,
//! the client can choose one or several branches to start its queries."
//!
//! This binary sweeps the scope from the entry server's own branch
//! (levels 0) to the whole hierarchy and reports the coverage/cost curve:
//! matching records found, servers contacted, latency and bytes.

use roads_bench::{banner, figure_config, TrialConfig};
use roads_core::{
    execute_query, execute_query_recorded, record_query_outcome, LatencyStats, RoadsConfig,
    RoadsNetwork, SearchScope, ServerId,
};
use roads_netsim::DelaySpace;
use roads_summary::SummaryConfig;
use roads_telemetry::{write_chrome_trace_default, FigureExport, Recorder, Registry};
use roads_workload::{
    default_schema, generate_node_records, generate_queries, QueryWorkloadConfig,
    RecordWorkloadConfig,
};

fn main() {
    banner(
        "Ablation — search scope: levels searched above the entry server",
        "wider scope finds more resources but contacts more servers (§III-C)",
    );
    let cfg = TrialConfig {
        runs: 1,
        ..figure_config()
    };
    let rec_cfg = RecordWorkloadConfig {
        nodes: cfg.nodes,
        records_per_node: cfg.records_per_node,
        attrs: cfg.attrs,
        seed: cfg.seed,
    };
    let records = generate_node_records(&rec_cfg);
    let schema = default_schema(cfg.attrs);
    let queries = generate_queries(
        &schema,
        &QueryWorkloadConfig {
            count: cfg.queries.min(200),
            dims: cfg.query_dims,
            range_len: 0.25,
            nodes: cfg.nodes,
            seed: cfg.seed ^ 0xABCD,
        },
    );
    let net = RoadsNetwork::build(
        schema,
        RoadsConfig {
            max_children: cfg.degree,
            summary: SummaryConfig::with_buckets(cfg.buckets),
            ..RoadsConfig::paper_default()
        },
        records,
    );
    let delays = DelaySpace::paper(cfg.nodes, cfg.seed);
    let levels = net.tree().levels();

    println!(
        "{:>7} {:>10} {:>12} {:>12} {:>12}",
        "scope", "recall(%)", "servers", "lat (ms)", "B/query"
    );
    // Full-scope ground truth for recall.
    let full_recs: usize = queries
        .iter()
        .map(|(q, s)| {
            execute_query(&net, &delays, q, ServerId(*s as u32), SearchScope::full())
                .matching_records
        })
        .sum();
    let reg = Registry::new();
    let rec = Recorder::new(65_536);
    let mut recall_pts = Vec::new();
    let mut servers_pts = Vec::new();
    let mut latency_pts = Vec::new();
    for scope_levels in 0..levels {
        let scope = SearchScope::levels(scope_levels);
        let mut recs = 0usize;
        let mut servers = 0.0;
        let mut bytes = 0.0;
        let mut lat = Vec::new();
        for (q, s) in &queries {
            let out =
                execute_query_recorded(&net, &delays, q, ServerId(*s as u32), scope, Some(&rec));
            record_query_outcome(&reg, &out);
            recs += out.matching_records;
            servers += out.servers_contacted as f64;
            bytes += out.query_bytes as f64;
            lat.push(out.latency_ms);
        }
        let stats = LatencyStats::from_samples(&lat).expect("non-empty");
        let nq = queries.len() as f64;
        let recall = 100.0 * recs as f64 / full_recs.max(1) as f64;
        println!(
            "{:>7} {:>10.1} {:>12.1} {:>12.1} {:>12.0}",
            scope_levels,
            recall,
            servers / nq,
            stats.mean,
            bytes / nq
        );
        recall_pts.push((scope_levels as f64, recall));
        servers_pts.push((scope_levels as f64, servers / nq));
        latency_pts.push((scope_levels as f64, stats.mean));
    }
    println!(
        "\nscope L-1 ({} levels) equals the full hierarchy: recall 100% by construction.",
        levels - 1
    );
    println!("expected: recall climbs steeply with scope while cost climbs in step —");
    println!("clients wanting 'any match nearby' stop early; exhaustive searches pay full cost.");

    let mut fig = FigureExport::new(
        "fig_ablation_scope",
        "Client-controlled search scope: coverage vs cost",
    )
    .axes("scope (levels above entry server)", "see series");
    if let Some(&(_, recall_full)) = recall_pts.last() {
        fig.push_reference("recall_at_full_scope_pct", recall_full, 100.0);
    }
    fig.push_series("recall_pct", &recall_pts);
    fig.push_series("servers_contacted", &servers_pts);
    fig.push_series("latency_ms", &latency_pts);
    fig.set_telemetry(reg.snapshot());
    fig.write_default();
    write_chrome_trace_default(&fig.figure, &rec);
    roads_bench::suite::print_metrics_digest(&reg.snapshot());
}
