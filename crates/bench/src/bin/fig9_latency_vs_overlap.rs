//! Figure 9: latency as a function of the data overlap factor.
//!
//! Paper setup: "for each of the first 8 attributes, we let the resource
//! data of each server distribute within a range of length Of/320, randomly
//! located within \[0,1\]", Of swept 1→12. Result: "the latency increases
//! slightly from 810 to 860 ms (about 8%) … more servers have matching
//! records when their data exhibit larger overlaps", with a similar ~10%
//! increase in query overhead.

use roads_bench::{banner, figure_config, run_comparison_recorded, TrialConfig};
use roads_telemetry::{write_chrome_trace_default, FigureExport, Recorder, Registry};

fn main() {
    banner(
        "Figure 9 — query latency vs data overlap factor",
        "latency rises slightly (~8%) as overlap grows 1 -> 12",
    );
    let base = figure_config();
    let reg = Registry::new();
    let rec = Recorder::new(65_536);
    let mut latency_pts = Vec::new();
    let mut bytes_pts = Vec::new();
    println!(
        "{:>4} {:>14} {:>14} {:>12}",
        "Of", "ROADS (ms)", "bytes/query", "servers"
    );
    let mut first = None;
    let mut last = None;
    for of in [1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0] {
        let cfg = TrialConfig {
            overlap_factor: Some(of),
            ..base
        };
        let (r, _) = run_comparison_recorded(&cfg, Some(&reg), Some(&rec));
        println!(
            "{:>4.0} {:>14.1} {:>14.0} {:>12.1}",
            of, r.roads_latency.mean, r.roads_query_bytes, r.roads_servers_contacted
        );
        latency_pts.push((of, r.roads_latency.mean));
        bytes_pts.push((of, r.roads_query_bytes));
        if first.is_none() {
            first = Some(r.roads_latency.mean);
        }
        last = Some(r.roads_latency.mean);
    }
    let mut fig = FigureExport::new(
        "fig9_latency_vs_overlap",
        "Query latency vs data overlap factor",
    )
    .axes("overlap factor Of", "latency (ms)");
    if let (Some(f), Some(l)) = (first, last) {
        println!(
            "\nmeasured increase: {:.1}% (paper: ~8%, 810 -> 860 ms)",
            (l / f - 1.0) * 100.0
        );
        fig.push_reference("latency_increase_fraction", l / f - 1.0, 0.08);
    }
    fig.push_series("roads_ms", &latency_pts);
    fig.push_series("roads_bytes", &bytes_pts);
    fig.push_note("paper: latency rises ~8% (810 -> 860 ms) as Of grows 1 -> 12");
    fig.set_telemetry(reg.snapshot());
    fig.write_default();
    write_chrome_trace_default(&fig.figure, &rec);
    roads_bench::suite::print_metrics_digest(&reg.snapshot());
}
