//! Figure 9: latency as a function of the data overlap factor.
//!
//! Paper setup: "for each of the first 8 attributes, we let the resource
//! data of each server distribute within a range of length Of/320, randomly
//! located within \[0,1\]", Of swept 1→12. Result: "the latency increases
//! slightly from 810 to 860 ms (about 8%) … more servers have matching
//! records when their data exhibit larger overlaps", with a similar ~10%
//! increase in query overhead.

use roads_bench::{banner, figure_config, run_comparison, TrialConfig};

fn main() {
    banner(
        "Figure 9 — query latency vs data overlap factor",
        "latency rises slightly (~8%) as overlap grows 1 -> 12",
    );
    let base = figure_config();
    println!(
        "{:>4} {:>14} {:>14} {:>12}",
        "Of", "ROADS (ms)", "bytes/query", "servers"
    );
    let mut first = None;
    let mut last = None;
    for of in [1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0] {
        let cfg = TrialConfig {
            overlap_factor: Some(of),
            ..base
        };
        let r = run_comparison(&cfg);
        println!(
            "{:>4.0} {:>14.1} {:>14.0} {:>12.1}",
            of, r.roads_latency.mean, r.roads_query_bytes, r.roads_servers_contacted
        );
        if first.is_none() {
            first = Some(r.roads_latency.mean);
        }
        last = Some(r.roads_latency.mean);
    }
    if let (Some(f), Some(l)) = (first, last) {
        println!(
            "\nmeasured increase: {:.1}% (paper: ~8%, 810 -> 860 ms)",
            (l / f - 1.0) * 100.0
        );
    }
}
