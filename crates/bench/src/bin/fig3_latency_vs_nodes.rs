//! Figure 3: query resolving latency as a function of the number of nodes.
//!
//! Paper result: "The latency increases logarithmically in ROADS but
//! linearly in SWORD; ROADS has about 50%∼60% less query latency than
//! SWORD", with a small ROADS jump at 640 nodes when the hierarchy grows
//! from 4 to 5 levels.

use roads_bench::chart::{render, Series};
use roads_bench::{banner, figure_config, run_comparison_recorded, TrialConfig};
use roads_telemetry::{write_chrome_trace_default, FigureExport, Recorder, Registry};

fn main() {
    banner(
        "Figure 3 — query latency vs number of nodes",
        "ROADS logarithmic, SWORD linear; ROADS 40-60% lower; jump at 640 (depth 4->5)",
    );
    let base = figure_config();
    let reg = Registry::new();
    let rec = Recorder::new(65_536);
    let mut traces = None;
    println!(
        "{:>6} {:>14} {:>14} {:>10} {:>8}",
        "nodes", "ROADS (ms)", "SWORD (ms)", "ROADS/SWORD", "levels"
    );
    let sweep: Vec<usize> = if base.nodes <= 64 {
        vec![32, 64, 96, 128]
    } else {
        (1..=10).map(|i| i * 64).collect()
    };
    let mut roads_pts = Vec::new();
    let mut sword_pts = Vec::new();
    for nodes in sweep {
        let cfg = TrialConfig { nodes, ..base };
        let (r, report) = run_comparison_recorded(&cfg, Some(&reg), Some(&rec));
        // Keep the trace report of the paper's headline point (or the
        // closest we run), not the union across incomparable topologies.
        if nodes == base.nodes || traces.is_none() {
            traces = report;
        }
        let levels = roads_core::HierarchyTree::build(nodes, cfg.degree).levels();
        println!(
            "{:>6} {:>14.1} {:>14.1} {:>10.2} {:>8}",
            nodes,
            r.roads_latency.mean,
            r.sword_latency.mean,
            r.roads_latency.mean / r.sword_latency.mean,
            levels
        );
        roads_pts.push((nodes as f64, r.roads_latency.mean));
        sword_pts.push((nodes as f64, r.sword_latency.mean));
    }
    println!();
    print!(
        "{}",
        render(
            &[
                Series::new("ROADS (ms)", roads_pts.clone()),
                Series::new("SWORD (ms)", sword_pts.clone())
            ],
            60,
            14
        )
    );
    println!("\npaper: ROADS ~800 ms at 320 nodes; SWORD grows to ~2300 ms at 640.");

    let mut fig = FigureExport::new("fig3_latency_vs_nodes", "Query latency vs number of nodes")
        .axes("nodes", "latency (ms)");
    if let Some(&(_, ms)) = roads_pts.iter().find(|(n, _)| *n == 320.0) {
        fig.push_reference("roads_latency_ms@320", ms, 800.0);
    }
    if let Some(&(_, ms)) = sword_pts.iter().find(|(n, _)| *n == 640.0) {
        fig.push_reference("sword_latency_ms@640", ms, 2300.0);
    }
    fig.push_series("roads_ms", &roads_pts);
    fig.push_series("sword_ms", &sword_pts);
    fig.set_telemetry(reg.snapshot());
    if let Some(t) = traces {
        fig.set_traces(t);
    }
    fig.write_default();
    write_chrome_trace_default(&fig.figure, &rec);
    roads_bench::suite::print_metrics_digest(&reg.snapshot());
}
