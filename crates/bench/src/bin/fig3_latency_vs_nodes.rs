//! Figure 3: query resolving latency as a function of the number of nodes.
//!
//! Paper result: "The latency increases logarithmically in ROADS but
//! linearly in SWORD; ROADS has about 50%∼60% less query latency than
//! SWORD", with a small ROADS jump at 640 nodes when the hierarchy grows
//! from 4 to 5 levels.

use roads_bench::chart::{render, Series};
use roads_bench::{banner, figure_config, run_comparison, TrialConfig};

fn main() {
    banner(
        "Figure 3 — query latency vs number of nodes",
        "ROADS logarithmic, SWORD linear; ROADS 40-60% lower; jump at 640 (depth 4->5)",
    );
    let base = figure_config();
    println!(
        "{:>6} {:>14} {:>14} {:>10} {:>8}",
        "nodes", "ROADS (ms)", "SWORD (ms)", "ROADS/SWORD", "levels"
    );
    let sweep: Vec<usize> = if base.nodes <= 64 {
        vec![32, 64, 96, 128]
    } else {
        (1..=10).map(|i| i * 64).collect()
    };
    let mut roads_pts = Vec::new();
    let mut sword_pts = Vec::new();
    for nodes in sweep {
        let cfg = TrialConfig { nodes, ..base };
        let r = run_comparison(&cfg);
        let levels = roads_core::HierarchyTree::build(nodes, cfg.degree).levels();
        println!(
            "{:>6} {:>14.1} {:>14.1} {:>10.2} {:>8}",
            nodes,
            r.roads_latency.mean,
            r.sword_latency.mean,
            r.roads_latency.mean / r.sword_latency.mean,
            levels
        );
        roads_pts.push((nodes as f64, r.roads_latency.mean));
        sword_pts.push((nodes as f64, r.sword_latency.mean));
    }
    println!();
    print!(
        "{}",
        render(
            &[
                Series::new("ROADS (ms)", roads_pts),
                Series::new("SWORD (ms)", sword_pts)
            ],
            60,
            14
        )
    );
    println!("\npaper: ROADS ~800 ms at 320 nodes; SWORD grows to ~2300 ms at 640.");
}
