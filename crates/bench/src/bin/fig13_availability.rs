//! Figure 13 (reproduction extra): query availability under server crashes.
//!
//! The paper motivates the replication overlay (§III-C) with coverage —
//! "each server stores summaries which combined together cover the whole
//! hierarchy" — but never measures what that buys when servers actually
//! die. This figure does: it kills an increasing number of branch servers
//! in the live prototype and plots, with the overlay failover enabled and
//! disabled, the *recall* (fraction of all matching records still
//! returned) and the response time of a full-coverage query.
//!
//! Expected shape: without failover, each crashed branch server takes its
//! whole subtree with it, so recall falls by the subtree's share. With
//! failover, a sibling or ancestor replica stands in and re-routes the
//! sub-query to the dead server's children, so only the crashed server's
//! *own* records are lost. The deadline and per-dispatch timeouts keep
//! response time bounded in both modes.

use roads_bench::chart::{render, Series};
use roads_bench::parse_args;
use roads_core::{RoadsConfig, RoadsNetwork, ServerId};
use roads_netsim::DelaySpace;
use roads_records::{OwnerId, Query, QueryBuilder, QueryId, Record, RecordId, Schema, Value};
use roads_runtime::{RoadsCluster, RuntimeConfig, RuntimeOutcome};
use roads_summary::SummaryConfig;
use roads_telemetry::{write_chrome_trace_default, FigureExport, Recorder, Registry};
use std::collections::HashSet;
use std::sync::Arc;

const RECORDS_PER_SERVER: usize = 30;

fn build_net(n: usize) -> RoadsNetwork {
    let schema = Schema::unit_numeric(1);
    let cfg = RoadsConfig {
        max_children: 3,
        summary: SummaryConfig::with_buckets(128),
        ..RoadsConfig::paper_default()
    };
    let records: Vec<Vec<Record>> = (0..n)
        .map(|s| {
            (0..RECORDS_PER_SERVER)
                .map(|i| {
                    let id = s * RECORDS_PER_SERVER + i;
                    Record::new_unchecked(
                        RecordId(id as u64),
                        OwnerId(s as u32),
                        vec![Value::Float(id as f64 / (n * RECORDS_PER_SERVER) as f64)],
                    )
                })
                .collect()
        })
        .collect();
    RoadsNetwork::build(schema, cfg, records)
}

/// Crash victims: non-root branch servers whose subtrees are pairwise
/// disjoint (nested kills would be redundant — the ancestor's crash
/// already severs the descendant). Interior servers with *small* subtrees
/// are preferred so many disjoint victims fit in one hierarchy; leaves
/// are used only once the interior candidates run out.
fn pick_victims(net: &RoadsNetwork, k: usize) -> Vec<ServerId> {
    let tree = net.tree();
    let mut candidates: Vec<ServerId> = (0..net.len() as u32)
        .map(ServerId)
        .filter(|&s| s != tree.root())
        .collect();
    candidates.sort_by_key(|&s| (tree.children(s).is_empty(), tree.subtree(s).len(), s.0));
    let mut victims = Vec::new();
    let mut covered: HashSet<ServerId> = HashSet::new();
    for s in candidates {
        if victims.len() == k {
            break;
        }
        let sub = tree.subtree(s);
        if sub.iter().any(|x| covered.contains(x)) {
            continue;
        }
        covered.extend(sub);
        victims.push(s);
    }
    victims
}

/// Average a query repeated from several live starts against one cluster.
struct Measured {
    recall_pct: f64,
    mean_ms: f64,
    retries: f64,
    complete: bool,
}

fn measure(c: &RoadsCluster, q: &Query, starts: &[ServerId], total_records: usize) -> Measured {
    let mut recall_sum = 0.0;
    let mut ms_sum = 0.0;
    let mut retries = 0usize;
    let mut complete = true;
    for &start in starts {
        let out: RuntimeOutcome = c.query(q, start);
        let ids: HashSet<u64> = out.records.iter().map(|r| r.id.0).collect();
        assert_eq!(ids.len(), out.records.len(), "no duplicate records");
        recall_sum += ids.len() as f64 / total_records as f64;
        ms_sum += out.response_ms;
        retries += out.retries;
        complete &= out.complete;
    }
    Measured {
        recall_pct: 100.0 * recall_sum / starts.len() as f64,
        mean_ms: ms_sum / starts.len() as f64,
        retries: retries as f64 / starts.len() as f64,
        complete,
    }
}

fn main() {
    let (quick, _) = parse_args();
    let n = if quick { 13 } else { 40 };
    let kill_counts: &[usize] = if quick {
        &[0, 1, 2, 3]
    } else {
        &[0, 1, 2, 4, 6, 8]
    };
    let repeats = if quick { 3 } else { 5 };
    println!("==================================================================");
    println!("Figure 13 — availability under server crashes ({n} servers)");
    println!("recall of a full-coverage query vs crashed branch servers,");
    println!("with and without replication-overlay failover (§III-C)");
    println!("==================================================================");

    let runtime_cfg = RuntimeConfig {
        dispatch_timeout_ms: 400,
        max_retries: 1,
        backoff_base_ms: 10,
        query_deadline_ms: 20_000,
        delay_scale: 0.1,
        per_record_retrieval_us: 150,
        base_query_cost_us: 1_000,
        ..RuntimeConfig::paper_like()
    };
    let total_records = n * RECORDS_PER_SERVER;
    let k_max = *kill_counts.last().unwrap();
    let victims = pick_victims(&build_net(n), k_max);
    assert_eq!(
        victims.len(),
        k_max,
        "hierarchy of {n} servers holds too few disjoint branch victims"
    );

    // One cluster per failover setting; victims are killed incrementally
    // as k grows (the victim list is shared, so runs stay comparable).
    let rec = Arc::new(Recorder::new(65_536));
    let reg = Registry::new();
    let mut with_fo =
        RoadsCluster::start_instrumented(build_net(n), DelaySpace::paper(n, 31), runtime_cfg, &reg);
    with_fo.set_recorder(Arc::clone(&rec));
    let without_fo = RoadsCluster::start(
        build_net(n),
        DelaySpace::paper(n, 31),
        RuntimeConfig {
            enable_failover: false,
            ..runtime_cfg
        },
    );
    let q = QueryBuilder::new(with_fo.network().schema(), QueryId(13))
        .range("x0", 0.0, 1.0)
        .build();
    let root = with_fo.network().tree().root();
    let starts: Vec<ServerId> = vec![root; repeats];

    println!(
        "{:>6} {:>12} {:>10} {:>8} {:>12} {:>10}",
        "killed", "recall(fo)%", "ms(fo)", "retries", "recall(no)%", "ms(no)"
    );
    let mut killed_so_far = 0usize;
    let mut recall_fo = Vec::new();
    let mut recall_no = Vec::new();
    let mut ms_fo = Vec::new();
    let mut ms_no = Vec::new();
    for &k in kill_counts {
        while killed_so_far < k {
            let v = victims[killed_so_far];
            assert!(with_fo.kill_server(v) && without_fo.kill_server(v));
            killed_so_far += 1;
        }
        let fo = measure(&with_fo, &q, &starts, total_records);
        let no = measure(&without_fo, &q, &starts, total_records);
        if k == 0 {
            assert!(
                fo.complete && no.complete,
                "healthy cluster must answer completely"
            );
        } else {
            assert!(!fo.complete, "crashes must surface as incomplete");
        }
        assert!(
            fo.recall_pct + 1e-9 >= no.recall_pct,
            "failover must never lose records relative to no-failover"
        );
        println!(
            "{:>6} {:>12.1} {:>10.1} {:>8.1} {:>12.1} {:>10.1}",
            k, fo.recall_pct, fo.mean_ms, fo.retries, no.recall_pct, no.mean_ms
        );
        recall_fo.push((k as f64, fo.recall_pct));
        recall_no.push((k as f64, no.recall_pct));
        ms_fo.push((k as f64, fo.mean_ms));
        ms_no.push((k as f64, no.mean_ms));
    }
    println!();
    print!(
        "{}",
        render(
            &[
                Series::new("recall w/ failover (%)", recall_fo.clone()),
                Series::new("recall w/o failover (%)", recall_no.clone()),
            ],
            48,
            12
        )
    );
    println!("(x axis: crashed branch servers)");
    with_fo.shutdown();
    without_fo.shutdown();

    let mut fig = FigureExport::new(
        "fig13_availability",
        "Query recall and latency vs crashed servers, overlay failover on/off",
    )
    .axes("crashed branch servers", "recall (%) / response (ms)");
    fig.push_series("recall_failover_pct", &recall_fo);
    fig.push_series("recall_no_failover_pct", &recall_no);
    fig.push_series("response_failover_ms", &ms_fo);
    fig.push_series("response_no_failover_ms", &ms_no);
    // With disjoint victim subtrees, ideal failover loses only the crashed
    // servers' own records: recall_ideal = 1 - k/n at the largest k.
    let ideal = 100.0 * (1.0 - k_max as f64 / n as f64);
    if let Some(&(_, measured)) = recall_fo.last() {
        fig.push_reference("recall_failover_at_kmax_pct", measured, ideal);
    }
    fig.push_note(format!(
        "{n} servers x {RECORDS_PER_SERVER} records, victims gate disjoint subtrees; \
         dispatch timeout {} ms, {} retry, deadline {} ms",
        runtime_cfg.dispatch_timeout_ms, runtime_cfg.max_retries, runtime_cfg.query_deadline_ms
    ));
    fig.push_note("trace: DispatchTimeout/Retry/Failover events from the failover-on cluster");
    fig.write_default();
    write_chrome_trace_default(&fig.figure, &rec);
    // Digest covers the instrumented (failover-on) cluster.
    roads_bench::suite::print_metrics_digest(&reg.snapshot());
}
