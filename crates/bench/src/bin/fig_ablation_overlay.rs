//! Ablation (§III-C's claimed benefits): replication overlay ON vs OFF.
//!
//! With the overlay, a query starts at the client's own attachment server
//! and uses replicated summaries as shortcuts. Without it (the "basic
//! hierarchy"), every query must start at the root: the root becomes a
//! bottleneck and the path to matching leaves is longer. This binary
//! quantifies both effects: query latency and the fraction of queries that
//! touch the root.

use roads_bench::{banner, figure_config, TrialConfig};
use roads_core::{
    execute_query_traced, record_query_events, trace_to_telemetry, LatencyStats, RoadsConfig,
    RoadsNetwork, SearchScope, ServerId,
};
use roads_netsim::DelaySpace;
use roads_summary::SummaryConfig;
use roads_telemetry::{
    aggregate_traces, write_chrome_trace_default, FigureExport, Recorder, Registry,
};
use roads_workload::{
    default_schema, generate_node_records, generate_queries, QueryWorkloadConfig,
    RecordWorkloadConfig,
};

fn main() {
    banner(
        "Ablation — replication overlay ON (any-node start) vs OFF (root start)",
        "overlay removes the root bottleneck and shortens query paths (§III-C)",
    );
    let cfg = TrialConfig {
        runs: 1,
        ..figure_config()
    };
    let rec_cfg = RecordWorkloadConfig {
        nodes: cfg.nodes,
        records_per_node: cfg.records_per_node,
        attrs: cfg.attrs,
        seed: cfg.seed,
    };
    let records = generate_node_records(&rec_cfg);
    let schema = default_schema(cfg.attrs);
    let queries = generate_queries(
        &schema,
        &QueryWorkloadConfig {
            count: cfg.queries,
            dims: cfg.query_dims,
            range_len: 0.25,
            nodes: cfg.nodes,
            seed: cfg.seed ^ 0xABCD,
        },
    );
    let net = RoadsNetwork::build(
        schema,
        RoadsConfig {
            max_children: cfg.degree,
            summary: SummaryConfig::with_buckets(cfg.buckets),
            ..RoadsConfig::paper_default()
        },
        records,
    );
    let delays = DelaySpace::paper(cfg.nodes, cfg.seed);
    let root = net.tree().root();

    let reg = Registry::new();
    let rec = Recorder::new(65_536);
    let mut on_lat = Vec::new();
    let mut off_lat = Vec::new();
    let mut on_root_hits = 0usize;
    let mut on_bytes = 0.0;
    let mut off_bytes = 0.0;
    let mut on_traces = Vec::new();
    let mut off_traces = Vec::new();
    for (q, start) in &queries {
        let entry = ServerId(*start as u32);
        let (on, trace) = execute_query_traced(&net, &delays, q, entry, SearchScope::full());
        on_traces.push(trace_to_telemetry(&net, q.id.0, &trace));
        let trace_id = rec.next_trace_id();
        let _ = record_query_events(&rec, trace_id, &trace);
        roads_core::record_query_outcome(&reg, &on);
        on_lat.push(on.latency_ms);
        on_bytes += on.query_bytes as f64;
        // Root involvement with the overlay: only when the root is an
        // ancestor probe or a match.
        if on.matching_servers.contains(&root) {
            on_root_hits += 1;
        }

        // Overlay OFF: the query must travel to the root first (one-way
        // client->root), then the basic top-down hierarchy search runs with
        // the client at the root's side of the protocol.
        let (off, trace) = execute_query_traced(&net, &delays, q, root, SearchScope::full());
        off_traces.push(trace_to_telemetry(&net, q.id.0, &trace));
        off_lat.push(off.latency_ms + delays.delay_ms(*start, root.index()));
        off_bytes += off.query_bytes as f64;
    }
    let on = LatencyStats::from_samples(&on_lat).expect("non-empty");
    let off = LatencyStats::from_samples(&off_lat).expect("non-empty");
    println!(
        "{:<22} {:>12} {:>12} {:>12}",
        "variant", "mean (ms)", "p90 (ms)", "B/query"
    );
    println!(
        "{:<22} {:>12.1} {:>12.1} {:>12.0}",
        "overlay ON",
        on.mean,
        on.p90,
        on_bytes / queries.len() as f64
    );
    println!(
        "{:<22} {:>12.1} {:>12.1} {:>12.0}",
        "overlay OFF (root)",
        off.mean,
        off.p90,
        off_bytes / queries.len() as f64
    );
    println!(
        "\nroot load: OFF = 100% of queries; ON = {:.1}% (root only touched when it holds matches)",
        100.0 * on_root_hits as f64 / queries.len() as f64
    );

    let on_report = aggregate_traces(&on_traces, root.0, cfg.nodes);
    let off_report = aggregate_traces(&off_traces, root.0, cfg.nodes);
    let mut fig = FigureExport::new(
        "fig_ablation_overlay",
        "Replication overlay ON (any-node start) vs OFF (root start)",
    )
    .axes("variant (0 = ON, 1 = OFF)", "latency (ms)");
    fig.push_series("mean_ms", &[(0.0, on.mean), (1.0, off.mean)]);
    fig.push_series("p90_ms", &[(0.0, on.p90), (1.0, off.p90)]);
    fig.push_series(
        "bytes_per_query",
        &[
            (0.0, on_bytes / queries.len() as f64),
            (1.0, off_bytes / queries.len() as f64),
        ],
    );
    // Root involvement differs in kind, not touch-count: with the overlay
    // ON the root only answers a local-only ancestor probe (full scope
    // covers its records); OFF it runs the whole top-down search as entry.
    fig.push_series(
        "root_load_share",
        &[
            (0.0, on_report.root_load_share),
            (1.0, off_report.root_load_share),
        ],
    );
    fig.push_reference("overlay_latency_ratio_on_over_off", on.mean / off.mean, 0.7);
    fig.push_note(format!(
        "ON = {} overlay-shortcut hops across {} queries; OFF = root entry, \
         0 shortcuts (root fans out every query)",
        on_report.overlay_shortcuts, on_report.queries
    ));
    fig.set_telemetry(reg.snapshot());
    // Export the overlay-ON traces: they carry the shortcut hops the
    // ablation is about.
    fig.set_traces(on_report);
    fig.write_default();
    write_chrome_trace_default(&fig.figure, &rec);
    roads_bench::suite::print_metrics_digest(&reg.snapshot());
}
