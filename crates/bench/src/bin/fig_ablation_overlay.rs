//! Ablation (§III-C's claimed benefits): replication overlay ON vs OFF.
//!
//! With the overlay, a query starts at the client's own attachment server
//! and uses replicated summaries as shortcuts. Without it (the "basic
//! hierarchy"), every query must start at the root: the root becomes a
//! bottleneck and the path to matching leaves is longer. This binary
//! quantifies both effects: query latency and the fraction of queries that
//! touch the root.

use roads_bench::{banner, figure_config, TrialConfig};
use roads_core::{execute_query, LatencyStats, RoadsConfig, RoadsNetwork, SearchScope, ServerId};
use roads_netsim::DelaySpace;
use roads_summary::SummaryConfig;
use roads_workload::{
    default_schema, generate_node_records, generate_queries, QueryWorkloadConfig,
    RecordWorkloadConfig,
};

fn main() {
    banner(
        "Ablation — replication overlay ON (any-node start) vs OFF (root start)",
        "overlay removes the root bottleneck and shortens query paths (§III-C)",
    );
    let cfg = TrialConfig {
        runs: 1,
        ..figure_config()
    };
    let rec_cfg = RecordWorkloadConfig {
        nodes: cfg.nodes,
        records_per_node: cfg.records_per_node,
        attrs: cfg.attrs,
        seed: cfg.seed,
    };
    let records = generate_node_records(&rec_cfg);
    let schema = default_schema(cfg.attrs);
    let queries = generate_queries(
        &schema,
        &QueryWorkloadConfig {
            count: cfg.queries,
            dims: cfg.query_dims,
            range_len: 0.25,
            nodes: cfg.nodes,
            seed: cfg.seed ^ 0xABCD,
        },
    );
    let net = RoadsNetwork::build(
        schema,
        RoadsConfig {
            max_children: cfg.degree,
            summary: SummaryConfig::with_buckets(cfg.buckets),
            ..RoadsConfig::paper_default()
        },
        records,
    );
    let delays = DelaySpace::paper(cfg.nodes, cfg.seed);
    let root = net.tree().root();

    let mut on_lat = Vec::new();
    let mut off_lat = Vec::new();
    let mut on_root_hits = 0usize;
    let mut on_bytes = 0.0;
    let mut off_bytes = 0.0;
    for (q, start) in &queries {
        let entry = ServerId(*start as u32);
        let on = execute_query(&net, &delays, q, entry, SearchScope::full());
        on_lat.push(on.latency_ms);
        on_bytes += on.query_bytes as f64;
        // Root involvement with the overlay: only when the root is an
        // ancestor probe or a match.
        if on.matching_servers.contains(&root) {
            on_root_hits += 1;
        }

        // Overlay OFF: the query must travel to the root first (one-way
        // client->root), then the basic top-down hierarchy search runs with
        // the client at the root's side of the protocol.
        let off = execute_query(&net, &delays, q, root, SearchScope::full());
        off_lat.push(off.latency_ms + delays.delay_ms(*start, root.index()));
        off_bytes += off.query_bytes as f64;
    }
    let on = LatencyStats::from_samples(&on_lat).expect("non-empty");
    let off = LatencyStats::from_samples(&off_lat).expect("non-empty");
    println!("{:<22} {:>12} {:>12} {:>12}", "variant", "mean (ms)", "p90 (ms)", "B/query");
    println!(
        "{:<22} {:>12.1} {:>12.1} {:>12.0}",
        "overlay ON",
        on.mean,
        on.p90,
        on_bytes / queries.len() as f64
    );
    println!(
        "{:<22} {:>12.1} {:>12.1} {:>12.0}",
        "overlay OFF (root)",
        off.mean,
        off.p90,
        off_bytes / queries.len() as f64
    );
    println!(
        "\nroot load: OFF = 100% of queries; ON = {:.1}% (root only touched when it holds matches)",
        100.0 * on_root_hits as f64 / queries.len() as f64
    );
}
