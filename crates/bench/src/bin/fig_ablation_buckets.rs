//! Ablation (§III-B aggregation methods): histogram resolution.
//!
//! Bucket count `m` trades update bytes (summaries are `O(m·r)`) against
//! redirect precision: coarse buckets produce false-positive branch matches
//! that drag the query to servers with no real matches. This sweep
//! quantifies the trade-off the paper fixes at m = 1000.

use roads_bench::{banner, figure_config, run_comparison_recorded, TrialConfig};
use roads_telemetry::{write_chrome_trace_default, FigureExport, Recorder, Registry};

fn main() {
    banner(
        "Ablation — histogram buckets per attribute",
        "summary bytes vs false-positive redirects (paper fixes m = 1000)",
    );
    let base = TrialConfig {
        runs: 1,
        ..figure_config()
    };
    let reg = Registry::new();
    let rec = Recorder::new(65_536);
    println!(
        "{:>8} {:>16} {:>14} {:>12} {:>14} {:>10}",
        "buckets", "ROADS upd (B/s)", "latency (ms)", "servers", "B/query", "FP rate"
    );
    let mut update_pts = Vec::new();
    let mut servers_pts = Vec::new();
    let mut fp_pts = Vec::new();
    let mut paper_point = None;
    for buckets in [10, 50, 100, 250, 500, 1000, 2000] {
        let cfg = TrialConfig { buckets, ..base };
        let (r, report) = run_comparison_recorded(&cfg, Some(&reg), Some(&rec));
        // False-positive redirect rate comes from the per-hop traces: a
        // descent that finds no local matches and forwards nowhere onward.
        let fp_rate = report.as_ref().map_or(0.0, |t| t.fp_redirect_rate);
        println!(
            "{:>8} {:>16.3e} {:>14.1} {:>12.1} {:>14.0} {:>10.3}",
            buckets,
            r.roads_update_bps,
            r.roads_latency.mean,
            r.roads_servers_contacted,
            r.roads_query_bytes,
            fp_rate
        );
        update_pts.push((buckets as f64, r.roads_update_bps));
        servers_pts.push((buckets as f64, r.roads_servers_contacted));
        fp_pts.push((buckets as f64, fp_rate));
        if buckets == 1000 {
            paper_point = report;
        }
    }
    println!("\nexpected: update bytes grow linearly in m; contacted servers shrink toward");
    println!("the true match set as buckets refine, flattening once buckets resolve the data.");

    let mut fig = FigureExport::new(
        "fig_ablation_buckets",
        "Histogram buckets per attribute: update bytes vs false-positive redirects",
    )
    .axes("buckets per attribute", "see series");
    if let (Some(&(_, fp_coarse)), Some(&(_, fp_fine))) = (fp_pts.first(), fp_pts.last()) {
        fig.push_note(format!(
            "fp_redirect_rate falls from {fp_coarse:.3} at 10 buckets to {fp_fine:.3} at 2000"
        ));
    }
    fig.push_series("roads_update_bps", &update_pts);
    fig.push_series("servers_contacted", &servers_pts);
    fig.push_series("fp_redirect_rate", &fp_pts);
    fig.set_telemetry(reg.snapshot());
    if let Some(t) = paper_point {
        fig.set_traces(t);
    }
    fig.write_default();
    write_chrome_trace_default(&fig.figure, &rec);
    roads_bench::suite::print_metrics_digest(&reg.snapshot());
}
