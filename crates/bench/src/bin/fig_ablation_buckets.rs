//! Ablation (§III-B aggregation methods): histogram resolution.
//!
//! Bucket count `m` trades update bytes (summaries are `O(m·r)`) against
//! redirect precision: coarse buckets produce false-positive branch matches
//! that drag the query to servers with no real matches. This sweep
//! quantifies the trade-off the paper fixes at m = 1000.

use roads_bench::{banner, figure_config, run_comparison, TrialConfig};

fn main() {
    banner(
        "Ablation — histogram buckets per attribute",
        "summary bytes vs false-positive redirects (paper fixes m = 1000)",
    );
    let base = TrialConfig {
        runs: 1,
        ..figure_config()
    };
    println!(
        "{:>8} {:>16} {:>14} {:>12} {:>14}",
        "buckets", "ROADS upd (B/s)", "latency (ms)", "servers", "B/query"
    );
    for buckets in [10, 50, 100, 250, 500, 1000, 2000] {
        let cfg = TrialConfig { buckets, ..base };
        let r = run_comparison(&cfg);
        println!(
            "{:>8} {:>16.3e} {:>14.1} {:>12.1} {:>14.0}",
            buckets,
            r.roads_update_bps,
            r.roads_latency.mean,
            r.roads_servers_contacted,
            r.roads_query_bytes
        );
    }
    println!("\nexpected: update bytes grow linearly in m; contacted servers shrink toward");
    println!("the true match set as buckets refine, flattening once buckets resolve the data.");
}
