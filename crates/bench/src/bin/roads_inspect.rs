//! `roads-inspect` — offline inspector for figure results and flight
//! recorder traces.
//!
//! ```text
//! roads-inspect summary <base>          # run summary + slowest-query critical path
//! roads-inspect diff <base-a> <base-b>  # series/reference regression report
//! roads-inspect check <base>...         # CI gate: valid figure/bench/slow-query documents
//! roads-inspect bench-diff OLD NEW [--fail-over <pct>]
//!                                       # BENCH_*.json regression gate
//! roads-inspect health <scrape.txt>     # cluster health table from an
//!                                       # OpenMetrics scrape
//! roads-inspect explain <artifact> [query-id]
//!                                       # hop waterfall + decision tree of
//!                                       # retained tail queries
//! roads-inspect slow <artifact>         # ranked tail table with latency
//!                                       # attribution
//! roads-inspect audit <artifact>        # per-level summary-fidelity table
//!                                       # from an AUDIT.json artifact
//! roads-inspect delta <artifact>        # incremental-update summary from
//!                                       # a DELTA.json artifact
//! roads-inspect incidents <artifact>    # watchdog incident timeline from
//!                                       # an INCIDENTS.json artifact
//! ```
//!
//! `<base>` is a result stem such as `results/fig3_latency_vs_nodes`; the
//! inspector loads `<base>.json` (the [`FigureExport`] document) and, when
//! present, `<base>.trace.json` (the Chrome/Perfetto flight-recorder
//! export). A trailing `.json` on the argument is accepted and stripped.
//!
//! `check` exits non-zero when a figure document is missing or malformed,
//! or when its trace file is missing, malformed, or contains zero complete
//! (`ph == "X"`) spans — the CI smoke test runs it after a `--quick`
//! figure binary. Documents carrying a `benches` key take the
//! `BENCH_*.json` schema path instead ([`roads_bench::suite`]): unknown
//! `schema_version`s, empty bench lists and non-finite statistics fail,
//! and no trace file is expected. Documents carrying a `slow_queries` key
//! (the `SLOW_QUERIES.json` tail-sampler report written by `bench_suite`)
//! validate through [`roads_bench::explain_view::parse_slow_doc`]: every
//! retained entry must parse back into a [`QueryExplain`] and its retained
//! flight-recorder events must form a valid span tree. Documents carrying
//! an `audit` key (the `AUDIT.json` auditor report) validate through the
//! strict [`roads_bench::audit_view::AuditReport`] parser: every scalar
//! and per-level row must be present and well-typed. Documents carrying
//! a `delta_schema_version` key (the `DELTA.json` incremental-update
//! summary written by `bench_suite`) validate through
//! [`roads_bench::delta_view::DeltaReport`], which re-enforces the delta
//! path's 10x speedup floor and its accounting invariants offline.
//! Documents carrying an `incidents` key (the `INCIDENTS.json` watchdog
//! report) validate through the strict
//! [`roads_bench::incident_view::IncidentReport`] parser: every incident
//! row, suspected cause, and fault match must be present and well-typed.
//!
//! `incidents` renders the watchdog incident timeline of an
//! `INCIDENTS.json` artifact: one block per incident with its firing
//! window, detectors, matched fault and detection latency, and the
//! ranked suspected-cause list.
//!
//! `audit` renders the per-level summary-fidelity table of an
//! `AUDIT.json` artifact: ground-truth probes, FP/FN rates, overlay
//! divergence and staleness per hierarchy level.
//!
//! `explain` renders every retained query of a `SLOW_QUERIES.json`
//! artifact as a hop-by-hop waterfall plus the decision tree of *why*
//! each server was contacted; an optional trailing query id narrows the
//! render to one query. `slow` renders the ranked tail table with the
//! queue/network/compute/retry/failover attribution of each retained
//! query.
//!
//! [`QueryExplain`]: roads_telemetry::QueryExplain
//!
//! `bench-diff` compares two bench reports and exits non-zero when any
//! bench moved more than the threshold (default 10%) in its unit's bad
//! direction — lower for throughput units, higher for everything else.
//!
//! `health` renders the per-server liveness/queue/latency table from
//! `runtime.server.*` series in a saved OpenMetrics scrape of an
//! instrumented live cluster.
//!
//! [`FigureExport`]: roads_telemetry::FigureExport

use roads_bench::{audit_view, delta_view, explain_view, incident_view, plan_view, suite};
use roads_telemetry::{
    critical_path, parse_openmetrics, slowest_trace, span_tree_root, trace_ids, Event, EventKind,
    Json, SpanId, TraceId,
};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) if cmd == "summary" && rest.len() == 1 => summary(&rest[0]),
        Some((cmd, rest)) if cmd == "diff" && rest.len() == 2 => diff(&rest[0], &rest[1]),
        Some((cmd, rest)) if cmd == "check" && !rest.is_empty() => check(rest),
        Some((cmd, rest)) if cmd == "bench-diff" => bench_diff(rest),
        Some((cmd, rest)) if cmd == "health" && rest.len() == 1 => health(&rest[0]),
        Some((cmd, rest)) if cmd == "explain" && (rest.len() == 1 || rest.len() == 2) => {
            explain(&rest[0], rest.get(1).and_then(|q| q.parse().ok()))
        }
        Some((cmd, rest)) if cmd == "slow" && rest.len() == 1 => slow(&rest[0]),
        Some((cmd, rest)) if cmd == "audit" && rest.len() == 1 => audit(&rest[0]),
        Some((cmd, rest)) if cmd == "plan" && rest.len() == 1 => plan(&rest[0]),
        Some((cmd, rest)) if cmd == "delta" && rest.len() == 1 => delta(&rest[0]),
        Some((cmd, rest)) if cmd == "incidents" && rest.len() == 1 => incidents(&rest[0]),
        _ => {
            eprintln!("usage: roads-inspect summary <base>");
            eprintln!("       roads-inspect diff <base-a> <base-b>");
            eprintln!("       roads-inspect check <base>...");
            eprintln!("       roads-inspect bench-diff <old.json> <new.json> [--fail-over <pct>]");
            eprintln!("       roads-inspect health <scrape.txt>");
            eprintln!("       roads-inspect explain <slow-queries.json> [query-id]");
            eprintln!("       roads-inspect slow <slow-queries.json>");
            eprintln!("       roads-inspect audit <audit.json>");
            eprintln!("       roads-inspect plan <plan.json>");
            eprintln!("       roads-inspect delta <delta.json>");
            eprintln!("       roads-inspect incidents <incidents.json>");
            eprintln!("  <base> is a result stem, e.g. results/fig3_latency_vs_nodes");
            ExitCode::from(2)
        }
    }
}

/// Expand a result stem into its figure and trace paths, accepting an
/// argument that already carries the `.json` suffix.
fn expand(base: &str) -> (PathBuf, PathBuf) {
    let stem = base
        .strip_suffix(".trace.json")
        .or_else(|| base.strip_suffix(".json"))
        .unwrap_or(base);
    (
        PathBuf::from(format!("{stem}.json")),
        PathBuf::from(format!("{stem}.trace.json")),
    )
}

fn load_json(path: &PathBuf) -> Result<Json, String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    Json::parse(&body).map_err(|e| format!("{}: {e}", path.display()))
}

/// Reconstruct flight-recorder events from an exported Chrome trace:
/// every `cat == "roads"` entry carries trace/span/parent/detail in its
/// `args`, `ts`/`dur` in microseconds, and the node as `tid`.
fn parse_trace_events(doc: &Json) -> Result<Vec<Event>, String> {
    let entries = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;
    let mut events = Vec::new();
    for entry in entries {
        if entry.get("cat").and_then(Json::as_str_val) != Some("roads") {
            continue;
        }
        let kind = entry
            .get("name")
            .and_then(Json::as_str_val)
            .and_then(EventKind::parse);
        let Some(kind) = kind else { continue };
        let num = |key: &str| entry.get(key).and_then(Json::as_f64).unwrap_or(0.0);
        let arg = |key: &str| {
            entry
                .get("args")
                .and_then(|a| a.get(key))
                .and_then(Json::as_f64)
                .unwrap_or(0.0)
        };
        events.push(Event {
            at_us: num("ts") as u64,
            dur_us: num("dur") as u64,
            node: num("tid") as u32,
            trace: TraceId(arg("trace") as u64),
            span: SpanId(arg("span") as u64),
            parent: SpanId(arg("parent") as u64),
            kind,
            detail: arg("detail") as u64,
        });
    }
    Ok(events)
}

fn series_of(doc: &Json) -> Vec<(String, Vec<f64>)> {
    doc.get("series")
        .and_then(Json::as_arr)
        .map(|arr| {
            arr.iter()
                .filter_map(|s| {
                    let name = s.get("name")?.as_str_val()?.to_string();
                    let y = s
                        .get("y")?
                        .as_arr()?
                        .iter()
                        .filter_map(Json::as_f64)
                        .collect();
                    Some((name, y))
                })
                .collect()
        })
        .unwrap_or_default()
}

fn references_of(doc: &Json) -> Vec<(String, f64, f64)> {
    doc.get("reference")
        .and_then(Json::as_arr)
        .map(|arr| {
            arr.iter()
                .filter_map(|r| {
                    Some((
                        r.get("name")?.as_str_val()?.to_string(),
                        r.get("measured")?.as_f64()?,
                        r.get("paper")?.as_f64()?,
                    ))
                })
                .collect()
        })
        .unwrap_or_default()
}

fn summary(base: &str) -> ExitCode {
    let (fig_path, trace_path) = expand(base);
    let doc = match load_json(&fig_path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let title = doc
        .get("title")
        .and_then(Json::as_str_val)
        .unwrap_or("(untitled)");
    let figure = doc
        .get("figure")
        .and_then(Json::as_str_val)
        .unwrap_or("(unknown)");
    println!("figure : {figure}");
    println!("title  : {title}");
    let series = series_of(&doc);
    println!("series : {}", series.len());
    for (name, y) in &series {
        let (first, last) = (y.first().copied(), y.last().copied());
        match (first, last) {
            (Some(f), Some(l)) => {
                println!("  {name:<28} {} points, {f:.3} -> {l:.3}", y.len())
            }
            _ => println!("  {name:<28} empty"),
        }
    }
    let refs = references_of(&doc);
    if !refs.is_empty() {
        println!("paper references:");
        for (name, measured, paper) in &refs {
            let ratio = if *paper != 0.0 {
                format!("{:.2}x", measured / paper)
            } else {
                "-".to_string()
            };
            println!("  {name:<34} measured {measured:.3} vs paper {paper:.3} ({ratio})");
        }
    }

    match load_json(&trace_path).and_then(|d| parse_trace_events(&d)) {
        Ok(events) if !events.is_empty() => {
            let traces = trace_ids(&events);
            println!(
                "trace  : {} events across {} traces ({})",
                events.len(),
                traces.len(),
                trace_path.display()
            );
            if let Some(slowest) = slowest_trace(&events) {
                let path = critical_path(&events, slowest);
                println!("critical path of slowest trace (id {}):", slowest.0);
                for e in &path {
                    println!(
                        "  t={:>9}us +{:>7}us  server-{:<4} {:<16} detail={}",
                        e.at_us,
                        e.dur_us,
                        e.node,
                        e.kind.as_str(),
                        e.detail
                    );
                }
            }
        }
        Ok(_) => println!("trace  : {} has no roads events", trace_path.display()),
        Err(e) => println!("trace  : unavailable ({e})"),
    }
    ExitCode::SUCCESS
}

fn diff(base_a: &str, base_b: &str) -> ExitCode {
    let (fig_a, _) = expand(base_a);
    let (fig_b, _) = expand(base_b);
    let (doc_a, doc_b) = match (load_json(&fig_a), load_json(&fig_b)) {
        (Ok(a), Ok(b)) => (a, b),
        (a, b) => {
            for r in [a, b] {
                if let Err(e) = r {
                    eprintln!("error: {e}");
                }
            }
            return ExitCode::FAILURE;
        }
    };
    println!("diff {} -> {}", fig_a.display(), fig_b.display());
    let series_b = series_of(&doc_b);
    let mut regressions = 0usize;
    for (name, ya) in series_of(&doc_a) {
        let Some((_, yb)) = series_b.iter().find(|(n, _)| *n == name) else {
            println!("  {name:<28} only in {}", fig_a.display());
            continue;
        };
        let mean = |y: &[f64]| y.iter().sum::<f64>() / y.len().max(1) as f64;
        let (ma, mb) = (mean(&ya), mean(yb));
        let delta_pct = if ma != 0.0 {
            (mb - ma) / ma.abs() * 100.0
        } else {
            0.0
        };
        let flag = if delta_pct.abs() > 10.0 {
            regressions += 1;
            "  <-- changed >10%"
        } else {
            ""
        };
        println!("  {name:<28} mean {ma:.3} -> {mb:.3} ({delta_pct:+.1}%){flag}");
    }
    for (name, _) in &series_b {
        if !series_of(&doc_a).iter().any(|(n, _)| n == name) {
            println!("  {name:<28} only in {}", fig_b.display());
        }
    }
    let refs_b = references_of(&doc_b);
    for (name, ma, paper) in references_of(&doc_a) {
        if let Some((_, mb, _)) = refs_b.iter().find(|(n, _, _)| *n == name) {
            println!("  ref {name:<30} measured {ma:.3} -> {mb:.3} (paper {paper:.3})");
        }
    }
    if regressions > 0 {
        println!("{regressions} series changed by more than 10%");
    } else {
        println!("no series changed by more than 10%");
    }
    ExitCode::SUCCESS
}

fn check(bases: &[String]) -> ExitCode {
    let mut failed = false;
    for base in bases {
        let (fig_path, trace_path) = expand(base);
        match load_json(&fig_path) {
            // Bench reports validate against the BENCH_*.json schema and
            // carry no trace file.
            Ok(doc) if suite::is_bench_doc(&doc) => {
                match suite::check_bench_doc(&doc) {
                    Ok(()) => {
                        let n = doc
                            .get("benches")
                            .and_then(Json::as_arr)
                            .map_or(0, |a| a.len());
                        println!("OK   {base}: bench report, {n} benches");
                    }
                    Err(e) => {
                        eprintln!("FAIL {}: {e}", fig_path.display());
                        failed = true;
                    }
                }
                continue;
            }
            // Auditor reports (AUDIT.json) validate every scalar and
            // per-level row through the strict parser; no trace file.
            Ok(doc) if audit_view::is_audit_doc(&doc) => {
                match audit_view::AuditReport::from_json(&doc) {
                    Ok(report) => println!(
                        "OK   {base}: audit report, {} ticks, {} levels, {} probes",
                        report.ticks,
                        report.levels.len(),
                        report.probes()
                    ),
                    Err(e) => {
                        eprintln!("FAIL {}: {e}", fig_path.display());
                        failed = true;
                    }
                }
                continue;
            }
            // Planner reports (PLAN.json) validate shape plus the
            // planner's core invariant (planned contacts ≤ greedy); no
            // trace file.
            Ok(doc) if plan_view::is_plan_doc(&doc) => {
                match plan_view::PlanReport::from_json(&doc) {
                    Ok(report) => println!(
                        "OK   {base}: plan report, {} queries, contacts {} → {}, hit rate {:.1}%",
                        report.queries,
                        report.greedy_contacts,
                        report.planned_contacts,
                        100.0 * report.cache_hit_rate()
                    ),
                    Err(e) => {
                        eprintln!("FAIL {}: {e}", fig_path.display());
                        failed = true;
                    }
                }
                continue;
            }
            // Incremental-update reports (DELTA.json) validate shape
            // plus the delta path's invariants (>= 10x speedup, bytes
            // and change accounting); no trace file.
            Ok(doc) if delta_view::is_delta_doc(&doc) => {
                match delta_view::DeltaReport::from_json(&doc) {
                    Ok(report) => println!(
                        "OK   {base}: delta report, {} records, {} changes/round, {:.1}x over full",
                        report.records, report.churn_changes, report.speedup
                    ),
                    Err(e) => {
                        eprintln!("FAIL {}: {e}", fig_path.display());
                        failed = true;
                    }
                }
                continue;
            }
            // Watchdog reports (INCIDENTS.json) validate every incident
            // row, cause, and match through the strict parser; no trace
            // file.
            Ok(doc) if incident_view::is_incidents_doc(&doc) => {
                match incident_view::IncidentReport::from_json(&doc) {
                    Ok(report) => println!(
                        "OK   {base}: incident report, {} ticks, {} incidents ({} matched, {} false alarms)",
                        report.ticks,
                        report.rows.len(),
                        report.matched(),
                        report.false_alarms
                    ),
                    Err(e) => {
                        eprintln!("FAIL {}: {e}", fig_path.display());
                        failed = true;
                    }
                }
                continue;
            }
            // Tail-sampler reports (SLOW_QUERIES.json) validate each
            // retained explain record and its span tree; no trace file.
            Ok(doc) if explain_view::is_slow_doc(&doc) => {
                match explain_view::parse_slow_doc(&doc) {
                    Ok(slow) => println!(
                        "OK   {base}: slow-query report, {} retained of {} observed",
                        slow.retained.len(),
                        slow.observed
                    ),
                    Err(e) => {
                        eprintln!("FAIL {}: {e}", fig_path.display());
                        failed = true;
                    }
                }
                continue;
            }
            Ok(doc) if doc.get("figure").and_then(Json::as_str_val).is_some() => {}
            Ok(_) => {
                eprintln!("FAIL {}: not a figure document", fig_path.display());
                failed = true;
                continue;
            }
            Err(e) => {
                eprintln!("FAIL {e}");
                failed = true;
                continue;
            }
        }
        match load_json(&trace_path).and_then(|d| parse_trace_events(&d)) {
            Ok(events) => {
                let spans = events.iter().filter(|e| e.dur_us > 0).count();
                if spans == 0 {
                    eprintln!("FAIL {}: no complete (ph=X) spans", trace_path.display());
                    failed = true;
                    continue;
                }
                // Every recorded trace must form a valid span tree.
                let mut bad = None;
                for t in trace_ids(&events) {
                    let tev: Vec<Event> = events.iter().filter(|e| e.trace == t).copied().collect();
                    if let Err(e) = span_tree_root(&tev, t) {
                        bad = Some(format!("trace {}: {e}", t.0));
                        break;
                    }
                }
                if let Some(why) = bad {
                    eprintln!("FAIL {}: {why}", trace_path.display());
                    failed = true;
                } else {
                    println!(
                        "OK   {base}: {spans} spans, {} traces",
                        trace_ids(&events).len()
                    );
                }
            }
            Err(e) => {
                eprintln!("FAIL {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn bench_diff(args: &[String]) -> ExitCode {
    let mut paths = Vec::new();
    let mut fail_over_pct = 10.0;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--fail-over" {
            match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(p) if p >= 0.0 => fail_over_pct = p,
                _ => {
                    eprintln!("error: --fail-over requires a non-negative percentage");
                    return ExitCode::from(2);
                }
            }
        } else {
            paths.push(PathBuf::from(a));
        }
    }
    let [old_path, new_path] = paths.as_slice() else {
        eprintln!("usage: roads-inspect bench-diff <old.json> <new.json> [--fail-over <pct>]");
        return ExitCode::from(2);
    };
    let (old, new) = match (
        suite::BenchReport::load(old_path),
        suite::BenchReport::load(new_path),
    ) {
        (Ok(a), Ok(b)) => (a, b),
        (a, b) => {
            for r in [a, b] {
                if let Err(e) = r {
                    eprintln!("error: {e}");
                }
            }
            return ExitCode::FAILURE;
        }
    };
    println!(
        "bench-diff {} (commit {}) -> {} (commit {}), fail over {:.0}%",
        old_path.display(),
        old.commit,
        new_path.display(),
        new.commit,
        fail_over_pct
    );
    let d = suite::diff(&old, &new, fail_over_pct);
    print!("{d}");
    if d.regressions() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn load_slow_doc(path: &str) -> Result<explain_view::SlowDoc, String> {
    let (fig_path, _) = expand(path);
    let doc = load_json(&fig_path)?;
    if !explain_view::is_slow_doc(&doc) {
        return Err(format!(
            "{}: not a slow-query report (no slow_queries key)",
            fig_path.display()
        ));
    }
    explain_view::parse_slow_doc(&doc).map_err(|e| format!("{}: {e}", fig_path.display()))
}

fn explain(path: &str, query_id: Option<u64>) -> ExitCode {
    let slow = match load_slow_doc(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let selected: Vec<_> = slow
        .retained
        .iter()
        .filter(|e| query_id.is_none_or(|q| e.explain.query_id == q))
        .collect();
    if selected.is_empty() {
        match query_id {
            Some(q) => eprintln!("error: no retained query with id {q}"),
            None => eprintln!("error: report retained no queries"),
        }
        return ExitCode::FAILURE;
    }
    for (i, entry) in selected.iter().enumerate() {
        if i > 0 {
            println!();
        }
        println!("retained [{}]:", entry.reason.as_str());
        print!("{}", explain_view::render_waterfall(&entry.explain));
        println!("decision tree:");
        print!("{}", explain_view::render_decision_tree(&entry.explain));
        if !entry.events.is_empty() {
            println!(
                "flight recorder: {} events retained for trace {}",
                entry.events.len(),
                entry.explain.trace_id
            );
        }
    }
    ExitCode::SUCCESS
}

fn slow(path: &str) -> ExitCode {
    match load_slow_doc(path) {
        Ok(doc) => {
            print!("{}", explain_view::render_slow_table(&doc));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn audit(path: &str) -> ExitCode {
    let (fig_path, _) = expand(path);
    let report = load_json(&fig_path).and_then(|doc| {
        if !audit_view::is_audit_doc(&doc) {
            return Err(format!(
                "{}: not an audit report (no audit key)",
                fig_path.display()
            ));
        }
        audit_view::AuditReport::from_json(&doc).map_err(|e| format!("{}: {e}", fig_path.display()))
    });
    match report {
        Ok(report) => {
            print!("{}", audit_view::render_audit_table(&report));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn plan(path: &str) -> ExitCode {
    let (fig_path, _) = expand(path);
    let report = load_json(&fig_path).and_then(|doc| {
        if !plan_view::is_plan_doc(&doc) {
            return Err(format!(
                "{}: not a plan report (no plan_schema_version key)",
                fig_path.display()
            ));
        }
        plan_view::PlanReport::from_json(&doc).map_err(|e| format!("{}: {e}", fig_path.display()))
    });
    match report {
        Ok(report) => {
            print!("{}", plan_view::render_plan_table(&report));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn delta(path: &str) -> ExitCode {
    let (fig_path, _) = expand(path);
    let report = load_json(&fig_path).and_then(|doc| {
        if !delta_view::is_delta_doc(&doc) {
            return Err(format!(
                "{}: not a delta report (no delta_schema_version key)",
                fig_path.display()
            ));
        }
        delta_view::DeltaReport::from_json(&doc).map_err(|e| format!("{}: {e}", fig_path.display()))
    });
    match report {
        Ok(report) => {
            print!("{}", delta_view::render_delta_table(&report));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn incidents(path: &str) -> ExitCode {
    let (fig_path, _) = expand(path);
    let report = load_json(&fig_path).and_then(|doc| {
        if !incident_view::is_incidents_doc(&doc) {
            return Err(format!(
                "{}: not an incident report (no incidents key)",
                fig_path.display()
            ));
        }
        incident_view::IncidentReport::from_json(&doc)
            .map_err(|e| format!("{}: {e}", fig_path.display()))
    });
    match report {
        Ok(report) => {
            print!("{}", incident_view::render_incident_table(&report));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// p99 of a cumulative-bucket histogram scrape: the smallest `le` edge
/// whose cumulative count reaches 99% of the total (buckets already end
/// with `+Inf`, so a total is always reachable).
fn bucket_p99(buckets: &[(f64, f64)]) -> Option<f64> {
    let total = buckets.last().map(|&(_, c)| c)?;
    if total == 0.0 {
        return None;
    }
    buckets
        .iter()
        .find(|&&(_, c)| c >= 0.99 * total)
        .map(|&(le, _)| le)
}

fn health(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let scrape = match parse_openmetrics(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let counter = |family: &str| {
        scrape
            .family(family)
            .and_then(|f| f.sample_with("_total", &[]))
            .map_or(0.0, |s| s.value)
    };
    let Some(alive_fam) = scrape.family("runtime_server_alive") else {
        eprintln!(
            "error: {path}: no runtime_server_alive series — not an instrumented-cluster scrape"
        );
        return ExitCode::FAILURE;
    };
    let mut servers: Vec<u64> = alive_fam
        .samples
        .iter()
        .filter_map(|s| s.label("server").and_then(|v| v.parse().ok()))
        .collect();
    servers.sort_unstable();

    let inflight = scrape
        .family("runtime_inflight_queries")
        .and_then(|f| f.sample_with("", &[]))
        .map_or(0.0, |s| s.value);
    let alive = servers
        .iter()
        .filter(|id| {
            alive_fam
                .sample_with("", &[("server", &id.to_string())])
                .is_some_and(|s| s.value != 0.0)
        })
        .count();
    println!(
        "cluster: {}/{} alive, {} inflight, {} queries ({} retries, {} deadline misses, {} failovers)",
        alive,
        servers.len(),
        inflight,
        counter("runtime_queries"),
        counter("runtime_retries"),
        counter("runtime_deadline_miss"),
        counter("runtime_failovers"),
    );
    println!(
        "{:>6} {:>6} {:>7} {:>8} {:>14}",
        "server", "alive", "queue", "replies", "dispatch p99"
    );
    for id in &servers {
        let lbl = id.to_string();
        let gauge = |family: &str| {
            scrape
                .family(family)
                .and_then(|f| f.sample_with("", &[("server", &lbl)]))
                .map_or(0.0, |s| s.value)
        };
        let replies = scrape
            .family("runtime_server_replies")
            .and_then(|f| f.sample_with("_total", &[("server", &lbl)]))
            .map_or(0.0, |s| s.value);
        let buckets: Vec<(f64, f64)> = scrape
            .family("runtime_server_dispatch_latency_ms")
            .map(|f| {
                f.samples
                    .iter()
                    .filter(|s| {
                        s.name.ends_with("_bucket") && s.label("server") == Some(lbl.as_str())
                    })
                    .filter_map(|s| {
                        let le = s.label("le")?;
                        let edge = if le == "+Inf" {
                            f64::INFINITY
                        } else {
                            le.parse().ok()?
                        };
                        Some((edge, s.value))
                    })
                    .collect()
            })
            .unwrap_or_default();
        println!(
            "{:>6} {:>6} {:>7} {:>8} {:>14}",
            id,
            if gauge("runtime_server_alive") != 0.0 {
                "up"
            } else {
                "DOWN"
            },
            gauge("runtime_server_queue_depth"),
            replies,
            match bucket_p99(&buckets) {
                Some(p) if p.is_finite() => format!("<= {p:.1} ms"),
                Some(_) => "> last edge".to_string(),
                None => "-".to_string(),
            },
        );
    }
    ExitCode::SUCCESS
}
