//! Figure 10: latency as a function of node degree.
//!
//! Paper result: "We vary node degree from 4 to 12 and … the query latency
//! decreases from 1000 ms to 650 ms. Such latency reduction is mainly
//! because the hierarchy becomes 'flatter', thus a query is forwarded to
//! leaf nodes in fewer hops", with query overhead dropping 3500 → 2000
//! bytes for the same reason.

use roads_bench::{banner, figure_config, run_comparison_recorded, TrialConfig};
use roads_telemetry::{write_chrome_trace_default, FigureExport, Recorder, Registry};

fn main() {
    banner(
        "Figure 10 — query latency vs ROADS node degree",
        "latency drops ~1000 -> ~650 ms as degree grows 4 -> 12 (flatter tree)",
    );
    let base = figure_config();
    let reg = Registry::new();
    let rec = Recorder::new(65_536);
    let mut latency_pts = Vec::new();
    let mut bytes_pts = Vec::new();
    println!(
        "{:>6} {:>8} {:>14} {:>14} {:>12}",
        "degree", "levels", "ROADS (ms)", "bytes/query", "servers"
    );
    for degree in 4..=12 {
        let cfg = TrialConfig { degree, ..base };
        let (r, _) = run_comparison_recorded(&cfg, Some(&reg), Some(&rec));
        let levels = roads_core::HierarchyTree::build(cfg.nodes, degree).levels();
        println!(
            "{:>6} {:>8} {:>14.1} {:>14.0} {:>12.1}",
            degree, levels, r.roads_latency.mean, r.roads_query_bytes, r.roads_servers_contacted
        );
        latency_pts.push((degree as f64, r.roads_latency.mean));
        bytes_pts.push((degree as f64, r.roads_query_bytes));
    }
    println!("\npaper: 1000 ms at degree 4 -> 650 ms at degree 12; overhead 3500 -> 2000 B.");

    let mut fig = FigureExport::new(
        "fig10_latency_vs_degree",
        "Query latency vs ROADS node degree",
    )
    .axes("node degree", "latency (ms)");
    if let (Some(&(_, d4)), Some(&(_, d12))) = (latency_pts.first(), latency_pts.last()) {
        fig.push_reference("latency_ratio_deg12_over_deg4", d12 / d4, 0.65);
    }
    fig.push_series("roads_ms", &latency_pts);
    fig.push_series("roads_bytes", &bytes_pts);
    fig.push_note("paper: 1000 ms at degree 4 -> 650 ms at degree 12 (flatter tree)");
    fig.set_telemetry(reg.snapshot());
    fig.write_default();
    write_chrome_trace_default(&fig.figure, &rec);
    roads_bench::suite::print_metrics_digest(&reg.snapshot());
}
