//! Figure 8: update overhead as a function of per-node record count.
//!
//! Paper result: "Due to the use of constant-size summaries, the update
//! overhead in ROADS remains constant when each node stores more records.
//! In contrast, Sword exports original records and thus its update overhead
//! grows linearly."

use roads_bench::{banner, figure_config, run_comparison_recorded, TrialConfig};
use roads_telemetry::{write_chrome_trace_default, FigureExport, Recorder, Registry};

fn main() {
    banner(
        "Figure 8 — update overhead vs records per node (bytes/second)",
        "ROADS constant; SWORD linear in record count",
    );
    let base = figure_config();
    let reg = Registry::new();
    let rec = Recorder::new(65_536);
    let mut roads_pts = Vec::new();
    let mut sword_pts = Vec::new();
    let mut central_pts = Vec::new();
    println!(
        "{:>8} {:>16} {:>16} {:>16}",
        "records", "ROADS (B/s)", "SWORD (B/s)", "Central (B/s)"
    );
    let sweep: Vec<usize> = if base.records_per_node <= 50 {
        vec![10, 20, 30, 40, 50]
    } else {
        (1..=10).map(|i| i * 50).collect()
    };
    for records_per_node in sweep {
        let cfg = TrialConfig {
            records_per_node,
            ..base
        };
        let (r, _) = run_comparison_recorded(&cfg, Some(&reg), Some(&rec));
        println!(
            "{:>8} {:>16.3e} {:>16.3e} {:>16.3e}",
            records_per_node, r.roads_update_bps, r.sword_update_bps, r.central_update_bps
        );
        roads_pts.push((records_per_node as f64, r.roads_update_bps));
        sword_pts.push((records_per_node as f64, r.sword_update_bps));
        central_pts.push((records_per_node as f64, r.central_update_bps));
    }
    println!("\npaper: ROADS flat; SWORD ~1e8 -> ~1e9 as records grow 50 -> 500.");

    let mut fig = FigureExport::new(
        "fig8_update_vs_records",
        "Update overhead vs records per node (bytes/second)",
    )
    .axes("records per node", "update overhead (B/s)");
    if let (Some(&(_, r_first)), Some(&(_, r_last))) = (roads_pts.first(), roads_pts.last()) {
        fig.push_reference("roads_growth_over_sweep", r_last / r_first, 1.0);
    }
    fig.push_series("roads_bps", &roads_pts);
    fig.push_series("sword_bps", &sword_pts);
    fig.push_series("central_bps", &central_pts);
    fig.push_note("paper: ROADS flat (constant-size summaries); SWORD linear in record count");
    fig.set_telemetry(reg.snapshot());
    fig.write_default();
    write_chrome_trace_default(&fig.figure, &rec);
    roads_bench::suite::print_metrics_digest(&reg.snapshot());
}
