//! Figure 8: update overhead as a function of per-node record count.
//!
//! Paper result: "Due to the use of constant-size summaries, the update
//! overhead in ROADS remains constant when each node stores more records.
//! In contrast, Sword exports original records and thus its update overhead
//! grows linearly."

use roads_bench::{banner, figure_config, run_comparison, TrialConfig};

fn main() {
    banner(
        "Figure 8 — update overhead vs records per node (bytes/second)",
        "ROADS constant; SWORD linear in record count",
    );
    let base = figure_config();
    println!(
        "{:>8} {:>16} {:>16} {:>16}",
        "records", "ROADS (B/s)", "SWORD (B/s)", "Central (B/s)"
    );
    let sweep: Vec<usize> = if base.records_per_node <= 50 {
        vec![10, 20, 30, 40, 50]
    } else {
        (1..=10).map(|i| i * 50).collect()
    };
    for records_per_node in sweep {
        let cfg = TrialConfig {
            records_per_node,
            ..base
        };
        let r = run_comparison(&cfg);
        println!(
            "{:>8} {:>16.3e} {:>16.3e} {:>16.3e}",
            records_per_node, r.roads_update_bps, r.sword_update_bps, r.central_update_bps
        );
    }
    println!("\npaper: ROADS flat; SWORD ~1e8 -> ~1e9 as records grow 50 -> 500.");
}
