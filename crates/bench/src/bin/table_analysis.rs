//! Section IV analysis: evaluate Eq. (1)–(4) at the paper's worked-example
//! parameters and cross-check the conclusions the paper draws from them.

use roads_analysis::{maintenance_overhead, storage_overhead, update_overhead, ModelParams};
use roads_telemetry::{write_chrome_trace_default, EventKind, FigureExport, Recorder, SpanId};

fn main() {
    let rec = Recorder::new(256);
    let t0 = std::time::Instant::now();
    let p = ModelParams::paper_example();
    println!("==================================================================");
    println!("Section IV — analytic model (paper worked example)");
    println!(
        "N={} owners, K={} records, r={} attrs, m={} buckets, k={}, L={}, n={}",
        p.n_owners, p.k_records, p.r_attrs, p.m_buckets, p.k_degree, p.l_levels, p.n_servers
    );
    println!(
        "tr={}s, ts={}s (tr/ts = {})",
        p.tr_secs,
        p.ts_secs,
        p.tr_secs / p.ts_secs
    );
    println!("==================================================================");

    let u = update_overhead(&p);
    println!("\nEq. (1)-(3) — per-second update overhead (attribute values/s):");
    println!("  ROADS   rm(N + kn log n)/ts   = {:>12.3e}", u.roads);
    println!("  SWORD   r^2 K N log n / tr    = {:>12.3e}", u.sword);
    println!("  Central r K N / tr            = {:>12.3e}", u.central);
    println!(
        "  SWORD/ROADS = {:.0}x   (paper: '1-2 orders of magnitude less overhead')",
        u.sword / u.roads
    );
    println!(
        "  SWORD/Central = {:.1}x (paper: 'r log n times higher than the central repository')",
        u.sword / u.central
    );

    let l7 = ModelParams {
        n_servers: 97_656.0,
        l_levels: 7.0,
        ..p
    };
    let (per_period, per_second) = maintenance_overhead(&l7);
    println!("\nEq. (4) — summary maintenance, worst-case per node (L=7, k=5):");
    println!(
        "  k^2 log n = {per_period:.0} summaries per ts ({per_second:.2}/s)   (paper: 'about 150 … per ts')"
    );

    let s = storage_overhead(&p);
    println!("\nTable I — storage overhead (attribute values):");
    println!("  {:<10} {:>14} {:>18}", "system", "expression", "value");
    println!("  {:<10} {:>14} {:>18.3e}", "ROADS", "rmk(i+1)", s.roads);
    println!("  {:<10} {:>14} {:>18.3e}", "SWORD", "r^2KN/n", s.sword);
    println!("  {:<10} {:>14} {:>18.3e}", "Central", "rKN", s.central);
    println!("  (paper exemplary values: 2e5, 6.4e8, 1e9 — same ordering and gaps)");

    let mut fig = FigureExport::new(
        "table_analysis",
        "Section IV analytic model at the paper's worked-example parameters",
    )
    .axes("quantity", "attribute values (or values/s)");
    fig.push_reference("storage_roads", s.roads, 2e5);
    fig.push_reference("storage_sword", s.sword, 6.4e8);
    fig.push_reference("storage_central", s.central, 1e9);
    fig.push_reference("maintenance_per_ts", per_period, 150.0);
    fig.push_series(
        "update_values_per_sec",
        &[(0.0, u.roads), (1.0, u.sword), (2.0, u.central)],
    );
    fig.push_note("series x: 0 = ROADS, 1 = SWORD, 2 = Central (Eq. (1)-(3))");
    // One wall-clock Mark span covering the whole analytic evaluation.
    let trace = rec.next_trace_id();
    rec.record_span(
        trace,
        SpanId::NONE,
        0,
        EventKind::Mark,
        0,
        (t0.elapsed().as_micros() as u64).max(1),
        u.roads as u64,
    );
    fig.write_default();
    write_chrome_trace_default(&fig.figure, &rec);
    // This binary drives no query plane; the digest records that
    // explicitly rather than omitting the line.
    roads_bench::suite::print_metrics_digest(&roads_telemetry::Registry::new().snapshot());
}
