//! Figure 11: prototype total response time vs query selectivity.
//!
//! Paper setup: a cluster prototype where every server fronts a DB2
//! database; queries are grouped by selectivity (0.01%, 0.03%, 0.1%, 0.3%,
//! 1%, 3%) and the metric is *total response time* — query sent until all
//! matching records received, including backend retrieval.
//!
//! Paper result: "The centralized repository is faster when the selectivity
//! is low … As selectivity increases, however, the response time of ROADS
//! becomes comparable to (with 1% selectivity), or even better than (with
//! 3% selectivity), that of a central repository … Multiple ROADS servers
//! can do this in parallel."
//!
//! Scale note: the paper's testbed holds 200K × 120-attribute records per
//! server; this harness scales the store down and the backend cost
//! constants accordingly (see `RuntimeConfig`), preserving the crossover
//! shape rather than absolute milliseconds.

use roads_bench::chart::{render, Series};
use roads_bench::parse_args;
use roads_core::{LatencyStats, RoadsConfig, RoadsNetwork, ServerId};
use roads_netsim::DelaySpace;
use roads_runtime::{CentralCluster, RoadsCluster, RuntimeConfig};
use roads_summary::SummaryConfig;
use roads_telemetry::{write_chrome_trace_default, FigureExport, Recorder, Registry};
use roads_workload::{
    default_schema, generate_node_records, selectivity_query_groups, RecordWorkloadConfig,
};

fn main() {
    let (quick, _) = parse_args();
    let (nodes, records_per_node, per_group) = if quick { (8, 200, 4) } else { (24, 1000, 12) };
    println!("==================================================================");
    println!("Figure 11 — prototype total response time vs query selectivity");
    println!("paper: central wins at low selectivity; ROADS comparable at 1%, better at 3%");
    println!("scale: {nodes} servers x {records_per_node} records, {per_group} queries/group");
    println!("==================================================================");

    let rec_cfg = RecordWorkloadConfig {
        nodes,
        records_per_node,
        attrs: 16,
        seed: 1234,
    };
    let records = generate_node_records(&rec_cfg);
    let schema = default_schema(16);
    let groups = selectivity_query_groups(
        &schema,
        &records,
        &[0.01, 0.03, 0.1, 0.3, 1.0, 3.0],
        per_group,
        6,
        99,
    );

    let runtime_cfg = RuntimeConfig {
        per_record_retrieval_us: 600,
        base_query_cost_us: 5_000,
        bandwidth_mbps: 100.0,
        delay_scale: 0.25,
        ..RuntimeConfig::paper_like()
    };
    let roads_cfg = RoadsConfig {
        max_children: 4,
        summary: SummaryConfig::with_buckets(500),
        ..RoadsConfig::paper_default()
    };
    let delays = DelaySpace::paper(nodes, 7);
    let reg = Registry::new();
    let rec = std::sync::Arc::new(Recorder::new(65_536));
    let net = RoadsNetwork::build(schema.clone(), roads_cfg, records.clone());
    let mut roads = RoadsCluster::start_instrumented(net, delays.clone(), runtime_cfg, &reg);
    roads.set_recorder(std::sync::Arc::clone(&rec));
    let central = CentralCluster::start(schema, records, delays, 0, runtime_cfg);

    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12} {:>12} {:>8}",
        "sel(%)", "ROADS avg", "ROADS p90", "ROADS p99", "Cent avg", "Cent p90", "recs"
    );
    let mut roads_pts = Vec::new();
    let mut roads_p99_pts = Vec::new();
    let mut central_pts = Vec::new();
    for (target, queries) in &groups {
        let mut roads_ms = Vec::new();
        let mut central_ms = Vec::new();
        let mut recs = 0usize;
        for (i, q) in queries.iter().enumerate() {
            let start = ServerId((i % nodes) as u32);
            let r = roads.query(q, start);
            recs = recs.max(r.records.len());
            roads_ms.push(r.response_ms);
            let c = central.query(q, i % nodes);
            central_ms.push(c.response_ms);
            assert_eq!(
                r.records.len(),
                c.records.len(),
                "both systems must return identical result sets"
            );
        }
        let rs = LatencyStats::from_samples(&roads_ms).expect("non-empty");
        let cs = LatencyStats::from_samples(&central_ms).expect("non-empty");
        println!(
            "{:>8.2} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>8}",
            target, rs.mean, rs.p90, rs.p99, cs.mean, cs.p90, recs
        );
        // Log-ish x: plot against the group index so the 0.01..3% decades
        // spread evenly, as in the paper's log-x figure.
        let idx = roads_pts.len() as f64;
        roads_pts.push((idx, rs.mean));
        roads_p99_pts.push((idx, rs.p99));
        central_pts.push((idx, cs.mean));
    }
    println!();
    print!(
        "{}",
        render(
            &[
                Series::new("ROADS avg (ms)", roads_pts.clone()),
                Series::new("Central avg (ms)", central_pts.clone())
            ],
            48,
            12
        )
    );
    println!("(x axis: selectivity group index, 0 = 0.01% .. 5 = 3%)");
    println!("\npaper: ROADS ~1000 ms below 0.3% selectivity; central rises past ROADS by 3%.");
    roads.shutdown();
    central.shutdown();

    let mut fig = FigureExport::new(
        "fig11_prototype_response",
        "Prototype total response time vs query selectivity",
    )
    .axes(
        "selectivity group index (0 = 0.01% .. 5 = 3%)",
        "response time (ms)",
    );
    if let (Some(&(_, r_last)), Some(&(_, c_last))) = (roads_pts.last(), central_pts.last()) {
        // At 3% selectivity the paper has ROADS beating central.
        fig.push_reference("roads_over_central_ratio@3pct", r_last / c_last, 0.8);
    }
    fig.push_series("roads_mean_ms", &roads_pts);
    fig.push_series("roads_p99_ms", &roads_p99_pts);
    fig.push_series("central_mean_ms", &central_pts);
    fig.push_note(
        "runtime.*_us phase spans (local search, channel wait, result merge) in telemetry",
    );
    fig.set_telemetry(reg.snapshot());
    fig.write_default();
    write_chrome_trace_default(&fig.figure, &rec);
    roads_bench::suite::print_metrics_digest(&reg.snapshot());
}
