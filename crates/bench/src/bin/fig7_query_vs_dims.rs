//! Figure 7: query overhead as a function of query dimensionality.
//!
//! Paper result: "SWORD has linearly increasing query overhead as the query
//! dimensionality grows … ROADS shows an initial decrease in query
//! overhead, because less query messages are sent as the search scope is
//! confined … the query overhead increases again because the reduction of
//! search scope flattens out."

use roads_bench::{banner, figure_config, run_comparison_recorded, TrialConfig};
use roads_telemetry::{write_chrome_trace_default, FigureExport, Recorder, Registry};

fn main() {
    banner(
        "Figure 7 — query message overhead vs query dimensionality (bytes/query)",
        "SWORD linear up; ROADS dips then rises",
    );
    let base = figure_config();
    let reg = Registry::new();
    let rec = Recorder::new(65_536);
    let mut roads_pts = Vec::new();
    let mut sword_pts = Vec::new();
    println!(
        "{:>5} {:>14} {:>14} {:>12}",
        "dims", "ROADS (B)", "SWORD (B)", "ROADS msgs"
    );
    for dims in 2..=8 {
        let cfg = TrialConfig {
            query_dims: dims,
            ..base
        };
        let (r, _) = run_comparison_recorded(&cfg, Some(&reg), Some(&rec));
        println!(
            "{:>5} {:>14.0} {:>14.0} {:>12.1}",
            dims, r.roads_query_bytes, r.sword_query_bytes, r.roads_servers_contacted,
        );
        roads_pts.push((dims as f64, r.roads_query_bytes));
        sword_pts.push((dims as f64, r.sword_query_bytes));
    }
    println!("\npaper: ROADS ~2500 B at 2 dims, dipping before rising; SWORD ~500->1500 B.");

    let mut fig = FigureExport::new(
        "fig7_query_vs_dims",
        "Query message overhead vs query dimensionality (bytes/query)",
    )
    .axes("query dimensions", "query overhead (B)");
    if let (Some(&(_, s2)), Some(&(_, s8))) = (sword_pts.first(), sword_pts.last()) {
        fig.push_reference("sword_bytes_growth_2_to_8_dims", s8 / s2, 3.0);
    }
    fig.push_series("roads_bytes", &roads_pts);
    fig.push_series("sword_bytes", &sword_pts);
    fig.push_note("paper: SWORD linear up with dims; ROADS dips then rises");
    fig.set_telemetry(reg.snapshot());
    fig.write_default();
    write_chrome_trace_default(&fig.figure, &rec);
    roads_bench::suite::print_metrics_digest(&reg.snapshot());
}
