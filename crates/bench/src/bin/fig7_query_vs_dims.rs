//! Figure 7: query overhead as a function of query dimensionality.
//!
//! Paper result: "SWORD has linearly increasing query overhead as the query
//! dimensionality grows … ROADS shows an initial decrease in query
//! overhead, because less query messages are sent as the search scope is
//! confined … the query overhead increases again because the reduction of
//! search scope flattens out."

use roads_bench::{banner, figure_config, run_comparison, TrialConfig};

fn main() {
    banner(
        "Figure 7 — query message overhead vs query dimensionality (bytes/query)",
        "SWORD linear up; ROADS dips then rises",
    );
    let base = figure_config();
    println!(
        "{:>5} {:>14} {:>14} {:>12}",
        "dims", "ROADS (B)", "SWORD (B)", "ROADS msgs"
    );
    for dims in 2..=8 {
        let cfg = TrialConfig {
            query_dims: dims,
            ..base
        };
        let r = run_comparison(&cfg);
        println!(
            "{:>5} {:>14.0} {:>14.0} {:>12.1}",
            dims,
            r.roads_query_bytes,
            r.sword_query_bytes,
            r.roads_servers_contacted,
        );
    }
    println!("\npaper: ROADS ~2500 B at 2 dims, dipping before rising; SWORD ~500->1500 B.");
}
