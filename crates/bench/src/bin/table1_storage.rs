//! Table I, measured: per-server storage of ROADS, SWORD and the central
//! repository over the same concrete workload, next to the analytic
//! expressions.

use roads_bench::{banner, figure_config};
use roads_central::CentralRepository;
use roads_core::{RoadsConfig, RoadsNetwork};
use roads_summary::SummaryConfig;
use roads_sword::SwordNetwork;
use roads_telemetry::{write_chrome_trace_default, EventKind, FigureExport, Recorder, SpanId};
use roads_workload::{default_schema, generate_node_records, RecordWorkloadConfig};

/// Worst-server storage bytes of (ROADS, SWORD, Central) for one workload.
fn measure(
    nodes: usize,
    records_per_node: usize,
    attrs: usize,
    buckets: usize,
    degree: usize,
    seed: u64,
) -> (u64, u64, u64) {
    let rec_cfg = RecordWorkloadConfig {
        nodes,
        records_per_node,
        attrs,
        seed,
    };
    let records = generate_node_records(&rec_cfg);
    let schema = default_schema(attrs);

    let roads = RoadsNetwork::build(
        schema.clone(),
        RoadsConfig {
            max_children: degree,
            summary: SummaryConfig::with_buckets(buckets),
            ..RoadsConfig::paper_default()
        },
        records.clone(),
    );
    let sword = SwordNetwork::build(schema.clone(), records.clone());
    let central = CentralRepository::build(0, records);

    let roads_max = roads.max_storage_bytes();
    let sword_max = sword.max_storage_bytes();
    let central_total = central.storage_bytes();

    println!(
        "\nworkload: {nodes} nodes x {records_per_node} records x {attrs} attrs, {buckets} buckets, degree {degree}"
    );
    println!(
        "{:<10} {:>18} {:>24}",
        "system", "bytes (worst srv)", "analytic shape"
    );
    println!("{:<10} {:>18} {:>24}", "ROADS", roads_max, "r·m·k·(i+1)");
    println!("{:<10} {:>18} {:>24}", "SWORD", sword_max, "r²·K·N/n");
    println!("{:<10} {:>18} {:>24}", "Central", central_total, "r·K·N");
    println!(
        "SWORD/ROADS = {:.0}x, Central/ROADS = {:.0}x",
        sword_max as f64 / roads_max as f64,
        central_total as f64 / roads_max as f64
    );
    (roads_max as u64, sword_max as u64, central_total as u64)
}

fn main() {
    banner(
        "Table I — storage overhead (measured bytes, worst server)",
        "ROADS orders of magnitude below SWORD and Central",
    );
    let cfg = figure_config();
    let rec = Recorder::new(1024);
    let trace = rec.next_trace_id();
    let t0 = std::time::Instant::now();
    // Row 1: the simulation workload (K = 500 records per node). At this
    // scale summaries and per-server record shares are comparable.
    let row1 = measure(
        cfg.nodes,
        cfg.records_per_node,
        cfg.attrs,
        cfg.buckets,
        cfg.degree,
        cfg.seed,
    );
    // Row 2: the Table I regime — records dominate (K large, coarse m=100
    // summaries as in the §IV worked example). The gap widens with K
    // because summaries are constant-size.
    let (n2, k2) = if cfg.nodes <= 64 {
        (32, 500)
    } else {
        (64, 2_000)
    };
    let row1_end = t0.elapsed().as_micros() as u64;
    let row2 = measure(n2, k2, 25, 100, 5, cfg.seed);
    let row2_end = t0.elapsed().as_micros() as u64;
    // Wall-clock Mark spans: one root covering both measured rows.
    let root_span = rec.record_span(
        trace,
        SpanId::NONE,
        0,
        EventKind::Mark,
        0,
        row2_end.max(1),
        0,
    );
    rec.record_span(
        trace,
        root_span,
        0,
        EventKind::Mark,
        0,
        row1_end.max(1),
        row1.0,
    );
    rec.record_span(
        trace,
        root_span,
        0,
        EventKind::Mark,
        row1_end,
        row2_end.saturating_sub(row1_end).max(1),
        row2.0,
    );
    println!("\n(paper exemplary values: ROADS 2e5, SWORD 6.4e8, Central 1e9 attribute values;");
    println!(" the ROADS advantage grows linearly with records per owner, K)");

    let mut fig = FigureExport::new(
        "table1_storage",
        "Table I: storage overhead (measured bytes, worst server)",
    )
    .axes(
        "row (0 = sim workload, 1 = Table I regime)",
        "storage (B, worst server)",
    );
    fig.push_series("roads_bytes", &[(0.0, row1.0 as f64), (1.0, row2.0 as f64)]);
    fig.push_series("sword_bytes", &[(0.0, row1.1 as f64), (1.0, row2.1 as f64)]);
    fig.push_series(
        "central_bytes",
        &[(0.0, row1.2 as f64), (1.0, row2.2 as f64)],
    );
    // Paper's exemplary Table I has SWORD/ROADS = 6.4e8 / 2e5 = 3200; our
    // scaled-down row 2 preserves the ordering, not the magnitude.
    fig.push_reference(
        "sword_over_roads_row2",
        row2.1 as f64 / row2.0 as f64,
        3_200.0,
    );
    fig.push_note("ROADS worst-server storage is summaries only; SWORD/Central hold records");
    fig.write_default();
    write_chrome_trace_default(&fig.figure, &rec);
    // This binary drives no query plane; the digest records that
    // explicitly rather than omitting the line.
    roads_bench::suite::print_metrics_digest(&roads_telemetry::Registry::new().snapshot());
}
