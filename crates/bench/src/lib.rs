//! Shared experiment harness regenerating the paper's tables and figures.
//!
//! Every figure binary in `src/bin/` drives [`run_comparison`] (or the
//! prototype runtime) over the sweep its figure uses and prints the series
//! the paper plots, next to the paper's reference values where the text
//! states them. `EXPERIMENTS.md` at the repository root records a full
//! paper-vs-measured comparison.
//!
//! All experiments default to the paper's parameters (§V): 320 nodes × 500
//! records × 16 attributes, 500 six-dimensional queries with 0.25-length
//! ranges, degree-8 hierarchy, 1000-bucket histograms, results averaged
//! over 10 runs. Binaries accept `--runs N` and `--quick` (a scaled-down
//! sweep for smoke testing).

pub mod audit_view;
pub mod chart;
pub mod delta_view;
pub mod explain_view;
pub mod incident_view;
pub mod plan_view;
pub mod suite;

use roads_central::CentralRepository;
use roads_core::{
    execute_query, execute_query_traced, record_query_events, trace_to_telemetry, LatencyStats,
    RoadsConfig, RoadsNetwork, SearchScope,
};
use roads_netsim::DelaySpace;
use roads_records::Schema;
use roads_summary::SummaryConfig;
use roads_sword::SwordNetwork;
use roads_telemetry::{aggregate_traces, QueryTrace, Recorder, Registry, TraceReport};
use roads_workload::{
    default_schema, generate_node_records, generate_overlap_records, generate_queries,
    QueryWorkloadConfig, RecordWorkloadConfig,
};

/// One experiment's parameters (paper defaults unless overridden).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialConfig {
    /// Number of nodes (each a server + resource owner).
    pub nodes: usize,
    /// Records per node.
    pub records_per_node: usize,
    /// Attributes per record.
    pub attrs: usize,
    /// Query dimensionality.
    pub query_dims: usize,
    /// Queries per run.
    pub queries: usize,
    /// ROADS hierarchy degree.
    pub degree: usize,
    /// Histogram buckets per attribute.
    pub buckets: usize,
    /// Independent runs to average over.
    pub runs: usize,
    /// Base RNG seed (each run offsets it).
    pub seed: u64,
    /// Overlap factor for Fig. 9 workloads (`None` = default workload).
    pub overlap_factor: Option<f64>,
    /// Summary refresh period ts (ms).
    pub ts_ms: u64,
    /// Record refresh period tr (ms).
    pub tr_ms: u64,
    /// Worker threads for the network build (1 = sequential). The build
    /// is thread-count-invariant, so this only changes wall-clock time.
    pub build_threads: usize,
}

impl Default for TrialConfig {
    fn default() -> Self {
        TrialConfig {
            nodes: 320,
            records_per_node: 500,
            attrs: 16,
            query_dims: 6,
            queries: 500,
            degree: 8,
            buckets: 1000,
            runs: 10,
            seed: 42,
            overlap_factor: None,
            ts_ms: 60_000,
            tr_ms: 6_000,
            build_threads: 1,
        }
    }
}

impl TrialConfig {
    /// Scaled-down settings for smoke tests (`--quick`).
    pub fn quick() -> Self {
        TrialConfig {
            nodes: 64,
            records_per_node: 50,
            queries: 50,
            buckets: 200,
            runs: 2,
            ..Self::default()
        }
    }
}

/// Aggregated results of one ROADS-vs-SWORD(-vs-central) comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonResult {
    /// ROADS query latency over all queries and runs.
    pub roads_latency: LatencyStats,
    /// SWORD query latency.
    pub sword_latency: LatencyStats,
    /// Mean ROADS query-forwarding bytes per query.
    pub roads_query_bytes: f64,
    /// Mean SWORD query-forwarding bytes per query.
    pub sword_query_bytes: f64,
    /// ROADS update overhead, bytes per second (summaries every ts).
    pub roads_update_bps: f64,
    /// SWORD update overhead, bytes per second (records every tr).
    pub sword_update_bps: f64,
    /// Central-repository update overhead, bytes per second.
    pub central_update_bps: f64,
    /// Mean servers contacted per ROADS query.
    pub roads_servers_contacted: f64,
    /// Mean servers contacted per SWORD query.
    pub sword_servers_contacted: f64,
}

/// Build the workload for one run.
fn build_workload(
    cfg: &TrialConfig,
    run: usize,
) -> (
    Schema,
    Vec<Vec<roads_records::Record>>,
    Vec<(roads_records::Query, usize)>,
) {
    let seed = cfg.seed.wrapping_add(run as u64 * 7919);
    let rec_cfg = RecordWorkloadConfig {
        nodes: cfg.nodes,
        records_per_node: cfg.records_per_node,
        attrs: cfg.attrs,
        seed,
    };
    let records = match cfg.overlap_factor {
        Some(of) => generate_overlap_records(&rec_cfg, of),
        None => generate_node_records(&rec_cfg),
    };
    let schema = default_schema(cfg.attrs);
    let queries = generate_queries(
        &schema,
        &QueryWorkloadConfig {
            count: cfg.queries,
            dims: cfg.query_dims,
            range_len: 0.25,
            nodes: cfg.nodes,
            seed: seed ^ 0xABCD,
        },
    );
    (schema, records, queries)
}

/// Run the full comparison for one configuration.
pub fn run_comparison(cfg: &TrialConfig) -> ComparisonResult {
    run_comparison_instrumented(cfg, None).0
}

/// [`run_comparison`] that additionally records every query into a
/// telemetry registry (counters + latency histograms under `roads.*`,
/// `sword.*`, `central.*`) and traces every ROADS execution, returning the
/// aggregated [`TraceReport`]. With `telemetry = None` this is exactly the
/// uninstrumented comparison — no tracing, no counters, no extra
/// allocation on the query path.
pub fn run_comparison_instrumented(
    cfg: &TrialConfig,
    telemetry: Option<&Registry>,
) -> (ComparisonResult, Option<TraceReport>) {
    run_comparison_recorded(cfg, telemetry, None)
}

/// [`run_comparison_instrumented`] that additionally feeds every executed
/// query into a flight [`Recorder`]: ROADS executions become causal
/// span trees (one trace per query), SWORD and central executions become
/// hop chains — all exportable as one Chrome/Perfetto trace via
/// [`roads_telemetry::write_chrome_trace_default`]. With `recorder =
/// None` this is exactly [`run_comparison_instrumented`].
pub fn run_comparison_recorded(
    cfg: &TrialConfig,
    telemetry: Option<&Registry>,
    recorder: Option<&Recorder>,
) -> (ComparisonResult, Option<TraceReport>) {
    let mut roads_lat = Vec::new();
    let mut sword_lat = Vec::new();
    let mut roads_qb = 0.0;
    let mut sword_qb = 0.0;
    let mut roads_contacted = 0.0;
    let mut sword_contacted = 0.0;
    let mut roads_bps = 0.0;
    let mut sword_bps = 0.0;
    let mut central_bps = 0.0;
    let total_queries = (cfg.queries * cfg.runs) as f64;
    let mut traces: Vec<QueryTrace> = Vec::new();
    let mut root = 0u32;

    for run in 0..cfg.runs {
        let (schema, records, queries) = build_workload(cfg, run);
        let delays = DelaySpace::paper(cfg.nodes, cfg.seed.wrapping_add(run as u64));

        let roads_cfg = RoadsConfig {
            max_children: cfg.degree,
            summary: SummaryConfig::with_buckets(cfg.buckets),
            ts_ms: cfg.ts_ms,
            tr_ms: cfg.tr_ms,
            ..RoadsConfig::paper_default()
        };
        let roads = RoadsNetwork::build_with(
            schema.clone(),
            roads_cfg,
            records.clone(),
            roads_core::BuildOptions::with_threads(cfg.build_threads),
        );
        let sword = SwordNetwork::build(schema.clone(), records.clone());
        let central = CentralRepository::build(0, records.clone());

        root = roads.tree().root().0;

        for (q, start) in &queries {
            let entry = roads_core::ServerId(*start as u32);
            let r = if telemetry.is_some() || recorder.is_some() {
                let (r, trace) =
                    execute_query_traced(&roads, &delays, q, entry, SearchScope::full());
                if let Some(reg) = telemetry {
                    traces.push(trace_to_telemetry(&roads, q.id.0, &trace));
                    roads_core::record_query_outcome(reg, &r);
                }
                if let Some(rec) = recorder {
                    let trace_id = rec.next_trace_id();
                    let _ = record_query_events(rec, trace_id, &trace);
                }
                r
            } else {
                execute_query(&roads, &delays, q, entry, SearchScope::full())
            };
            roads_lat.push(r.latency_ms);
            roads_qb += r.query_bytes as f64;
            roads_contacted += r.servers_contacted as f64;

            let s = sword.execute_query_recorded(&delays, q, *start, recorder);
            if let Some(reg) = telemetry {
                roads_sword::record_query_outcome(reg, &s);
                roads_central::record_query_outcome(
                    reg,
                    &central.execute_query_recorded(&delays, q, *start, recorder),
                );
            }
            sword_lat.push(s.latency_ms);
            sword_qb += s.query_bytes as f64;
            sword_contacted += s.servers_contacted as f64;
        }

        roads_bps += roads_core::update_round(&roads).bytes_per_second(cfg.ts_ms);
        sword_bps += sword.update_round().bytes_per_second(cfg.tr_ms);
        central_bps += central.update_round().bytes_per_second(cfg.tr_ms);
    }

    let runs = cfg.runs as f64;
    let result = ComparisonResult {
        roads_latency: LatencyStats::from_samples(&roads_lat).expect("runs > 0"),
        sword_latency: LatencyStats::from_samples(&sword_lat).expect("runs > 0"),
        roads_query_bytes: roads_qb / total_queries,
        sword_query_bytes: sword_qb / total_queries,
        roads_update_bps: roads_bps / runs,
        sword_update_bps: sword_bps / runs,
        central_update_bps: central_bps / runs,
        roads_servers_contacted: roads_contacted / total_queries,
        sword_servers_contacted: sword_contacted / total_queries,
    };
    let report = telemetry.map(|_| aggregate_traces(&traces, root, cfg.nodes));
    (result, report)
}

/// Parse the common CLI flags shared by all figure binaries:
/// `--quick` (alias `--smoke`), `--runs N`, `--seed S`, `--threads T`.
pub fn parse_args() -> (bool, Option<usize>) {
    let (quick, runs, _, _) = parse_args_full();
    (quick, runs)
}

/// [`parse_args`] plus the optional `--seed` and `--threads`.
pub fn parse_args_full() -> (bool, Option<usize>, Option<u64>, Option<usize>) {
    let mut quick = false;
    let mut runs = None;
    let mut seed = None;
    let mut threads = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" | "--smoke" => quick = true,
            "--runs" => runs = Some(required_number(&mut args, "--runs")),
            "--seed" => seed = Some(required_number(&mut args, "--seed")),
            "--threads" => threads = Some(required_number(&mut args, "--threads")),
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
    }
    (quick, runs, seed, threads)
}

fn required_number<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, flag: &str) -> T {
    match args.next().and_then(|v| v.parse().ok()) {
        Some(v) => v,
        None => {
            eprintln!("error: {flag} requires a number");
            std::process::exit(2);
        }
    }
}

/// Base config for a figure binary honoring `--quick`, `--runs`, `--seed`,
/// `--threads`.
pub fn figure_config() -> TrialConfig {
    let (quick, runs, seed, threads) = parse_args_full();
    let mut cfg = if quick {
        TrialConfig::quick()
    } else {
        TrialConfig::default()
    };
    if let Some(r) = runs {
        cfg.runs = r;
    }
    if let Some(s) = seed {
        cfg.seed = s;
    }
    if let Some(t) = threads {
        cfg.build_threads = t.max(1);
    }
    cfg
}

/// Print a figure banner.
pub fn banner(title: &str, paper_ref: &str) {
    println!("==================================================================");
    println!("{title}");
    println!("paper reference: {paper_ref}");
    println!("==================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_comparison_smoke() {
        let cfg = TrialConfig {
            nodes: 32,
            records_per_node: 20,
            queries: 20,
            buckets: 100,
            runs: 1,
            ..TrialConfig::quick()
        };
        let r = run_comparison(&cfg);
        assert!(r.roads_latency.mean > 0.0);
        assert!(r.sword_latency.mean > 0.0);
        assert!(r.roads_update_bps > 0.0);
        assert!(r.sword_update_bps > r.roads_update_bps, "headline result");
    }

    #[test]
    fn instrumented_comparison_records_and_traces() {
        let cfg = TrialConfig {
            nodes: 32,
            records_per_node: 20,
            queries: 20,
            buckets: 100,
            runs: 1,
            ..TrialConfig::quick()
        };
        let reg = Registry::new();
        let (r, report) = run_comparison_instrumented(&cfg, Some(&reg));
        assert_eq!(r.roads_latency.count, 20);
        let report = report.expect("telemetry requested");
        assert_eq!(report.queries, 20);
        assert!(report.mean_hops >= 1.0);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["roads.queries"], 20);
        assert_eq!(snap.counters["sword.queries"], 20);
        assert_eq!(snap.counters["central.queries"], 20);
        assert_eq!(snap.histograms["roads.query_latency_ms"].count, 20);
        assert!(
            snap.histograms["roads.query_latency_ms"].p99
                >= snap.histograms["roads.query_latency_ms"].p50
        );
    }

    #[test]
    fn recorded_comparison_fills_the_flight_recorder() {
        let cfg = TrialConfig {
            nodes: 32,
            records_per_node: 20,
            queries: 10,
            buckets: 100,
            runs: 1,
            ..TrialConfig::quick()
        };
        let rec = Recorder::new(8192);
        let (r, _) = run_comparison_recorded(&cfg, None, Some(&rec));
        assert_eq!(r.roads_latency.count, 10);
        let events = rec.events();
        // One ROADS trace + one SWORD trace per query.
        let traces = roads_telemetry::trace_ids(&events);
        assert_eq!(traces.len(), 20, "10 roads + 10 sword traces");
        // Every trace is a valid span tree.
        for t in traces {
            let tev = roads_telemetry::trace_events(&events, t);
            roads_telemetry::span_tree_root(&tev, t)
                .unwrap_or_else(|e| panic!("trace {}: {e}", t.0));
        }
    }

    #[test]
    fn overlap_workload_runs() {
        let cfg = TrialConfig {
            nodes: 32,
            records_per_node: 20,
            queries: 10,
            buckets: 100,
            runs: 1,
            overlap_factor: Some(4.0),
            ..TrialConfig::quick()
        };
        let r = run_comparison(&cfg);
        assert!(r.roads_latency.count == 10);
    }
}
