//! Offline views of the incremental update plane: the `DELTA.json`
//! artifact written by `bench_suite` alongside `BENCH_ROADS.json`.
//!
//! The artifact captures what the incremental delta update path did over
//! the suite's churn workload: the size of the record population, how
//! many changes one churn round carried, wall time of a full
//! rebuild-and-propagate round vs the delta round over the same network,
//! the resulting speedup, and the delta outcome counters mirrored from
//! the `roads.delta.*` OpenMetrics families (applied/rejected changes,
//! dirty servers and branches, bounded shard rebuilds).
//!
//! Two consumers share this module:
//!
//! * `roads-inspect delta <artifact>` — the summary table
//!   ([`render_delta_table`]).
//! * `roads-inspect check` — strict schema validation via
//!   [`DeltaReport::from_json`], including the delta path's core
//!   invariant (the incremental round stays at least an order of
//!   magnitude faster than the full round) so a regression fails the
//!   artifact check, not just a bench diff. [`is_delta_doc`] routes
//!   `check` between this schema and the other artifact schemas.

use roads_telemetry::Json;

/// Current `DELTA.json` schema version.
pub const DELTA_SCHEMA_VERSION: u64 = 1;

/// The minimum full-round / delta-round speedup a healthy incremental
/// path must sustain; [`DeltaReport::from_json`] rejects artifacts below
/// it.
pub const MIN_DELTA_SPEEDUP: f64 = 10.0;

/// The incremental-update summary of one bench-suite run.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaReport {
    /// Document schema version ([`DELTA_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Matrix configuration the run used (`"smoke"` or `"full"`).
    pub config: String,
    /// Servers in the churn network.
    pub servers: u64,
    /// Total records across all servers.
    pub records: u64,
    /// Record changes per churn round.
    pub churn_changes: u64,
    /// Mean wall time of one full rebuild-and-propagate round (ms).
    pub full_ms: f64,
    /// Mean wall time of one incremental delta round (ms).
    pub delta_ms: f64,
    /// `full_ms / delta_ms`.
    pub speedup: f64,
    /// Propagation bytes of one full round.
    pub full_bytes: u64,
    /// Propagation bytes of one delta round.
    pub delta_bytes: u64,
    /// Changes applied in the last churn round
    /// (`roads.delta.changes_applied`).
    pub applied: u64,
    /// Changes rejected in the last churn round
    /// (`roads.delta.changes_rejected`).
    pub rejected: u64,
    /// Servers whose local summary the last round dirtied
    /// (`roads.delta.dirty_servers`).
    pub dirty_servers: u64,
    /// Branch summaries the last round recomputed
    /// (`roads.delta.dirty_branches`).
    pub dirty_branches: u64,
    /// Bounded per-shard summary rebuilds the last round forced
    /// (`roads.delta.shard_rebuilds`).
    pub shard_rebuilds: u64,
}

impl DeltaReport {
    /// Fraction of the record population one churn round touched.
    pub fn churn_fraction(&self) -> f64 {
        if self.records == 0 {
            0.0
        } else {
            self.churn_changes as f64 / self.records as f64
        }
    }

    /// Propagation-byte reduction vs the full round (0 when the full
    /// round moved nothing).
    pub fn byte_reduction(&self) -> f64 {
        if self.full_bytes == 0 {
            0.0
        } else {
            1.0 - self.delta_bytes as f64 / self.full_bytes as f64
        }
    }

    /// Serialize to the on-disk document shape.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "delta_schema_version",
                Json::num(self.schema_version as f64),
            ),
            ("config", Json::str(self.config.clone())),
            ("servers", Json::num(self.servers as f64)),
            ("records", Json::num(self.records as f64)),
            ("churn_changes", Json::num(self.churn_changes as f64)),
            ("full_ms", Json::num(self.full_ms)),
            ("delta_ms", Json::num(self.delta_ms)),
            ("speedup", Json::num(self.speedup)),
            ("full_bytes", Json::num(self.full_bytes as f64)),
            ("delta_bytes", Json::num(self.delta_bytes as f64)),
            ("applied", Json::num(self.applied as f64)),
            ("rejected", Json::num(self.rejected as f64)),
            ("dirty_servers", Json::num(self.dirty_servers as f64)),
            ("dirty_branches", Json::num(self.dirty_branches as f64)),
            ("shard_rebuilds", Json::num(self.shard_rebuilds as f64)),
        ])
    }

    /// Parse and validate a delta document. Beyond shape, this enforces
    /// the incremental path's invariants: the recorded speedup is
    /// consistent with the timings and at least [`MIN_DELTA_SPEEDUP`],
    /// the delta round never moves more bytes than the full round, the
    /// dirty sets fit the network, and the change accounting adds up.
    pub fn from_json(doc: &Json) -> Result<DeltaReport, String> {
        let version = doc
            .get("delta_schema_version")
            .and_then(Json::as_f64)
            .ok_or("missing delta_schema_version marker")?;
        if version != DELTA_SCHEMA_VERSION as f64 {
            return Err(format!(
                "unknown delta_schema_version {version} (this build reads {DELTA_SCHEMA_VERSION})"
            ));
        }
        let config = doc
            .get("config")
            .and_then(Json::as_str_val)
            .ok_or("missing config")?
            .to_string();
        let count = |key: &str| -> Result<u64, String> {
            let v = doc
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing or non-numeric {key}"))?;
            if !v.is_finite() || v < 0.0 || v.fract() != 0.0 {
                return Err(format!("{key} must be a non-negative integer, got {v}"));
            }
            Ok(v as u64)
        };
        let millis = |key: &str| -> Result<f64, String> {
            let v = doc
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing or non-numeric {key}"))?;
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("{key} must be a positive duration, got {v}"));
            }
            Ok(v)
        };
        let report = DeltaReport {
            schema_version: version as u64,
            config,
            servers: count("servers")?,
            records: count("records")?,
            churn_changes: count("churn_changes")?,
            full_ms: millis("full_ms")?,
            delta_ms: millis("delta_ms")?,
            speedup: millis("speedup")?,
            full_bytes: count("full_bytes")?,
            delta_bytes: count("delta_bytes")?,
            applied: count("applied")?,
            rejected: count("rejected")?,
            dirty_servers: count("dirty_servers")?,
            dirty_branches: count("dirty_branches")?,
            shard_rebuilds: count("shard_rebuilds")?,
        };
        if report.servers == 0 || report.records == 0 {
            return Err("empty churn network".to_string());
        }
        if report.churn_changes == 0 {
            return Err("no churn changes in the delta round".to_string());
        }
        if report.applied + report.rejected != report.churn_changes {
            return Err(format!(
                "change accounting does not add up: {} applied + {} rejected != {} changes",
                report.applied, report.rejected, report.churn_changes
            ));
        }
        if report.dirty_servers > report.servers {
            return Err(format!(
                "more dirty servers than servers ({} > {})",
                report.dirty_servers, report.servers
            ));
        }
        if report.dirty_branches < report.dirty_servers {
            return Err(format!(
                "dirty branch closure smaller than the dirty server set ({} < {})",
                report.dirty_branches, report.dirty_servers
            ));
        }
        if report.delta_bytes > report.full_bytes {
            return Err(format!(
                "delta round moved more bytes than the full round ({} > {})",
                report.delta_bytes, report.full_bytes
            ));
        }
        let expected = report.full_ms / report.delta_ms;
        if (report.speedup - expected).abs() > 1e-6 * expected.max(1.0) {
            return Err(format!(
                "speedup {} inconsistent with timings ({} / {} ms)",
                report.speedup, report.full_ms, report.delta_ms
            ));
        }
        if report.speedup < MIN_DELTA_SPEEDUP {
            return Err(format!(
                "delta round only {:.1}x faster than the full round — \
                 the incremental path must stay >= {MIN_DELTA_SPEEDUP:.0}x",
                report.speedup
            ));
        }
        Ok(report)
    }

    /// Load and validate a report from disk.
    pub fn load(path: &std::path::Path) -> Result<DeltaReport, String> {
        let body = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let doc = Json::parse(&body).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::from_json(&doc).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Write the pretty-printed document.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().to_string_pretty())
    }
}

/// Whether this is a delta document at all (any version): used by
/// `roads-inspect check` to route between artifact schemas.
pub fn is_delta_doc(doc: &Json) -> bool {
    doc.get("delta_schema_version").is_some()
}

/// The incremental-update summary table.
pub fn render_delta_table(r: &DeltaReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "delta: {} records across {} servers, {} changes/round ({:.2}% churn), config {}\n",
        r.records,
        r.servers,
        r.churn_changes,
        100.0 * r.churn_fraction(),
        r.config
    ));
    out.push_str(&format!(
        "{:>24} {:>12.1} ms\n{:>24} {:>12.1} ms ({:.1}x faster)\n{:>24} {:>12} ({:.1}% fewer than full)\n",
        "full round",
        r.full_ms,
        "delta round",
        r.delta_ms,
        r.speedup,
        "delta bytes",
        r.delta_bytes,
        100.0 * r.byte_reduction(),
    ));
    out.push_str(&format!(
        "last round: {} applied / {} rejected, {} dirty servers, {} dirty branches, {} shard rebuilds\n",
        r.applied, r.rejected, r.dirty_servers, r.dirty_branches, r.shard_rebuilds,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> DeltaReport {
        DeltaReport {
            schema_version: DELTA_SCHEMA_VERSION,
            config: "smoke".to_string(),
            servers: 64,
            records: 250_000,
            churn_changes: 2_500,
            full_ms: 480.0,
            delta_ms: 12.0,
            speedup: 40.0,
            full_bytes: 131_072,
            delta_bytes: 131_072,
            applied: 2_500,
            rejected: 0,
            dirty_servers: 64,
            dirty_branches: 64,
            shard_rebuilds: 3,
        }
    }

    #[test]
    fn artifact_round_trips() {
        let r = report();
        let doc = Json::parse(&r.to_json().to_string_pretty()).unwrap();
        assert!(is_delta_doc(&doc));
        let parsed = DeltaReport::from_json(&doc).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn table_shows_churn_and_speedup() {
        let text = render_delta_table(&report());
        assert!(text.contains("250000 records across 64 servers"), "{text}");
        assert!(text.contains("(1.00% churn)"), "{text}");
        assert!(text.contains("40.0x faster"), "{text}");
        assert!(text.contains("3 shard rebuilds"), "{text}");
    }

    #[test]
    fn check_rejects_a_slow_delta_path() {
        let mut r = report();
        r.delta_ms = 60.0;
        r.speedup = r.full_ms / r.delta_ms; // 8x: below the floor
        let doc = Json::parse(&r.to_json().to_string_pretty()).unwrap();
        let err = DeltaReport::from_json(&doc).unwrap_err();
        assert!(err.contains("must stay >= 10x"), "{err}");
    }

    #[test]
    fn check_rejects_inconsistent_accounting() {
        // A speedup that does not match the timings is a corrupt
        // artifact, not a rounding detail.
        let mut r = report();
        r.speedup = 200.0;
        let doc = Json::parse(&r.to_json().to_string_pretty()).unwrap();
        assert!(DeltaReport::from_json(&doc)
            .unwrap_err()
            .contains("inconsistent"));

        let mut r = report();
        r.applied = 1;
        let doc = Json::parse(&r.to_json().to_string_pretty()).unwrap();
        assert!(DeltaReport::from_json(&doc)
            .unwrap_err()
            .contains("does not add up"));

        let mut r = report();
        r.dirty_servers = r.servers + 1;
        r.dirty_branches = r.dirty_servers;
        let doc = Json::parse(&r.to_json().to_string_pretty()).unwrap();
        assert!(DeltaReport::from_json(&doc)
            .unwrap_err()
            .contains("more dirty servers"));

        let mut r = report();
        r.delta_bytes = r.full_bytes + 1;
        let doc = Json::parse(&r.to_json().to_string_pretty()).unwrap();
        assert!(DeltaReport::from_json(&doc)
            .unwrap_err()
            .contains("more bytes"));
    }

    #[test]
    fn check_rejects_corrupt_documents() {
        let other = Json::obj(vec![("benches", Json::num(1.0))]);
        assert!(!is_delta_doc(&other));
        assert!(DeltaReport::from_json(&other)
            .unwrap_err()
            .contains("marker"));

        let truncated =
            Json::parse(r#"{"delta_schema_version":1,"config":"smoke","servers":4,"records":100}"#)
                .unwrap();
        assert!(DeltaReport::from_json(&truncated)
            .unwrap_err()
            .contains("churn_changes"));

        let mut zero = report();
        zero.churn_changes = 0;
        zero.applied = 0;
        let doc = Json::parse(&zero.to_json().to_string_pretty()).unwrap();
        assert!(DeltaReport::from_json(&doc)
            .unwrap_err()
            .contains("no churn changes"));
    }
}
