//! Offline views of the summary-fidelity audit plane: parse and render
//! `AUDIT.json` artifacts written by a `roads_runtime` [`Auditor`].
//!
//! Two consumers share this module:
//!
//! * `roads-inspect audit <artifact>` — the per-level fidelity table
//!   ([`render_audit_table`]): probes, FP/FN rates, divergence and
//!   staleness per hierarchy level, plus the overlay-wide scalars.
//! * `roads-inspect check` — strict schema validation via
//!   [`AuditReport::from_json`]: a truncated or hand-edited artifact
//!   fails with a message naming the offending entry instead of
//!   producing a half-empty view. [`is_audit_doc`] routes `check`
//!   between this schema and the other artifact schemas.
//!
//! [`Auditor`]: roads_runtime::Auditor

pub use roads_runtime::{is_audit_doc, AuditReport};

/// The per-level fidelity table plus overlay-wide scalars.
pub fn render_audit_table(report: &AuditReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "audit: epoch {}, {} ticks, divergence {:.2}%, staleness p99 {} rounds\n",
        report.epoch,
        report.ticks,
        report.divergence * 100.0,
        report.staleness_p99,
    ));
    out.push_str(&format!(
        "worst summary drift {:.4}, worst bloom saturation {:.2}%\n",
        report.max_drift,
        report.bloom_saturation * 100.0,
    ));
    out.push_str(&format!(
        "{:>5} {:>7} {:>8} {:>6} {:>7} {:>6} {:>7} {:>8} {:>9} {:>7}\n",
        "level", "entries", "probes", "fp", "fp%", "fn", "fn%", "diverged", "stale-max", "live-fp"
    ));
    for l in &report.levels {
        out.push_str(&format!(
            "{:>5} {:>7} {:>8} {:>6} {:>6.2}% {:>6} {:>6.2}% {:>8} {:>9} {:>7}\n",
            l.level,
            l.entries,
            l.probes,
            l.false_positives,
            100.0 * l.fp_rate(),
            l.false_negatives,
            100.0 * l.fn_rate(),
            l.diverged,
            l.staleness_max,
            l.live_false_positives,
        ));
    }
    out.push_str(&format!(
        "totals: {} probes, {} fp, {} fn\n",
        report.probes(),
        report.false_positives(),
        report.false_negatives(),
    ));
    if report.false_negatives() > 0 {
        out.push_str(
            "WARNING: false negatives present — stale overlay copies pruned live matches\n",
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use roads_runtime::AuditLevelRow;
    use roads_telemetry::Json;

    fn report() -> AuditReport {
        AuditReport {
            epoch: 6,
            ticks: 24,
            divergence: 0.125,
            staleness_p99: 5,
            max_drift: 0.031,
            bloom_saturation: 0.42,
            levels: vec![
                AuditLevelRow {
                    level: 0,
                    entries: 12,
                    probes: 480,
                    false_positives: 0,
                    false_negatives: 0,
                    diverged: 0,
                    staleness_max: 0,
                    live_probes: 30,
                    live_false_positives: 2,
                },
                AuditLevelRow {
                    level: 2,
                    entries: 24,
                    probes: 960,
                    false_positives: 48,
                    false_negatives: 3,
                    diverged: 3,
                    staleness_max: 5,
                    live_probes: 90,
                    live_false_positives: 11,
                },
            ],
        }
    }

    #[test]
    fn table_lists_every_level_with_rates() {
        let text = render_audit_table(&report());
        assert!(text.contains("divergence 12.50%"), "{text}");
        assert!(text.contains("staleness p99 5 rounds"), "{text}");
        for needle in ["level", "fp%", "fn%", "stale-max", "live-fp"] {
            assert!(text.contains(needle), "missing {needle}:\n{text}");
        }
        // Level 2: 48/960 = 5% FP rate.
        assert!(text.contains("5.00%"), "{text}");
        assert!(text.contains("totals: 1440 probes, 48 fp, 3 fn"), "{text}");
        assert!(text.contains("WARNING"), "fn > 0 must warn:\n{text}");
    }

    #[test]
    fn clean_report_renders_without_warning() {
        let mut r = report();
        for l in &mut r.levels {
            l.false_negatives = 0;
        }
        assert!(!render_audit_table(&r).contains("WARNING"));
    }

    #[test]
    fn artifact_round_trips_through_the_renderer_path() {
        let r = report();
        let doc = Json::parse(&r.to_json().to_string_pretty()).unwrap();
        assert!(is_audit_doc(&doc));
        let parsed = AuditReport::from_json(&doc).unwrap();
        assert_eq!(parsed, r);
        assert_eq!(render_audit_table(&parsed), render_audit_table(&r));
    }

    #[test]
    fn parser_rejects_corrupt_documents() {
        // Not an audit document at all.
        let other = Json::obj(vec![("slow_queries", Json::num(1.0))]);
        assert!(!is_audit_doc(&other));
        assert!(AuditReport::from_json(&other)
            .unwrap_err()
            .contains("marker"));

        // Truncated: the marker survived but the scalars are gone.
        let truncated = Json::parse(r#"{"audit":1,"epoch":3}"#).unwrap();
        let err = AuditReport::from_json(&truncated).unwrap_err();
        assert!(err.contains("levels"), "{err}");

        // A level row missing a field names the row.
        let bad_row = Json::parse(
            r#"{"audit":1,"epoch":1,"ticks":2,"divergence":0,"staleness_p99":0,
                "max_drift":0,"bloom_saturation":0,
                "levels":[{"level":0,"entries":4}]}"#,
        )
        .unwrap();
        let err = AuditReport::from_json(&bad_row).unwrap_err();
        assert!(err.contains("levels[0]"), "{err}");

        // A non-numeric scalar fails cleanly instead of defaulting.
        let bad_type = Json::parse(
            r#"{"audit":1,"epoch":"six","ticks":2,"divergence":0,"staleness_p99":0,
                "max_drift":0,"bloom_saturation":0,"levels":[]}"#,
        )
        .unwrap();
        let err = AuditReport::from_json(&bad_type).unwrap_err();
        assert!(err.contains("epoch"), "{err}");
    }
}
