//! Macrobench regression harness: `BENCH_*.json` reports and diffing.
//!
//! The `bench_suite` binary runs a fixed macrobench matrix (parallel
//! network build, update propagation, live query-plane throughput,
//! failover recovery) and writes its results as one `BENCH_ROADS.json`
//! document at the repository root. This module owns that document's
//! schema — [`BenchReport`] / [`BenchRecord`] with `to_json`/`from_json`
//! round-tripping through the workspace's hand-rolled
//! [`Json`](roads_telemetry::Json) — plus the regression comparator
//! behind `roads-inspect bench-diff OLD NEW --fail-over <pct>` and the
//! schema validator behind `roads-inspect check`.
//!
//! Regression direction is inferred from the unit: throughput units
//! (`qps`, anything per-second) regress when they *drop*, everything
//! else (latencies, byte counts) regresses when it *grows*.

use roads_telemetry::{Json, MetricsSnapshot};

/// Schema version written by this build; `from_json` rejects documents
/// carrying any other version so CI never silently compares
/// incompatible reports.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// One macrobench result.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Stable bench name (`build_1t`, `qps_overlay`, ...).
    pub name: String,
    /// Unit of `value` (`ms`, `qps`); decides the regression direction.
    pub unit: String,
    /// Headline value: the mean over samples.
    pub value: f64,
    /// Median sample.
    pub p50: f64,
    /// 99th-percentile sample.
    pub p99: f64,
    /// Number of samples behind the statistics.
    pub samples: usize,
}

impl BenchRecord {
    /// Aggregate raw samples into a record (mean / p50 / p99).
    pub fn from_samples(name: &str, unit: &str, samples: &[f64]) -> BenchRecord {
        assert!(!samples.is_empty(), "bench {name} produced no samples");
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let pct = |p: f64| sorted[((sorted.len() - 1) as f64 * p).round() as usize];
        BenchRecord {
            name: name.to_string(),
            unit: unit.to_string(),
            value: samples.iter().sum::<f64>() / samples.len() as f64,
            p50: pct(0.50),
            p99: pct(0.99),
            samples: samples.len(),
        }
    }
}

/// A full `BENCH_*.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Document schema version ([`BENCH_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// `git rev-parse --short HEAD` at run time (`"unknown"` outside a
    /// checkout).
    pub commit: String,
    /// Matrix configuration the run used (`"smoke"` or `"full"`).
    pub config: String,
    /// The bench results, in matrix order.
    pub benches: Vec<BenchRecord>,
}

impl BenchReport {
    /// A report for this build, stamped with the current commit.
    pub fn new(config: &str, benches: Vec<BenchRecord>) -> BenchReport {
        BenchReport {
            schema_version: BENCH_SCHEMA_VERSION,
            commit: current_commit(),
            config: config.to_string(),
            benches,
        }
    }

    /// Serialize to the on-disk document shape.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::num(self.schema_version as f64)),
            ("commit", Json::str(self.commit.clone())),
            ("config", Json::str(self.config.clone())),
            (
                "benches",
                Json::Arr(
                    self.benches
                        .iter()
                        .map(|b| {
                            Json::obj(vec![
                                ("name", Json::str(b.name.clone())),
                                ("unit", Json::str(b.unit.clone())),
                                ("value", Json::num(b.value)),
                                ("p50", Json::num(b.p50)),
                                ("p99", Json::num(b.p99)),
                                ("samples", Json::num(b.samples as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parse and validate a bench document. Rejects unknown
    /// `schema_version`s, empty or duplicate bench lists, and
    /// non-finite statistics (the JSON writer turns NaN into `null`, so
    /// a NaN upstream surfaces here as a non-numeric field).
    pub fn from_json(doc: &Json) -> Result<BenchReport, String> {
        let version = doc
            .get("schema_version")
            .and_then(Json::as_f64)
            .ok_or("missing schema_version")?;
        if version != BENCH_SCHEMA_VERSION as f64 {
            return Err(format!(
                "unknown schema_version {version} (this build reads {BENCH_SCHEMA_VERSION})"
            ));
        }
        let commit = doc
            .get("commit")
            .and_then(Json::as_str_val)
            .ok_or("missing commit")?
            .to_string();
        let config = doc
            .get("config")
            .and_then(Json::as_str_val)
            .ok_or("missing config")?
            .to_string();
        let entries = doc
            .get("benches")
            .and_then(Json::as_arr)
            .ok_or("missing benches array")?;
        if entries.is_empty() {
            return Err("empty bench list".to_string());
        }
        let mut benches = Vec::with_capacity(entries.len());
        for entry in entries {
            let name = entry
                .get("name")
                .and_then(Json::as_str_val)
                .ok_or("bench missing name")?
                .to_string();
            let field = |key: &str| -> Result<f64, String> {
                let v = entry
                    .get(key)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("bench {name}: missing or non-numeric {key}"))?;
                if !v.is_finite() {
                    return Err(format!("bench {name}: non-finite {key}"));
                }
                Ok(v)
            };
            if benches.iter().any(|b: &BenchRecord| b.name == name) {
                return Err(format!("duplicate bench name {name}"));
            }
            let samples = field("samples")?;
            if samples < 1.0 {
                return Err(format!("bench {name}: no samples"));
            }
            benches.push(BenchRecord {
                unit: entry
                    .get("unit")
                    .and_then(Json::as_str_val)
                    .ok_or_else(|| format!("bench {name}: missing unit"))?
                    .to_string(),
                value: field("value")?,
                p50: field("p50")?,
                p99: field("p99")?,
                samples: samples as usize,
                name,
            });
        }
        Ok(BenchReport {
            schema_version: version as u64,
            commit,
            config,
            benches,
        })
    }

    /// Load and validate a report from disk.
    pub fn load(path: &std::path::Path) -> Result<BenchReport, String> {
        let body = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let doc = Json::parse(&body).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::from_json(&doc).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Write the pretty-printed document.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().to_string_pretty())
    }
}

/// Validate an already-parsed document as a bench report.
pub fn check_bench_doc(doc: &Json) -> Result<(), String> {
    BenchReport::from_json(doc).map(|_| ())
}

/// Whether this is a bench document at all (any `schema_version`): used
/// by `roads-inspect check` to route between figure and bench schemas.
pub fn is_bench_doc(doc: &Json) -> bool {
    doc.get("benches").is_some()
}

/// Regression direction: throughput units improve upward, everything
/// else (time, bytes) improves downward.
pub fn higher_is_better(unit: &str) -> bool {
    unit.contains("qps") || unit.ends_with("/s")
}

/// One bench compared across two reports.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDiffRow {
    /// Bench name.
    pub name: String,
    /// Unit (taken from the new report).
    pub unit: String,
    /// Old headline value.
    pub old: f64,
    /// New headline value.
    pub new: f64,
    /// Relative change in percent (positive = value grew).
    pub delta_pct: f64,
    /// Whether the change crosses the failure threshold in the unit's
    /// bad direction.
    pub regressed: bool,
}

/// The comparison behind `roads-inspect bench-diff`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDiff {
    /// Per-bench rows, in the old report's order.
    pub rows: Vec<BenchDiffRow>,
    /// Benches only the old report has (treated as a failure: a bench
    /// silently disappearing must not pass CI).
    pub only_old: Vec<String>,
    /// Benches only the new report has (informational).
    pub only_new: Vec<String>,
    /// The threshold the rows were judged against, percent.
    pub fail_over_pct: f64,
}

impl BenchDiff {
    /// Number of failing rows (regressions plus vanished benches).
    pub fn regressions(&self) -> usize {
        self.rows.iter().filter(|r| r.regressed).count() + self.only_old.len()
    }
}

impl std::fmt::Display for BenchDiff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for r in &self.rows {
            writeln!(
                f,
                "  {:<24} {:>12.3} -> {:>12.3} {:<4} ({:+.1}%){}",
                r.name,
                r.old,
                r.new,
                r.unit,
                r.delta_pct,
                if r.regressed { "  <-- REGRESSION" } else { "" },
            )?;
        }
        for name in &self.only_old {
            writeln!(f, "  {name:<24} MISSING from new report  <-- REGRESSION")?;
        }
        for name in &self.only_new {
            writeln!(f, "  {name:<24} new bench (no baseline)")?;
        }
        let n = self.regressions();
        if n > 0 {
            writeln!(f, "{n} regression(s) beyond {:.0}%", self.fail_over_pct)
        } else {
            writeln!(f, "no regressions beyond {:.0}%", self.fail_over_pct)
        }
    }
}

/// Compare two reports: a bench regresses when its headline value moves
/// more than `fail_over_pct` percent in its unit's bad direction.
pub fn diff(old: &BenchReport, new: &BenchReport, fail_over_pct: f64) -> BenchDiff {
    let mut rows = Vec::new();
    let mut only_old = Vec::new();
    for o in &old.benches {
        let Some(n) = new.benches.iter().find(|b| b.name == o.name) else {
            only_old.push(o.name.clone());
            continue;
        };
        let delta_pct = if o.value != 0.0 {
            (n.value - o.value) / o.value.abs() * 100.0
        } else {
            0.0
        };
        let regressed = if higher_is_better(&n.unit) {
            delta_pct < -fail_over_pct
        } else {
            delta_pct > fail_over_pct
        };
        rows.push(BenchDiffRow {
            name: o.name.clone(),
            unit: n.unit.clone(),
            old: o.value,
            new: n.value,
            delta_pct,
            regressed,
        });
    }
    let only_new = new
        .benches
        .iter()
        .filter(|b| !old.benches.iter().any(|o| o.name == b.name))
        .map(|b| b.name.clone())
        .collect();
    BenchDiff {
        rows,
        only_old,
        only_new,
        fail_over_pct,
    }
}

/// `git rev-parse --short HEAD`, or `"unknown"` outside a checkout.
pub fn current_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// One-line run digest every figure binary prints at exit: total
/// queries driven through any plane (`*.queries` counters), retries,
/// and the p99 query latency (simulation plane first, live runtime
/// plane as fallback).
pub fn metrics_digest(snap: &MetricsSnapshot) -> String {
    let queries: u64 = snap
        .counters
        .iter()
        .filter(|(k, _)| k.ends_with(".queries") && !k.ends_with(".incomplete_queries"))
        .map(|(_, &v)| v)
        .sum();
    let retries: u64 = snap
        .counters
        .iter()
        .filter(|(k, _)| k.ends_with(".retries"))
        .map(|(_, &v)| v)
        .sum();
    let p99 = snap
        .histograms
        .get("roads.query_latency_ms")
        .or_else(|| snap.histograms.get("runtime.query_response_ms"))
        .map(|h| format!("{:.1}", h.p99))
        .unwrap_or_else(|| "-".to_string());
    format!("[metrics] queries={queries} retries={retries} p99_query_ms={p99}")
}

/// Print the [`metrics_digest`] line to **stderr**. Every figure binary
/// exits through this so its stdout stays machine-pipeable (figure series
/// and tables only); the digest is operator chatter, like progress
/// output.
pub fn print_metrics_digest(snap: &MetricsSnapshot) {
    eprintln!("{}", metrics_digest(snap));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(pairs: &[(&str, &str, f64)]) -> BenchReport {
        BenchReport {
            schema_version: BENCH_SCHEMA_VERSION,
            commit: "abc1234".to_string(),
            config: "smoke".to_string(),
            benches: pairs
                .iter()
                .map(|(name, unit, value)| BenchRecord {
                    name: name.to_string(),
                    unit: unit.to_string(),
                    value: *value,
                    p50: *value,
                    p99: *value * 1.2,
                    samples: 5,
                })
                .collect(),
        }
    }

    #[test]
    fn record_aggregates_samples() {
        let r = BenchRecord::from_samples("b", "ms", &[4.0, 1.0, 2.0, 3.0, 100.0]);
        assert_eq!(r.value, 22.0);
        assert_eq!(r.p50, 3.0);
        assert_eq!(r.p99, 100.0);
        assert_eq!(r.samples, 5);
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = report(&[("build_1t", "ms", 120.5), ("qps_overlay", "qps", 850.0)]);
        let doc = r.to_json();
        assert_eq!(BenchReport::from_json(&doc), Ok(r.clone()));
        // And through the actual text serialization.
        let parsed = Json::parse(&doc.to_string_pretty()).unwrap();
        assert_eq!(BenchReport::from_json(&parsed), Ok(r));
    }

    #[test]
    fn validator_rejects_bad_documents() {
        let good = report(&[("b", "ms", 1.0)]).to_json();
        assert!(check_bench_doc(&good).is_ok());

        let mut wrong_version = report(&[("b", "ms", 1.0)]);
        wrong_version.schema_version = 99;
        let err = check_bench_doc(&wrong_version.to_json()).unwrap_err();
        assert!(err.contains("unknown schema_version 99"), "{err}");

        let empty = BenchReport::new("smoke", vec![]).to_json();
        assert!(check_bench_doc(&empty).unwrap_err().contains("empty"));

        // NaN serializes as null and must be rejected on read.
        let mut nan = report(&[("b", "ms", 1.0)]);
        nan.benches[0].p99 = f64::NAN;
        let reparsed = Json::parse(&nan.to_json().to_string_pretty()).unwrap();
        let err = check_bench_doc(&reparsed).unwrap_err();
        assert!(err.contains("non-numeric p99"), "{err}");

        let dup = report(&[("b", "ms", 1.0), ("b", "ms", 2.0)]);
        assert!(check_bench_doc(&dup.to_json())
            .unwrap_err()
            .contains("duplicate"));

        assert!(check_bench_doc(&Json::obj(vec![("figure", Json::str("fig3"))])).is_err());
    }

    #[test]
    fn direction_follows_unit() {
        assert!(higher_is_better("qps"));
        assert!(higher_is_better("records/s"));
        assert!(!higher_is_better("ms"));
        assert!(!higher_is_better("bytes"));
    }

    /// The fixture pair: a slower build and a lower-throughput query
    /// plane must both flag, improvements and small wobbles must not.
    #[test]
    fn diff_flags_regressions_in_the_units_bad_direction() {
        let old = report(&[
            ("build_1t", "ms", 100.0),
            ("qps_overlay", "qps", 800.0),
            ("update_round", "ms", 50.0),
            ("gone", "ms", 1.0),
        ]);
        let new = report(&[
            ("build_1t", "ms", 130.0),     // +30% latency: regression
            ("qps_overlay", "qps", 500.0), // -37.5% throughput: regression
            ("update_round", "ms", 52.0),  // +4%: within threshold
            ("brand_new", "ms", 9.0),
        ]);
        let d = diff(&old, &new, 10.0);
        assert_eq!(d.regressions(), 3, "two moved benches + one vanished:\n{d}");
        assert!(
            d.rows
                .iter()
                .find(|r| r.name == "build_1t")
                .unwrap()
                .regressed
        );
        assert!(
            d.rows
                .iter()
                .find(|r| r.name == "qps_overlay")
                .unwrap()
                .regressed
        );
        assert!(
            !d.rows
                .iter()
                .find(|r| r.name == "update_round")
                .unwrap()
                .regressed
        );
        assert_eq!(d.only_old, vec!["gone".to_string()]);
        assert_eq!(d.only_new, vec!["brand_new".to_string()]);
        let text = d.to_string();
        assert!(text.contains("REGRESSION"));
        assert!(text.contains("MISSING"));

        // A faster build and higher throughput are improvements.
        let improved = report(&[
            ("build_1t", "ms", 60.0),
            ("qps_overlay", "qps", 1600.0),
            ("update_round", "ms", 50.0),
            ("gone", "ms", 1.0),
        ]);
        assert_eq!(diff(&old, &improved, 10.0).regressions(), 0);

        // A wider threshold forgives the same movements.
        assert_eq!(
            diff(&old, &new, 50.0).regressions(),
            1,
            "only the vanished bench"
        );
    }

    #[test]
    fn digest_sums_queries_and_picks_a_latency_plane() {
        use roads_telemetry::Registry;
        let reg = Registry::new();
        reg.counter("roads.queries").add(10);
        reg.counter("sword.queries").add(10);
        reg.counter("runtime.retries").add(3);
        reg.counter("runtime.incomplete_queries").add(2); // not a query count
        for v in [1.0, 2.0, 50.0] {
            reg.histogram("roads.query_latency_ms").record(v);
        }
        let line = metrics_digest(&reg.snapshot());
        assert!(
            line.starts_with("[metrics] queries=20 retries=3 p99_query_ms="),
            "{line}"
        );
        assert!(!line.ends_with("p99_query_ms=-"), "{line}");
        // No histograms at all: the latency slot degrades to '-'.
        let bare = Registry::new();
        bare.counter("runtime.queries").add(1);
        assert_eq!(
            metrics_digest(&bare.snapshot()),
            "[metrics] queries=1 retries=0 p99_query_ms=-"
        );
    }
}
