//! Offline views of the query-planner plane: the `PLAN.json` artifact
//! written by `bench_suite` alongside `BENCH_ROADS.json`.
//!
//! The artifact captures what the replica-aware planner and the TTL'd
//! result cache did over the suite's live-cluster workload: how many
//! queries were planned, how many ancestor probes the replicated local
//! summaries pruned, total servers contacted under greedy vs planned
//! dispatch (same workload, same data — recall is asserted identical by
//! the suite before the artifact is written), and the cache
//! hit/miss/invalidation counts mirrored from the `roads.cache.*`
//! OpenMetrics families.
//!
//! Two consumers share this module:
//!
//! * `roads-inspect plan <artifact>` — the summary table
//!   ([`render_plan_table`]).
//! * `roads-inspect check` — strict schema validation via
//!   [`PlanReport::from_json`], including the planner's core invariant
//!   (planned contacts never exceed greedy contacts) so a regression
//!   fails the artifact check, not just a bench diff. [`is_plan_doc`]
//!   routes `check` between this schema and the other artifact schemas.

use roads_telemetry::Json;

/// Current `PLAN.json` schema version.
pub const PLAN_SCHEMA_VERSION: u64 = 1;

/// The planner/cache summary of one bench-suite run.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanReport {
    /// Document schema version ([`PLAN_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Matrix configuration the run used (`"smoke"` or `"full"`).
    pub config: String,
    /// Distinct workload queries in the comparison pass.
    pub queries: u64,
    /// Queries dispatched through the set-cover planner
    /// (`roads.planner.planned_queries`).
    pub planned_queries: u64,
    /// Ancestor probes pruned by replicated local summaries
    /// (`roads.planner.pruned_probes`).
    pub pruned_probes: u64,
    /// Total servers contacted by greedy expansion over the workload.
    pub greedy_contacts: u64,
    /// Total servers contacted under planned dispatch (cold cache).
    pub planned_contacts: u64,
    /// `roads.cache.hits` at the end of the run.
    pub cache_hits: u64,
    /// `roads.cache.misses` at the end of the run.
    pub cache_misses: u64,
    /// `roads.cache.invalidations` at the end of the run.
    pub cache_invalidations: u64,
}

impl PlanReport {
    /// Fraction of cache lookups answered from cache.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = (self.cache_hits + self.cache_misses) as f64;
        if total == 0.0 {
            0.0
        } else {
            self.cache_hits as f64 / total
        }
    }

    /// Servers-contacted reduction vs greedy (0 when greedy contacted
    /// nothing).
    pub fn contact_reduction(&self) -> f64 {
        if self.greedy_contacts == 0 {
            0.0
        } else {
            1.0 - self.planned_contacts as f64 / self.greedy_contacts as f64
        }
    }

    /// Serialize to the on-disk document shape.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("plan_schema_version", Json::num(self.schema_version as f64)),
            ("config", Json::str(self.config.clone())),
            ("queries", Json::num(self.queries as f64)),
            ("planned_queries", Json::num(self.planned_queries as f64)),
            ("pruned_probes", Json::num(self.pruned_probes as f64)),
            ("greedy_contacts", Json::num(self.greedy_contacts as f64)),
            ("planned_contacts", Json::num(self.planned_contacts as f64)),
            ("cache_hits", Json::num(self.cache_hits as f64)),
            ("cache_misses", Json::num(self.cache_misses as f64)),
            (
                "cache_invalidations",
                Json::num(self.cache_invalidations as f64),
            ),
            ("cache_hit_rate", Json::num(self.cache_hit_rate())),
        ])
    }

    /// Parse and validate a plan document. Beyond shape, this enforces
    /// the planner's invariants: planned contacts never exceed greedy
    /// contacts, counts are non-negative integers, and the recorded hit
    /// rate is consistent with the counts.
    pub fn from_json(doc: &Json) -> Result<PlanReport, String> {
        let version = doc
            .get("plan_schema_version")
            .and_then(Json::as_f64)
            .ok_or("missing plan_schema_version marker")?;
        if version != PLAN_SCHEMA_VERSION as f64 {
            return Err(format!(
                "unknown plan_schema_version {version} (this build reads {PLAN_SCHEMA_VERSION})"
            ));
        }
        let config = doc
            .get("config")
            .and_then(Json::as_str_val)
            .ok_or("missing config")?
            .to_string();
        let count = |key: &str| -> Result<u64, String> {
            let v = doc
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing or non-numeric {key}"))?;
            if !v.is_finite() || v < 0.0 || v.fract() != 0.0 {
                return Err(format!("{key} must be a non-negative integer, got {v}"));
            }
            Ok(v as u64)
        };
        let report = PlanReport {
            schema_version: version as u64,
            config,
            queries: count("queries")?,
            planned_queries: count("planned_queries")?,
            pruned_probes: count("pruned_probes")?,
            greedy_contacts: count("greedy_contacts")?,
            planned_contacts: count("planned_contacts")?,
            cache_hits: count("cache_hits")?,
            cache_misses: count("cache_misses")?,
            cache_invalidations: count("cache_invalidations")?,
        };
        if report.queries == 0 {
            return Err("no queries in the comparison pass".to_string());
        }
        if report.planned_contacts > report.greedy_contacts {
            return Err(format!(
                "planned dispatch contacted more servers than greedy ({} > {}) — \
                 the planner must never widen a query",
                report.planned_contacts, report.greedy_contacts
            ));
        }
        let rate = doc
            .get("cache_hit_rate")
            .and_then(Json::as_f64)
            .ok_or("missing cache_hit_rate")?;
        if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
            return Err(format!("cache_hit_rate out of range: {rate}"));
        }
        if (rate - report.cache_hit_rate()).abs() > 1e-6 {
            return Err(format!(
                "cache_hit_rate {rate} inconsistent with hits/misses ({}/{})",
                report.cache_hits, report.cache_misses
            ));
        }
        Ok(report)
    }

    /// Load and validate a report from disk.
    pub fn load(path: &std::path::Path) -> Result<PlanReport, String> {
        let body = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let doc = Json::parse(&body).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::from_json(&doc).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Write the pretty-printed document.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().to_string_pretty())
    }
}

/// Whether this is a plan document at all (any version): used by
/// `roads-inspect check` to route between artifact schemas.
pub fn is_plan_doc(doc: &Json) -> bool {
    doc.get("plan_schema_version").is_some()
}

/// The planner/cache summary table.
pub fn render_plan_table(r: &PlanReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "plan: {} queries ({} planned), config {}\n",
        r.queries, r.planned_queries, r.config
    ));
    out.push_str(&format!(
        "{:>24} {:>10}\n{:>24} {:>10}\n{:>24} {:>10} ({:.1}% fewer than greedy)\n{:>24} {:>10}\n",
        "greedy contacts",
        r.greedy_contacts,
        "pruned ancestor probes",
        r.pruned_probes,
        "planned contacts",
        r.planned_contacts,
        100.0 * r.contact_reduction(),
        "cache invalidations",
        r.cache_invalidations,
    ));
    out.push_str(&format!(
        "cache: {} hits / {} misses (hit rate {:.1}%)\n",
        r.cache_hits,
        r.cache_misses,
        100.0 * r.cache_hit_rate(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> PlanReport {
        PlanReport {
            schema_version: PLAN_SCHEMA_VERSION,
            config: "smoke".to_string(),
            queries: 32,
            planned_queries: 96,
            pruned_probes: 40,
            greedy_contacts: 480,
            planned_contacts: 300,
            cache_hits: 64,
            cache_misses: 32,
            cache_invalidations: 12,
        }
    }

    #[test]
    fn artifact_round_trips() {
        let r = report();
        let doc = Json::parse(&r.to_json().to_string_pretty()).unwrap();
        assert!(is_plan_doc(&doc));
        let parsed = PlanReport::from_json(&doc).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn table_shows_reduction_and_hit_rate() {
        let text = render_plan_table(&report());
        assert!(text.contains("32 queries (96 planned)"), "{text}");
        assert!(text.contains("37.5% fewer than greedy"), "{text}");
        assert!(text.contains("hit rate 66.7%"), "{text}");
        assert!(text.contains("pruned ancestor probes"), "{text}");
    }

    #[test]
    fn check_rejects_widened_plans() {
        let mut r = report();
        r.planned_contacts = r.greedy_contacts + 1;
        let doc = Json::parse(&r.to_json().to_string_pretty()).unwrap();
        let err = PlanReport::from_json(&doc).unwrap_err();
        assert!(err.contains("never widen"), "{err}");
    }

    #[test]
    fn check_rejects_corrupt_documents() {
        let other = Json::obj(vec![("benches", Json::num(1.0))]);
        assert!(!is_plan_doc(&other));
        assert!(PlanReport::from_json(&other)
            .unwrap_err()
            .contains("marker"));

        let truncated =
            Json::parse(r#"{"plan_schema_version":1,"config":"smoke","queries":4}"#).unwrap();
        assert!(PlanReport::from_json(&truncated)
            .unwrap_err()
            .contains("planned_queries"));

        // An inconsistent hit rate is a corrupt artifact, not a rounding
        // detail: the renderer would otherwise show numbers that do not
        // add up.
        let mut doc = report().to_json();
        if let Json::Obj(pairs) = &mut doc {
            for (k, v) in pairs.iter_mut() {
                if k == "cache_hit_rate" {
                    *v = Json::num(0.01);
                }
            }
        }
        assert!(PlanReport::from_json(&doc)
            .unwrap_err()
            .contains("inconsistent"));

        let mut neg = report();
        neg.queries = 0;
        let doc = Json::parse(&neg.to_json().to_string_pretty()).unwrap();
        assert!(PlanReport::from_json(&doc).unwrap_err().contains("queries"));
    }
}
