//! Offline views of the watchdog incident plane: parse and render
//! `INCIDENTS.json` artifacts written by a `roads_runtime` [`Watchdog`].
//!
//! Two consumers share this module:
//!
//! * `roads-inspect incidents <artifact>` — the incident timeline
//!   ([`render_incident_table`]): one block per incident with its firing
//!   window, the detectors involved, the matched fault (and detection
//!   latency from onset), the ranked suspected-cause list, and any
//!   correlated tail-sampled slow queries.
//! * `roads-inspect check` — strict schema validation via
//!   [`IncidentReport::from_json`]: a truncated or hand-edited artifact
//!   fails with a message naming the offending entry instead of
//!   producing a half-empty view. [`is_incidents_doc`] routes `check`
//!   between this schema and the other artifact schemas.
//!
//! [`Watchdog`]: roads_runtime::Watchdog

pub use roads_runtime::{is_incidents_doc, CauseKind, Incident, IncidentReport};

/// The incident timeline: a summary header plus one block per incident.
pub fn render_incident_table(report: &IncidentReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "watchdog: {} ticks @ {:.0} ms, {} firings, {} incidents ({} matched, {} false alarms)\n",
        report.ticks,
        report.interval_ms,
        report.firings,
        report.rows.len(),
        report.matched(),
        report.false_alarms,
    ));
    match report.max_detection_latency_ms() {
        Some(worst) => out.push_str(&format!("worst detection latency {worst:.0} ms\n")),
        None => out.push_str("no fault detections\n"),
    }
    for inc in &report.rows {
        out.push_str(&format!(
            "#{:<3} [{:>8.0} .. {:>8.0} ms]  {} firing{}  {}{}\n",
            inc.id,
            inc.opened_ms,
            inc.last_ms,
            inc.firings,
            if inc.firings == 1 { "" } else { "s" },
            inc.detectors.join(", "),
            if inc.false_alarm { "  FALSE ALARM" } else { "" },
        ));
        if let Some(m) = inc.matched {
            match inc.detection_latency_ms {
                Some(lat) => out.push_str(&format!(
                    "     matched: {} of server {} at {:.0} ms (detected +{lat:.0} ms)\n",
                    m.kind.as_str(),
                    m.server,
                    m.onset_ms,
                )),
                None => out.push_str(&format!(
                    "     matched: {} of server {} at {:.0} ms (repeat detection)\n",
                    m.kind.as_str(),
                    m.server,
                    m.onset_ms,
                )),
            }
        }
        for (rank, c) in inc.causes.iter().enumerate() {
            let server = c
                .server
                .map_or_else(|| "        ".to_string(), |s| format!("server {s:<2}"));
            out.push_str(&format!(
                "     cause {:<2} {:<16} {server} score {:.2}  {}\n",
                rank + 1,
                c.kind.as_str(),
                c.score,
                c.detail,
            ));
        }
        if !inc.slow_queries.is_empty() {
            let ids: Vec<String> = inc.slow_queries.iter().map(u64::to_string).collect();
            out.push_str(&format!("     slow queries: {}\n", ids.join(", ")));
        }
    }
    if report.rows.is_empty() {
        out.push_str("no incidents\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use roads_runtime::{FaultKind, MatchedFault, SuspectedCause};
    use roads_telemetry::Json;

    fn report() -> IncidentReport {
        IncidentReport {
            ticks: 40,
            interval_ms: 100.0,
            firings: 6,
            false_alarms: 1,
            rows: vec![
                Incident {
                    id: 1,
                    opened_ms: 250.0,
                    last_ms: 610.0,
                    firings: 5,
                    detectors: vec!["server-down".into(), "latency-spike".into()],
                    series: vec!["runtime.server.alive{server=\"2\"}".into()],
                    causes: vec![
                        SuspectedCause {
                            kind: CauseKind::FaultEvent,
                            server: Some(2),
                            score: 0.9,
                            detail: "kill of server 2 110 ms before detection".into(),
                        },
                        SuspectedCause {
                            kind: CauseKind::QueueDepth,
                            server: Some(2),
                            score: 0.88,
                            detail: "queue depth 7 at server 2".into(),
                        },
                    ],
                    matched: Some(MatchedFault {
                        kind: FaultKind::Kill,
                        server: 2,
                        onset_ms: 140.0,
                    }),
                    detection_latency_ms: Some(110.0),
                    false_alarm: false,
                    slow_queries: vec![7, 9],
                },
                Incident {
                    id: 2,
                    opened_ms: 900.0,
                    last_ms: 900.0,
                    firings: 1,
                    detectors: vec!["slo-burn".into()],
                    series: vec!["watchdog.slo_burn".into()],
                    causes: Vec::new(),
                    matched: None,
                    detection_latency_ms: None,
                    false_alarm: true,
                    slow_queries: Vec::new(),
                },
            ],
        }
    }

    #[test]
    fn table_lists_every_incident_with_verdicts() {
        let text = render_incident_table(&report());
        assert!(
            text.contains("40 ticks @ 100 ms, 6 firings, 2 incidents (1 matched, 1 false alarms)"),
            "{text}"
        );
        assert!(text.contains("worst detection latency 110 ms"), "{text}");
        assert!(text.contains("server-down, latency-spike"), "{text}");
        assert!(
            text.contains("matched: kill of server 2 at 140 ms (detected +110 ms)"),
            "{text}"
        );
        assert!(text.contains("fault-event"), "{text}");
        assert!(text.contains("queue-depth"), "{text}");
        assert!(text.contains("slow queries: 7, 9"), "{text}");
        assert!(text.contains("FALSE ALARM"), "{text}");
    }

    #[test]
    fn empty_report_says_so() {
        let r = IncidentReport {
            ticks: 10,
            interval_ms: 100.0,
            firings: 0,
            false_alarms: 0,
            rows: Vec::new(),
        };
        let text = render_incident_table(&r);
        assert!(text.contains("no incidents"), "{text}");
        assert!(text.contains("no fault detections"), "{text}");
    }

    #[test]
    fn artifact_round_trips_through_the_renderer_path() {
        let r = report();
        let doc = Json::parse(&r.to_json().to_string_pretty()).unwrap();
        assert!(is_incidents_doc(&doc));
        let parsed = IncidentReport::from_json(&doc).unwrap();
        assert_eq!(parsed, r);
        assert_eq!(render_incident_table(&parsed), render_incident_table(&r));
    }

    #[test]
    fn parser_rejects_corrupt_documents() {
        // Not an incidents document at all.
        let other = Json::obj(vec![("audit", Json::num(1.0))]);
        assert!(!is_incidents_doc(&other));
        assert!(IncidentReport::from_json(&other)
            .unwrap_err()
            .contains("marker"));

        // Truncated: the marker survived but the rows are gone.
        let truncated = Json::parse(r#"{"incidents":1,"ticks":3}"#).unwrap();
        let err = IncidentReport::from_json(&truncated).unwrap_err();
        assert!(err.contains("rows"), "{err}");

        // A row missing a field names the row and the field.
        let bad_row = Json::parse(
            r#"{"incidents":1,"ticks":2,"interval_ms":100,"firings":1,"false_alarms":0,
                "rows":[{"id":1,"opened_ms":5}]}"#,
        )
        .unwrap();
        let err = IncidentReport::from_json(&bad_row).unwrap_err();
        assert!(err.contains("rows[0]"), "{err}");

        // An unknown fault kind in `matched` fails cleanly.
        let bad_kind = Json::parse(
            r#"{"incidents":1,"ticks":2,"interval_ms":100,"firings":1,"false_alarms":0,
                "rows":[{"id":1,"opened_ms":5,"last_ms":6,"firings":1,
                         "detectors":["d"],"series":["s"],"causes":[],
                         "matched":{"kind":"gremlins","server":0,"onset_ms":1},
                         "detection_latency_ms":null,"false_alarm":false,
                         "slow_queries":[]}]}"#,
        )
        .unwrap();
        let err = IncidentReport::from_json(&bad_kind).unwrap_err();
        assert!(err.contains("kind"), "{err}");
    }
}
