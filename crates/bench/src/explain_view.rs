//! Offline views of the query explain plane: parse and render
//! `SLOW_QUERIES.json` artifacts written by a [`TailSampler`].
//!
//! Three consumers share this module:
//!
//! * `roads-inspect explain <artifact>` — hop-by-hop waterfall plus the
//!   decision tree of each retained query ([`render_waterfall`],
//!   [`render_decision_tree`]).
//! * `roads-inspect slow <artifact>` — the ranked tail table with p99
//!   latency attribution ([`render_slow_table`]).
//! * `roads-inspect check` — strict schema validation
//!   ([`parse_slow_doc`]): every retained entry must carry a parseable
//!   reason and explain record, and retained flight-recorder events must
//!   form a valid span tree for the explain's trace.
//!
//! [`TailSampler`]: roads_telemetry::TailSampler

use roads_telemetry::{
    event_from_json, span_tree_root, Event, ExplainHop, HopOutcome, Json, QueryExplain,
    RetainReason, TraceId,
};

/// One retained entry of a `SLOW_QUERIES.json` document.
#[derive(Debug, Clone)]
pub struct RetainedEntry {
    /// Why the sampler kept it.
    pub reason: RetainReason,
    /// The provenance record.
    pub explain: QueryExplain,
    /// Flight-recorder events of the same trace (may be empty).
    pub events: Vec<Event>,
}

/// A parsed `SLOW_QUERIES.json` document.
#[derive(Debug, Clone)]
pub struct SlowDoc {
    /// Retention threshold at write time (ms).
    pub threshold_ms: f64,
    /// Queries the sampler observed in total.
    pub observed: u64,
    /// Queries folded into the histogram but not retained.
    pub dropped: u64,
    /// Retained tail queries, ranked slowest first.
    pub retained: Vec<RetainedEntry>,
    /// Histogram exemplars: `(bucket_ms, trace_id)` pairs.
    pub exemplars: Vec<(f64, u64)>,
}

/// Whether the document carries the `SLOW_QUERIES.json` marker key:
/// used by `roads-inspect check` to route between schemas.
pub fn is_slow_doc(doc: &Json) -> bool {
    doc.get("slow_queries").is_some()
}

/// Parse and validate a `SLOW_QUERIES.json` document. Strict: a
/// truncated or hand-edited artifact fails with a message naming the
/// offending entry instead of producing a half-empty view.
pub fn parse_slow_doc(doc: &Json) -> Result<SlowDoc, String> {
    let num = |key: &str| -> Result<f64, String> {
        let v = doc
            .get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing or non-numeric {key}"))?;
        if !v.is_finite() {
            return Err(format!("non-finite {key}"));
        }
        Ok(v)
    };
    let threshold_ms = num("threshold_ms")?;
    let observed = num("observed")? as u64;
    let dropped = num("dropped")? as u64;
    let entries = doc
        .get("retained")
        .and_then(Json::as_arr)
        .ok_or("missing retained array")?;
    let mut retained = Vec::with_capacity(entries.len());
    for (i, entry) in entries.iter().enumerate() {
        let reason = entry
            .get("reason")
            .and_then(Json::as_str_val)
            .and_then(RetainReason::parse)
            .ok_or_else(|| format!("retained[{i}]: missing or unknown reason"))?;
        let explain = entry
            .get("explain")
            .ok_or_else(|| format!("retained[{i}]: missing explain record"))
            .and_then(|e| {
                QueryExplain::from_json(e).map_err(|why| format!("retained[{i}]: {why}"))
            })?;
        let events = match entry.get("events").and_then(Json::as_arr) {
            Some(evs) => evs
                .iter()
                .map(event_from_json)
                .collect::<Result<Vec<Event>, String>>()
                .map_err(|why| format!("retained[{i}]: {why}"))?,
            None => Vec::new(),
        };
        if !events.is_empty() {
            // The retained trace must reconstruct: one causal span tree
            // for the query the explain record describes.
            let trace = TraceId(explain.trace_id);
            span_tree_root(&events, trace)
                .map_err(|why| format!("retained[{i}]: trace {}: {why}", explain.trace_id))?;
        }
        retained.push(RetainedEntry {
            reason,
            explain,
            events,
        });
    }
    let exemplars = match doc.get("exemplars").and_then(Json::as_arr) {
        Some(arr) => arr
            .iter()
            .enumerate()
            .map(|(i, e)| {
                let bucket = e
                    .get("bucket_ms")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("exemplars[{i}]: missing bucket_ms"))?;
                let trace = e
                    .get("trace_id")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("exemplars[{i}]: missing trace_id"))?;
                Ok((bucket, trace as u64))
            })
            .collect::<Result<Vec<_>, String>>()?,
        None => Vec::new(),
    };
    Ok(SlowDoc {
        threshold_ms,
        observed,
        dropped,
        retained,
        exemplars,
    })
}

fn outcome_label(h: &ExplainHop) -> &'static str {
    match h.outcome {
        HopOutcome::Replied => "replied",
        HopOutcome::TimedOut => "TIMEOUT",
        HopOutcome::MailboxDown => "DOWN",
        HopOutcome::Abandoned => "abandoned",
    }
}

fn summary_label(h: &ExplainHop) -> String {
    match h.summary {
        Some(kind) => {
            if h.false_positive {
                format!("{}(FP)", kind.as_str())
            } else {
                kind.as_str().to_string()
            }
        }
        None => "-".to_string(),
    }
}

/// The hop-by-hop waterfall: one row per hop in dispatch order, with its
/// decision, summary verdict, outcome, latency split, and a bar placing
/// the hop inside the query's total response window.
pub fn render_waterfall(ex: &QueryExplain) -> String {
    const BAR: usize = 32;
    let total_us = ex.response_us.max(1.0);
    let mut out = String::new();
    out.push_str(&format!(
        "query {} (trace {}) entry server-{}: {:.2} ms, {} records, {}{}\n",
        ex.query_id,
        ex.trace_id,
        ex.entry,
        ex.response_us / 1_000.0,
        ex.records,
        if ex.complete {
            "complete"
        } else {
            "INCOMPLETE"
        },
        if ex.deadline_hit {
            " (deadline hit)"
        } else {
            ""
        },
    ));
    let a = ex.attribution();
    out.push_str(&format!(
        "attribution: queue {:.2} ms, network {:.2} ms, compute {:.2} ms, \
         retry {:.2} ms, failover {:.2} ms\n",
        a.queue_us / 1_000.0,
        a.network_us / 1_000.0,
        a.compute_us / 1_000.0,
        a.retry_us / 1_000.0,
        a.failover_us / 1_000.0,
    ));
    out.push_str(&format!(
        "{:>4} {:<12} {:<16} {:<14} {:<9} {:>9} {:>9}  waterfall\n",
        "hop", "server", "decision", "summary", "outcome", "start", "dur"
    ));
    for (i, h) in ex.hops.iter().enumerate() {
        let start = ((h.at_us / total_us) * BAR as f64) as usize;
        let width = (((h.dur_us / total_us) * BAR as f64).ceil() as usize).max(1);
        let (start, width) = (start.min(BAR - 1), width.min(BAR));
        let mut bar: Vec<char> = vec!['.'; BAR];
        for c in bar.iter_mut().skip(start).take(width) {
            *c = '#';
        }
        out.push_str(&format!(
            "{:>4} {:<12} {:<16} {:<14} {:<9} {:>7.2}ms {:>7.2}ms  |{}|{}\n",
            i,
            format!("server-{}", h.server),
            h.decision.as_str(),
            summary_label(h),
            outcome_label(h),
            h.at_us / 1_000.0,
            h.dur_us / 1_000.0,
            bar.into_iter().collect::<String>(),
            match h.caused_by {
                Some(c) => format!(" <-{c}"),
                None => String::new(),
            },
        ));
    }
    out
}

/// The decision tree: hops nested under the hop that caused them, so the
/// render shows *why* each server was contacted (entry at the root,
/// summary descents under their redirecting parent, retries under the
/// timed-out attempt, failover stand-ins under the hop that died).
pub fn render_decision_tree(ex: &QueryExplain) -> String {
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); ex.hops.len()];
    let mut roots = Vec::new();
    for (i, h) in ex.hops.iter().enumerate() {
        match h.caused_by {
            Some(c) if c < ex.hops.len() => children[c].push(i),
            _ => roots.push(i),
        }
    }
    fn walk(
        out: &mut String,
        ex: &QueryExplain,
        children: &[Vec<usize>],
        idx: usize,
        prefix: &str,
        last: bool,
    ) {
        let h = &ex.hops[idx];
        let branch = if prefix.is_empty() {
            ""
        } else if last {
            "└─ "
        } else {
            "├─ "
        };
        out.push_str(&format!(
            "{prefix}{branch}#{idx} server-{} {} [{}] {}{:.2}ms, {} local\n",
            h.server,
            h.decision.as_str(),
            summary_label(h),
            match h.outcome {
                HopOutcome::Replied => "",
                HopOutcome::TimedOut => "TIMEOUT ",
                HopOutcome::MailboxDown => "DOWN ",
                HopOutcome::Abandoned => "abandoned ",
            },
            h.dur_us / 1_000.0,
            h.local_matches,
        ));
        let next = if prefix.is_empty() {
            String::new()
        } else {
            format!("{prefix}{}", if last { "   " } else { "│  " })
        };
        let kids = &children[idx];
        for (j, &k) in kids.iter().enumerate() {
            let p = if prefix.is_empty() { "  " } else { &next };
            walk(out, ex, children, k, p, j + 1 == kids.len());
        }
    }
    let mut out = String::new();
    for (j, &r) in roots.iter().enumerate() {
        walk(&mut out, ex, &children, r, "", j + 1 == roots.len());
    }
    out
}

/// The ranked tail table: one row per retained query (already ranked
/// slowest first by the sampler), with its retention reason, hop/retry
/// counts, and the percentage latency attribution.
pub fn render_slow_table(doc: &SlowDoc) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "tail reservoir: {} retained of {} observed ({} dropped), threshold {:.2} ms\n",
        doc.retained.len(),
        doc.observed,
        doc.dropped,
        doc.threshold_ms,
    ));
    out.push_str(&format!(
        "{:>6} {:<10} {:>10} {:>5} {:>7} {:>3} {:>7} {:>7} {:>7} {:>7} {:>8}\n",
        "query",
        "reason",
        "ms",
        "hops",
        "retries",
        "fp",
        "queue%",
        "net%",
        "comp%",
        "retry%",
        "failov%"
    ));
    for e in &doc.retained {
        let ex = &e.explain;
        let a = ex.attribution();
        let total = a.total_us().max(1.0);
        let pct = |v: f64| 100.0 * v / total;
        out.push_str(&format!(
            "{:>6} {:<10} {:>10.2} {:>5} {:>7} {:>3} {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>7.1}%\n",
            ex.query_id,
            e.reason.as_str(),
            ex.response_us / 1_000.0,
            ex.hops.len(),
            ex.retry_count(),
            ex.false_positive_count(),
            pct(a.queue_us),
            pct(a.network_us),
            pct(a.compute_us),
            pct(a.retry_us),
            pct(a.failover_us),
        ));
    }
    if !doc.exemplars.is_empty() {
        out.push_str(&format!(
            "exemplars: {} histogram buckets link to retained traces\n",
            doc.exemplars.len()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use roads_telemetry::{ExplainDecision, LatencySplit, SummaryKind, TailConfig, TailSampler};

    fn hop(
        server: u32,
        decision: ExplainDecision,
        outcome: HopOutcome,
        caused_by: Option<usize>,
    ) -> ExplainHop {
        ExplainHop {
            server,
            decision,
            summary: matches!(
                decision,
                ExplainDecision::SummaryDescent | ExplainDecision::OverlayShortcut
            )
            .then_some(SummaryKind::Histogram),
            false_positive: false,
            outcome,
            at_us: 100.0 * server as f64,
            dur_us: 500.0,
            caused_by,
            local_matches: 2,
            split: LatencySplit {
                queue_us: 10.0,
                network_us: 200.0,
                compute_us: 50.0,
                backoff_us: 0.0,
            },
        }
    }

    fn explain() -> QueryExplain {
        QueryExplain {
            query_id: 7,
            trace_id: 42,
            entry: 0,
            response_us: 900.0,
            complete: false,
            deadline_hit: false,
            records: 4,
            hops: vec![
                hop(0, ExplainDecision::Entry, HopOutcome::Replied, None),
                hop(
                    1,
                    ExplainDecision::SummaryDescent,
                    HopOutcome::Replied,
                    Some(0),
                ),
                hop(
                    2,
                    ExplainDecision::SummaryDescent,
                    HopOutcome::MailboxDown,
                    Some(0),
                ),
                hop(3, ExplainDecision::Failover, HopOutcome::Replied, Some(2)),
            ],
        }
    }

    #[test]
    fn waterfall_lists_every_hop_with_outcome() {
        let text = render_waterfall(&explain());
        assert!(text.contains("query 7 (trace 42)"), "{text}");
        assert!(text.contains("INCOMPLETE"), "{text}");
        assert!(text.contains("attribution:"), "{text}");
        for needle in ["entry", "summary-descent", "failover", "DOWN", "histogram"] {
            assert!(text.contains(needle), "missing {needle}:\n{text}");
        }
        assert_eq!(text.matches('|').count() % 2, 0, "bars open and close");
    }

    #[test]
    fn decision_tree_nests_by_cause() {
        let text = render_decision_tree(&explain());
        let entry_at = text.find("#0 server-0 entry").unwrap();
        let failover_at = text.find("#3 server-3 failover").unwrap();
        assert!(entry_at < failover_at, "entry renders before failover");
        // The failover hop nests under the dead descent hop, one level
        // deeper than the entry.
        let failover_line = text.lines().find(|l| l.contains("#3")).unwrap();
        assert!(
            failover_line.starts_with("  ") && failover_line.contains("└─"),
            "{text}"
        );
    }

    #[test]
    fn slow_doc_round_trips_through_the_sampler_report() {
        let s = TailSampler::new(TailConfig {
            capacity: 8,
            min_samples: 1_000_000,
            floor_ms: 0.0001,
        });
        s.observe(explain(), false, Vec::new());
        let doc = Json::parse(&s.report().to_string_pretty()).unwrap();
        assert!(is_slow_doc(&doc));
        let parsed = parse_slow_doc(&doc).unwrap();
        assert_eq!(parsed.observed, 1);
        assert_eq!(parsed.retained.len(), 1);
        assert_eq!(parsed.retained[0].explain.query_id, 7);
        assert_eq!(parsed.exemplars.len(), 1);
        let table = render_slow_table(&parsed);
        assert!(table.contains("incomplete"), "{table}");
        assert!(table.contains("queue%"), "{table}");
    }

    #[test]
    fn parser_rejects_corrupt_documents() {
        let missing = Json::obj(vec![("slow_queries", Json::num(1.0))]);
        assert!(parse_slow_doc(&missing)
            .unwrap_err()
            .contains("threshold_ms"));

        // A retained entry whose explain lost its hops.
        let bad = Json::parse(
            r#"{"slow_queries":1,"threshold_ms":1,"observed":1,"dropped":0,
                "retained":[{"reason":"slow","explain":{"query_id":1}}],"exemplars":[]}"#,
        )
        .unwrap();
        let err = parse_slow_doc(&bad).unwrap_err();
        assert!(err.contains("retained[0]"), "{err}");

        // An unknown retention reason.
        let bad_reason = Json::parse(
            r#"{"slow_queries":1,"threshold_ms":1,"observed":1,"dropped":0,
                "retained":[{"reason":"meh","explain":{}}],"exemplars":[]}"#,
        )
        .unwrap();
        assert!(parse_slow_doc(&bad_reason)
            .unwrap_err()
            .contains("unknown reason"));
    }

    #[test]
    fn parser_rejects_events_that_do_not_form_a_span_tree() {
        let s = TailSampler::new(TailConfig {
            capacity: 8,
            min_samples: 1_000_000,
            floor_ms: 0.0001,
        });
        // An orphan event: parent span 999 never appears in the trace.
        let orphan = Event {
            at_us: 0,
            dur_us: 10,
            node: 0,
            trace: roads_telemetry::TraceId(42),
            span: roads_telemetry::SpanId(1),
            parent: roads_telemetry::SpanId(999),
            kind: roads_telemetry::EventKind::QueryHop,
            detail: 0,
        };
        s.observe(explain(), false, vec![orphan]);
        let doc = Json::parse(&s.report().to_string_pretty()).unwrap();
        let err = parse_slow_doc(&doc).unwrap_err();
        assert!(err.contains("trace 42"), "{err}");
    }
}
