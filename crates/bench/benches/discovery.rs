//! Macro-level benchmarks: hierarchy construction, update rounds, and
//! query execution for ROADS and the SWORD baseline.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use roads_core::{
    execute_query, execute_query_recorded, record_query_outcome, update_round, HierarchyTree,
    RoadsConfig, RoadsNetwork, SearchScope, ServerId,
};
use roads_netsim::DelaySpace;
use roads_records::{OwnerId, QueryBuilder, QueryId, Record, RecordId, Schema, Value};
use roads_runtime::{
    AuditConfig, AuditMetrics, Auditor, RoadsCluster, RuntimeConfig, Watchdog, WatchdogConfig,
};
use roads_summary::SummaryConfig;
use roads_sword::SwordNetwork;
use roads_telemetry::{OpenMetricsSnapshot, Registry, Sampler, TailSampler};
use roads_workload::{
    default_schema, generate_node_records, generate_queries, QueryWorkloadConfig,
    RecordWorkloadConfig,
};
use std::sync::Arc;
use std::time::Duration;

fn setup(
    nodes: usize,
) -> (
    RoadsNetwork,
    SwordNetwork,
    DelaySpace,
    Vec<(roads_records::Query, usize)>,
) {
    let schema = default_schema(16);
    let records = generate_node_records(&RecordWorkloadConfig {
        nodes,
        records_per_node: 50,
        attrs: 16,
        seed: 4,
    });
    let net = RoadsNetwork::build(
        schema.clone(),
        RoadsConfig {
            summary: SummaryConfig::with_buckets(200),
            ..RoadsConfig::paper_default()
        },
        records.clone(),
    );
    let sword = SwordNetwork::build(schema.clone(), records);
    let delays = DelaySpace::paper(nodes, 4);
    let queries = generate_queries(
        &schema,
        &QueryWorkloadConfig {
            count: 32,
            dims: 6,
            range_len: 0.25,
            nodes,
            seed: 8,
        },
    );
    (net, sword, delays, queries)
}

fn bench_tree_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("tree_build");
    for &n in &[64usize, 320, 640] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| HierarchyTree::build(black_box(n), 8))
        });
    }
    g.finish();
}

fn bench_query_exec(c: &mut Criterion) {
    let mut g = c.benchmark_group("query_exec");
    g.sample_size(20);
    for &n in &[64usize, 128] {
        let (net, sword, delays, queries) = setup(n);
        g.bench_with_input(BenchmarkId::new("roads", n), &n, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let (q, start) = &queries[i % queries.len()];
                i += 1;
                execute_query(
                    &net,
                    &delays,
                    black_box(q),
                    ServerId(*start as u32),
                    SearchScope::full(),
                )
            })
        });
        g.bench_with_input(BenchmarkId::new("sword", n), &n, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let (q, start) = &queries[i % queries.len()];
                i += 1;
                sword.execute_query(&delays, black_box(q), *start)
            })
        });
    }
    g.finish();
}

/// Flight-recorder acceptance check: running the recorded query path with
/// the recorder disabled (`None`) must cost the same as the plain path.
fn bench_recorder_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("recorder_overhead");
    g.sample_size(20);
    let (net, _, delays, queries) = setup(64);
    g.bench_function("plain", |b| {
        let mut i = 0;
        b.iter(|| {
            let (q, start) = &queries[i % queries.len()];
            i += 1;
            execute_query(
                &net,
                &delays,
                black_box(q),
                ServerId(*start as u32),
                SearchScope::full(),
            )
        })
    });
    g.bench_function("recorder_disabled", |b| {
        let mut i = 0;
        b.iter(|| {
            let (q, start) = &queries[i % queries.len()];
            i += 1;
            execute_query_recorded(
                &net,
                &delays,
                black_box(q),
                ServerId(*start as u32),
                SearchScope::full(),
                None,
            )
        })
    });
    // Counter/histogram recording with no background sampler vs with a
    // live Sampler snapshotting the same registry every millisecond: the
    // hot path only touches atomics and one histogram mutex, so the
    // sampler thread must not show up in per-query cost.
    let query_instrumented = |b: &mut criterion::Bencher, reg: &Registry| {
        let mut i = 0;
        b.iter(|| {
            let (q, start) = &queries[i % queries.len()];
            i += 1;
            let r = execute_query(
                &net,
                &delays,
                black_box(q),
                ServerId(*start as u32),
                SearchScope::full(),
            );
            record_query_outcome(reg, &r);
            r
        })
    };
    g.bench_function("sampler_off", |b| {
        let reg = Registry::new();
        query_instrumented(b, &reg);
    });
    g.bench_function("sampler_on", |b| {
        let reg = Arc::new(Registry::new());
        let sampler = Sampler::start(
            Arc::clone(&reg),
            &["roads.queries", "roads.query_latency_ms"],
            Duration::from_millis(1),
            4096,
        );
        query_instrumented(b, &reg);
        sampler.stop();
    });
    // Tail-sampling acceptance check: a live cluster with a TailSampler
    // attached assembles a QueryExplain per query and offers it to the
    // reservoir; without one, queries skip explain work entirely. The
    // sampled path must stay within 5% of the unsampled path at default
    // thresholds (query wall time is dominated by the emulated backend,
    // so per-hop bookkeeping must disappear into it).
    let live_cluster = || {
        let n = 9usize;
        let schema = Schema::unit_numeric(1);
        let records: Vec<Vec<Record>> = (0..n)
            .map(|s| {
                (0..10)
                    .map(|i| {
                        let id = s * 10 + i;
                        Record::new_unchecked(
                            RecordId(id as u64),
                            OwnerId(s as u32),
                            vec![Value::Float(id as f64 / (n * 10) as f64)],
                        )
                    })
                    .collect()
            })
            .collect();
        let net = RoadsNetwork::build(
            schema,
            RoadsConfig {
                max_children: 3,
                summary: SummaryConfig::with_buckets(64),
                ..RoadsConfig::paper_default()
            },
            records,
        );
        let cfg = RuntimeConfig {
            dispatch_timeout_ms: 400,
            max_retries: 1,
            backoff_base_ms: 5,
            query_deadline_ms: 10_000,
            delay_scale: 0.02,
            per_record_retrieval_us: 20,
            base_query_cost_us: 100,
            ..RuntimeConfig::paper_like()
        };
        RoadsCluster::start(net, DelaySpace::paper(n, 7), cfg)
    };
    let live_queries: Vec<_> = (0..16)
        .map(|i| {
            let lo = 0.75 * (i as f64 * 0.37).fract();
            (lo, lo + 0.25)
        })
        .collect();
    let drive = |b: &mut criterion::Bencher, cluster: &RoadsCluster| {
        let schema = cluster.network().schema().clone();
        let root = cluster.network().tree().root();
        let mut i = 0;
        b.iter(|| {
            let (lo, hi) = live_queries[i % live_queries.len()];
            let q = QueryBuilder::new(&schema, QueryId(i as u64))
                .range("x0", lo, hi)
                .build();
            i += 1;
            black_box(cluster.query(&q, root))
        })
    };
    g.sample_size(10);
    g.bench_function("tail_off", |b| {
        let cluster = live_cluster();
        drive(b, &cluster);
        cluster.shutdown();
    });
    g.bench_function("tail_on", |b| {
        let mut cluster = live_cluster();
        cluster.set_tail_sampler(TailSampler::shared());
        drive(b, &cluster);
        cluster.shutdown();
    });
    // Audit-plane acceptance check: with AuditMetrics attached the reply
    // path folds every branch-mode outcome into two atomic counters, and
    // the background Auditor recomputes ground truth on its own thread.
    // Neither may cost the query path more than 5% vs the bare cluster.
    g.bench_function("auditor_off", |b| {
        let cluster = live_cluster();
        drive(b, &cluster);
        cluster.shutdown();
    });
    g.bench_function("auditor_on", |b| {
        let reg = Registry::new();
        let mut cluster = live_cluster();
        let net = cluster.shared_network();
        let metrics = Arc::new(AuditMetrics::new(&reg, net.tree().levels()));
        cluster.set_audit_metrics(Arc::clone(&metrics));
        let probes: Vec<_> = (0..8)
            .map(|i| {
                let lo = 0.75 * (i as f64 * 0.37).fract();
                QueryBuilder::new(net.schema(), QueryId(1_000 + i as u64))
                    .range("x0", lo, lo + 0.25)
                    .build()
            })
            .collect();
        let auditor = Auditor::start(
            net,
            metrics,
            AuditConfig {
                interval: Duration::from_millis(5),
                probes_per_tick: 4,
                refresh_every: 4,
                ..AuditConfig::default()
            },
            probes,
            cluster.liveness(),
        );
        drive(b, &cluster);
        auditor.stop();
        cluster.shutdown();
    });
    // Watchdog-plane acceptance check: the watchdog evaluates its
    // detector bank against the registry on its own thread each tick —
    // the query path gains nothing but the instrument writes it already
    // pays for. With a 5 ms tick racing the queries, watchdog_on must
    // stay within 5% of watchdog_off.
    let live_instrumented = |reg: &Arc<Registry>| {
        let n = 9usize;
        let schema = Schema::unit_numeric(1);
        let records: Vec<Vec<Record>> = (0..n)
            .map(|s| {
                (0..10)
                    .map(|i| {
                        let id = s * 10 + i;
                        Record::new_unchecked(
                            RecordId(id as u64),
                            OwnerId(s as u32),
                            vec![Value::Float(id as f64 / (n * 10) as f64)],
                        )
                    })
                    .collect()
            })
            .collect();
        let net = RoadsNetwork::build(
            schema,
            RoadsConfig {
                max_children: 3,
                summary: SummaryConfig::with_buckets(64),
                ..RoadsConfig::paper_default()
            },
            records,
        );
        let cfg = RuntimeConfig {
            dispatch_timeout_ms: 400,
            max_retries: 1,
            backoff_base_ms: 5,
            query_deadline_ms: 10_000,
            delay_scale: 0.02,
            per_record_retrieval_us: 20,
            base_query_cost_us: 100,
            ..RuntimeConfig::paper_like()
        };
        RoadsCluster::start_instrumented(net, DelaySpace::paper(n, 7), cfg, reg)
    };
    g.bench_function("watchdog_off", |b| {
        let reg = Arc::new(Registry::new());
        let cluster = live_instrumented(&reg);
        drive(b, &cluster);
        cluster.shutdown();
    });
    g.bench_function("watchdog_on", |b| {
        let reg = Arc::new(Registry::new());
        let cluster = live_instrumented(&reg);
        let watchdog = Watchdog::for_cluster(
            &cluster,
            &reg,
            WatchdogConfig {
                interval: Duration::from_millis(5),
                ..WatchdogConfig::default()
            },
        );
        drive(b, &cluster);
        watchdog.stop();
        cluster.shutdown();
    });
    // Rendering a populated registry to OpenMetrics text (the scrape
    // cost a live health endpoint would pay per poll).
    g.bench_function("exposition_render", |b| {
        let reg = Registry::new();
        for i in 0..64 {
            reg.counter(&format!("bench.counter_{i}")).add(i);
            for s in 0..100 {
                reg.histogram(&format!("bench.hist_{}", i % 8))
                    .record((i * 100 + s) as f64 * 0.01);
            }
        }
        b.iter(|| OpenMetricsSnapshot::from_registry(black_box(&reg)).render())
    });
    g.finish();
}

fn bench_update_round(c: &mut Criterion) {
    let mut g = c.benchmark_group("update_round");
    g.sample_size(10);
    let (net, sword, _, _) = setup(128);
    g.bench_function("roads_128", |b| b.iter(|| update_round(black_box(&net))));
    g.bench_function("sword_128", |b| b.iter(|| black_box(&sword).update_round()));
    g.finish();
}

criterion_group!(
    benches,
    bench_tree_build,
    bench_query_exec,
    bench_recorder_overhead,
    bench_update_round
);
criterion_main!(benches);
