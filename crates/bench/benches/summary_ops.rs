//! Micro-benchmarks for the summary layer: the data structures every
//! update round and query evaluation touch.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use roads_records::{AttrId, Predicate, Query, QueryId, Schema};
use roads_summary::{BloomFilter, Histogram, Summary, SummaryConfig};
use roads_workload::{generate_node_records, RecordWorkloadConfig};

fn bench_histogram(c: &mut Criterion) {
    let mut g = c.benchmark_group("histogram");
    for &m in &[100usize, 1000] {
        g.bench_with_input(BenchmarkId::new("insert_1k", m), &m, |b, &m| {
            b.iter(|| {
                let mut h = Histogram::new(0.0, 1.0, m);
                for i in 0..1000 {
                    h.insert(black_box((i % 97) as f64 / 97.0));
                }
                h
            })
        });
        let a = Histogram::from_values(0.0, 1.0, m, (0..500).map(|i| (i % 89) as f64 / 89.0));
        let b2 = Histogram::from_values(0.0, 1.0, m, (0..500).map(|i| (i % 83) as f64 / 83.0));
        g.bench_with_input(BenchmarkId::new("merge", m), &m, |b, _| {
            b.iter(|| {
                let mut x = a.clone();
                x.merge(black_box(&b2)).unwrap();
                x
            })
        });
        g.bench_with_input(BenchmarkId::new("range_query", m), &m, |b, _| {
            b.iter(|| black_box(&a).may_match_range(black_box(0.4), black_box(0.6)))
        });
    }
    g.finish();
}

fn bench_bloom(c: &mut Criterion) {
    let mut g = c.benchmark_group("bloom");
    let mut f = BloomFilter::with_capacity(10_000, 0.01);
    for i in 0..10_000 {
        f.insert(&format!("element-{i}"));
    }
    g.bench_function("insert", |b| {
        let mut f = BloomFilter::with_capacity(10_000, 0.01);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            f.insert(black_box(&format!("element-{i}")));
        })
    });
    g.bench_function("contains_hit", |b| {
        b.iter(|| black_box(&f).contains(black_box("element-5000")))
    });
    g.bench_function("contains_miss", |b| {
        b.iter(|| black_box(&f).contains(black_box("absent-key")))
    });
    g.finish();
}

fn bench_summary(c: &mut Criterion) {
    let mut g = c.benchmark_group("summary");
    g.sample_size(20);
    let records = generate_node_records(&RecordWorkloadConfig {
        nodes: 1,
        records_per_node: 500,
        attrs: 16,
        seed: 1,
    })
    .remove(0);
    let schema = Schema::unit_numeric(16);
    let cfg = SummaryConfig::with_buckets(1000);
    g.bench_function("build_500x16_m1000", |b| {
        b.iter(|| Summary::from_records(&schema, &cfg, black_box(&records)))
    });
    let s1 = Summary::from_records(&schema, &cfg, &records);
    let s2 = s1.clone();
    g.bench_function("merge_16attr_m1000", |b| {
        b.iter(|| {
            let mut x = s1.clone();
            x.merge(black_box(&s2)).unwrap();
            x
        })
    });
    let q = Query::new(
        QueryId(0),
        (0..6)
            .map(|i| Predicate::Range {
                attr: AttrId(i * 2),
                lo: 0.3,
                hi: 0.55,
            })
            .collect(),
    );
    g.bench_function("may_match_6dim", |b| {
        b.iter(|| black_box(&s1).may_match(black_box(&q)))
    });
    g.finish();
}

criterion_group!(benches, bench_histogram, bench_bloom, bench_summary);
criterion_main!(benches);
