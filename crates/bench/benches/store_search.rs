//! Record-store benchmarks: indexed search vs full scan (the DB2 stand-in
//! of the prototype runtime).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use roads_records::{Query, QueryBuilder, QueryId, Record, Schema};
use roads_runtime::RecordStore;
use roads_workload::{generate_node_records, RecordWorkloadConfig};

fn store_of(n: usize) -> (RecordStore, Schema) {
    let schema = Schema::unit_numeric(16);
    let records: Vec<Record> = generate_node_records(&RecordWorkloadConfig {
        nodes: 1,
        records_per_node: n,
        attrs: 16,
        seed: 9,
    })
    .remove(0);
    (RecordStore::new(schema.clone(), records), schema)
}

fn narrow_query(schema: &Schema) -> Query {
    QueryBuilder::new(schema, QueryId(0))
        .range("x0", 0.40, 0.42)
        .range("x4", 0.0, 1.0)
        .range("x8", 0.0, 1.0)
        .build()
}

fn bench_search(c: &mut Criterion) {
    let mut g = c.benchmark_group("record_store");
    for &n in &[1_000usize, 10_000, 50_000] {
        let (store, schema) = store_of(n);
        let q = narrow_query(&schema);
        g.bench_with_input(BenchmarkId::new("indexed_search", n), &n, |b, _| {
            b.iter(|| black_box(&store).search(black_box(&q)))
        });
        g.bench_with_input(BenchmarkId::new("full_scan", n), &n, |b, _| {
            b.iter(|| {
                black_box(&store)
                    .records()
                    .iter()
                    .filter(|r| q.matches(r))
                    .count()
            })
        });
    }
    g.finish();
}

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("record_store_build");
    g.sample_size(10);
    let schema = Schema::unit_numeric(16);
    let records: Vec<Record> = generate_node_records(&RecordWorkloadConfig {
        nodes: 1,
        records_per_node: 10_000,
        attrs: 16,
        seed: 9,
    })
    .remove(0);
    g.bench_function("index_10k_x16", |b| {
        b.iter(|| RecordStore::new(schema.clone(), black_box(records.clone())))
    });
    g.finish();
}

criterion_group!(benches, bench_search, bench_build);
criterion_main!(benches);
