//! Parallel vs sequential network construction, and batch query
//! evaluation at several worker-pool widths.
//!
//! On multi-core hosts the parallel build should win on the larger
//! federations (local summary construction dominates and is embarrassingly
//! parallel); on a single core it measures the fan-out overhead, which
//! must stay small. Either way the two paths produce bit-identical
//! networks (asserted in roads-core's tests), so this group is purely
//! about wall-clock.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use roads_core::{BuildOptions, QueryBatch, RoadsConfig, RoadsNetwork, ServerId};
use roads_netsim::DelaySpace;
use roads_summary::SummaryConfig;
use roads_workload::{
    default_schema, generate_node_records, generate_queries, QueryWorkloadConfig,
    RecordWorkloadConfig,
};
use std::sync::Arc;

fn workload(nodes: usize) -> (roads_records::Schema, Vec<Vec<roads_records::Record>>) {
    let schema = default_schema(16);
    let records = generate_node_records(&RecordWorkloadConfig {
        nodes,
        records_per_node: 50,
        attrs: 16,
        seed: 14,
    });
    (schema, records)
}

fn roads_cfg() -> RoadsConfig {
    RoadsConfig {
        summary: SummaryConfig::with_buckets(200),
        ..RoadsConfig::paper_default()
    }
}

fn bench_network_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel_build");
    g.sample_size(10);
    let host_threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    for &n in &[64usize, 320] {
        let (schema, records) = workload(n);
        g.bench_with_input(BenchmarkId::new("sequential", n), &n, |b, _| {
            b.iter(|| {
                RoadsNetwork::build_with(
                    black_box(schema.clone()),
                    roads_cfg(),
                    black_box(records.clone()),
                    BuildOptions::sequential(),
                )
            })
        });
        for &t in &[2usize, 4] {
            g.bench_with_input(BenchmarkId::new(format!("threads_{t}"), n), &n, |b, _| {
                b.iter(|| {
                    RoadsNetwork::build_with(
                        black_box(schema.clone()),
                        roads_cfg(),
                        black_box(records.clone()),
                        BuildOptions::with_threads(t),
                    )
                })
            });
        }
        g.bench_with_input(
            BenchmarkId::new(format!("threads_host_{host_threads}"), n),
            &n,
            |b, _| {
                b.iter(|| {
                    RoadsNetwork::build_with(
                        black_box(schema.clone()),
                        roads_cfg(),
                        black_box(records.clone()),
                        BuildOptions::parallel(),
                    )
                })
            },
        );
    }
    g.finish();
}

fn bench_query_batch(c: &mut Criterion) {
    let mut g = c.benchmark_group("query_batch");
    g.sample_size(10);
    let n = 128;
    let (schema, records) = workload(n);
    let net = Arc::new(RoadsNetwork::build(schema.clone(), roads_cfg(), records));
    let delays = Arc::new(DelaySpace::paper(n, 14));
    let queries: Vec<(roads_records::Query, ServerId)> = generate_queries(
        &schema,
        &QueryWorkloadConfig {
            count: 64,
            dims: 6,
            range_len: 0.25,
            nodes: n,
            seed: 15,
        },
    )
    .into_iter()
    .map(|(q, s)| (q, ServerId(s as u32)))
    .collect();
    for &t in &[1usize, 2, 4] {
        let batch = QueryBatch::new(Arc::clone(&net), Arc::clone(&delays)).threads(t);
        g.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, _| {
            b.iter(|| batch.run(black_box(&queries)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_network_build, bench_query_batch);
criterion_main!(benches);
