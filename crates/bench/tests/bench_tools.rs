//! End-to-end tests of the regression harness binaries: `bench_suite
//! --smoke` must produce a valid `BENCH_ROADS.json`, `roads-inspect
//! check` must accept it, and `roads-inspect bench-diff` must exit
//! non-zero exactly when a bench regresses beyond the threshold.

use roads_bench::suite::BenchReport;
use std::path::PathBuf;
use std::process::Command;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("roads-bench-tools-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn inspect(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_roads-inspect"))
        .args(args)
        .output()
        .expect("roads-inspect runs");
    (
        out.status.success(),
        format!(
            "{}{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        ),
    )
}

#[test]
fn smoke_suite_produces_a_valid_checkable_report_and_diff_gates() {
    let baseline = tmp("baseline.json");
    let run = Command::new(env!("CARGO_BIN_EXE_bench_suite"))
        .args(["--smoke", "--out", baseline.to_str().unwrap()])
        .output()
        .expect("bench_suite runs");
    assert!(run.status.success(), "bench_suite --smoke failed");

    // The [metrics] digest is operator chatter: it must land on stderr,
    // never in the machine-pipeable stdout stream.
    let stdout = String::from_utf8_lossy(&run.stdout);
    let stderr = String::from_utf8_lossy(&run.stderr);
    assert!(
        !stdout.contains("[metrics]"),
        "digest leaked into stdout:\n{stdout}"
    );
    assert!(
        stderr.contains("[metrics]"),
        "digest missing from stderr:\n{stderr}"
    );

    // The report parses, validates, and covers the whole matrix.
    let report = BenchReport::load(&baseline).expect("valid report");
    assert_eq!(report.config, "smoke");
    let names: Vec<&str> = report.benches.iter().map(|b| b.name.as_str()).collect();
    for expected in [
        "build_1t",
        "build_4t",
        "update_round",
        "qps_overlay",
        "qps_root",
        "failover_recovery",
    ] {
        assert!(names.contains(&expected), "matrix missing {expected}");
    }
    for b in &report.benches {
        assert!(b.value > 0.0, "bench {} measured nothing", b.name);
    }

    // `check` accepts the bench document (no trace file required).
    let (ok, out) = inspect(&["check", baseline.to_str().unwrap()]);
    assert!(ok, "check rejected a fresh report:\n{out}");
    assert!(out.contains("bench report"), "{out}");

    // The suite also wrote the tail-sampler report next to the bench
    // report; the failover phase guarantees retained (failed) queries.
    let slow_path = baseline.parent().unwrap().join("SLOW_QUERIES.json");
    assert!(
        slow_path.exists(),
        "bench_suite must write SLOW_QUERIES.json"
    );
    let (ok, out) = inspect(&["check", slow_path.to_str().unwrap()]);
    assert!(ok, "check rejected the slow-query report:\n{out}");
    assert!(out.contains("slow-query report"), "{out}");

    // `slow` renders the ranked attribution table, `explain` the
    // hop-by-hop waterfall + decision tree of every retained query.
    let (ok, out) = inspect(&["slow", slow_path.to_str().unwrap()]);
    assert!(ok, "slow failed:\n{out}");
    assert!(out.contains("tail reservoir"), "{out}");
    assert!(
        out.contains("failed"),
        "failover phase retains failures:\n{out}"
    );
    let (ok, out) = inspect(&["explain", slow_path.to_str().unwrap()]);
    assert!(ok, "explain failed:\n{out}");
    assert!(out.contains("waterfall"), "{out}");
    assert!(out.contains("decision tree:"), "{out}");
    assert!(out.contains("attribution:"), "{out}");
    assert!(
        out.contains("flight recorder:"),
        "retained queries carry their trace:\n{out}"
    );

    // Same report against itself: no regressions, exit 0.
    let (ok, out) = inspect(&[
        "bench-diff",
        baseline.to_str().unwrap(),
        baseline.to_str().unwrap(),
    ]);
    assert!(ok, "self-diff must pass:\n{out}");
    assert!(out.contains("no regressions"), "{out}");

    // Fixture pair: collapse throughput and inflate build time; the diff
    // must flag both and exit non-zero.
    let mut regressed = report.clone();
    for b in &mut regressed.benches {
        match b.name.as_str() {
            "qps_overlay" => b.value *= 0.5,
            "build_1t" => b.value *= 2.0,
            _ => {}
        }
    }
    let bad = tmp("regressed.json");
    regressed.write(&bad).unwrap();
    let (ok, out) = inspect(&[
        "bench-diff",
        baseline.to_str().unwrap(),
        bad.to_str().unwrap(),
        "--fail-over",
        "25",
    ]);
    assert!(!ok, "regressions must fail the gate:\n{out}");
    assert_eq!(out.matches("<-- REGRESSION").count(), 2, "{out}");

    // The same movements pass under a generous CI-style threshold.
    let (ok, _) = inspect(&[
        "bench-diff",
        baseline.to_str().unwrap(),
        bad.to_str().unwrap(),
        "--fail-over",
        "400",
    ]);
    assert!(ok, "5x threshold must forgive 2x noise");
}

#[test]
fn check_rejects_malformed_bench_reports() {
    let bad_version = tmp("bad_version.json");
    std::fs::write(
        &bad_version,
        r#"{"schema_version":99,"commit":"x","config":"smoke","benches":[{"name":"b","unit":"ms","value":1,"p50":1,"p99":1,"samples":1}]}"#,
    )
    .unwrap();
    let (ok, out) = inspect(&["check", bad_version.to_str().unwrap()]);
    assert!(!ok);
    assert!(out.contains("unknown schema_version"), "{out}");

    let empty = tmp("empty_benches.json");
    std::fs::write(
        &empty,
        r#"{"schema_version":1,"commit":"x","config":"smoke","benches":[]}"#,
    )
    .unwrap();
    let (ok, out) = inspect(&["check", empty.to_str().unwrap()]);
    assert!(!ok);
    assert!(out.contains("empty bench list"), "{out}");

    // NaN stats serialize as null and must not validate.
    let nan = tmp("nan.json");
    std::fs::write(
        &nan,
        r#"{"schema_version":1,"commit":"x","config":"smoke","benches":[{"name":"b","unit":"ms","value":null,"p50":1,"p99":1,"samples":1}]}"#,
    )
    .unwrap();
    let (ok, out) = inspect(&["check", nan.to_str().unwrap()]);
    assert!(!ok);
    assert!(out.contains("non-numeric value"), "{out}");
}

#[test]
fn check_fails_cleanly_on_truncated_and_corrupt_artifacts() {
    // A slow-query report cut off mid-write (crashed bench run).
    let truncated = tmp("truncated_slow.json");
    std::fs::write(&truncated, r#"{"slow_queries":1,"retained":[{"#).unwrap();
    let (ok, out) = inspect(&["check", truncated.to_str().unwrap()]);
    assert!(!ok, "truncated JSON must fail:\n{out}");
    assert!(out.contains("FAIL"), "{out}");

    // A structurally valid slow doc whose retained entry is corrupt: the
    // explain record lost its hops array.
    let corrupt = tmp("corrupt_slow.json");
    std::fs::write(
        &corrupt,
        r#"{"slow_queries":1,"threshold_ms":1.0,"observed":3,"dropped":2,
            "retained":[{"reason":"slow","explain":{"query_id":9}}],"exemplars":[]}"#,
    )
    .unwrap();
    let (ok, out) = inspect(&["check", corrupt.to_str().unwrap()]);
    assert!(!ok, "corrupt retained entry must fail:\n{out}");
    assert!(out.contains("retained[0]"), "{out}");

    // An unknown retention reason (schema drift).
    let bad_reason = tmp("bad_reason_slow.json");
    std::fs::write(
        &bad_reason,
        r#"{"slow_queries":1,"threshold_ms":1.0,"observed":1,"dropped":0,
            "retained":[{"reason":"mystery","explain":{}}],"exemplars":[]}"#,
    )
    .unwrap();
    let (ok, out) = inspect(&["check", bad_reason.to_str().unwrap()]);
    assert!(!ok);
    assert!(out.contains("unknown reason"), "{out}");

    // `explain` and `slow` reject the same artifacts with a message, not
    // a panic.
    for cmd in ["explain", "slow"] {
        let (ok, out) = inspect(&[cmd, corrupt.to_str().unwrap()]);
        assert!(!ok, "{cmd} accepted a corrupt artifact:\n{out}");
        assert!(out.contains("error:"), "{out}");
    }

    // A bench report cut off mid-write.
    let truncated_bench = tmp("truncated_bench.json");
    std::fs::write(&truncated_bench, r#"{"schema_version":1,"benches":[{"#).unwrap();
    let (ok, out) = inspect(&["check", truncated_bench.to_str().unwrap()]);
    assert!(!ok, "truncated bench JSON must fail:\n{out}");
    assert!(out.contains("FAIL"), "{out}");

    // A figure document whose trace file is truncated mid-array.
    let fig = tmp("figx.json");
    std::fs::write(
        &fig,
        r#"{"figure":"figx","title":"t","series":[],"reference":[],"notes":[]}"#,
    )
    .unwrap();
    std::fs::write(tmp("figx.trace.json"), r#"{"traceEvents":[{"cat":"roa"#).unwrap();
    let (ok, out) = inspect(&["check", fig.to_str().unwrap()]);
    assert!(!ok, "truncated trace must fail:\n{out}");
    assert!(out.contains("FAIL"), "{out}");
}

#[test]
fn health_renders_a_table_from_a_live_scrape() {
    use roads_core::{RoadsConfig, RoadsNetwork, ServerId};
    use roads_netsim::DelaySpace;
    use roads_records::{OwnerId, QueryBuilder, QueryId, Record, RecordId, Schema, Value};
    use roads_runtime::{RoadsCluster, RuntimeConfig};
    use roads_summary::SummaryConfig;
    use roads_telemetry::{OpenMetricsSnapshot, Registry};

    let n = 6;
    let records: Vec<Vec<Record>> = (0..n)
        .map(|s| {
            (0..5)
                .map(|i| {
                    let id = s * 5 + i;
                    Record::new_unchecked(
                        RecordId(id as u64),
                        OwnerId(s as u32),
                        vec![Value::Float(id as f64 / (n * 5) as f64)],
                    )
                })
                .collect()
        })
        .collect();
    let net = RoadsNetwork::build(
        Schema::unit_numeric(1),
        RoadsConfig {
            max_children: 3,
            summary: SummaryConfig::with_buckets(64),
            ..RoadsConfig::paper_default()
        },
        records,
    );
    let reg = Registry::new();
    let c = RoadsCluster::start_instrumented(
        net,
        DelaySpace::paper(n, 3),
        RuntimeConfig::test_fast(),
        &reg,
    );
    let q = QueryBuilder::new(c.network().schema(), QueryId(1))
        .range("x0", 0.0, 1.0)
        .build();
    let root = c.network().tree().root();
    c.query(&q, root);
    c.kill_server(ServerId(if root.0 == 0 { 1 } else { 0 }));
    let scrape_path = tmp("scrape.txt");
    std::fs::write(
        &scrape_path,
        OpenMetricsSnapshot::from_registry(&reg).render(),
    )
    .unwrap();
    c.shutdown();

    let (ok, out) = inspect(&["health", scrape_path.to_str().unwrap()]);
    assert!(ok, "health failed:\n{out}");
    assert!(out.contains(&format!("{}/{n} alive", n - 1)), "{out}");
    assert!(out.contains("DOWN"), "{out}");
    assert!(out.contains("server"), "{out}");
    assert!(out.contains("dispatch p99"), "{out}");
    // The entry server replied at least once with a finite p99 bucket.
    assert!(out.contains("<="), "no finite p99 column:\n{out}");

    // Garbage input fails cleanly.
    let garbage = tmp("garbage.txt");
    std::fs::write(&garbage, "not a scrape\n").unwrap();
    let (ok, _) = inspect(&["health", garbage.to_str().unwrap()]);
    assert!(!ok);
}
