//! Regression tests pinning figure-series determinism.
//!
//! The whole comparison pipeline is deterministic by construction — the
//! workload comes from per-node/per-query RNG streams, the build is
//! thread-count-invariant, and latencies are synthesized from the
//! [`roads_netsim::DelaySpace`] rather than measured — so two runs of the
//! same configuration must agree to the last bit, *including* runs that
//! build the network on different worker-thread counts.

use roads_bench::{run_comparison, TrialConfig};

fn cfg(build_threads: usize) -> TrialConfig {
    TrialConfig {
        nodes: 40,
        records_per_node: 25,
        queries: 30,
        buckets: 100,
        runs: 2,
        build_threads,
        ..TrialConfig::quick()
    }
}

#[test]
fn comparison_series_identical_across_build_thread_counts() {
    let sequential = run_comparison(&cfg(1));
    for threads in [4, 64] {
        let parallel = run_comparison(&cfg(threads));
        assert_eq!(
            sequential, parallel,
            "build_threads={threads} must reproduce the sequential series exactly"
        );
    }
}

#[test]
fn comparison_series_identical_across_repeat_runs() {
    assert_eq!(run_comparison(&cfg(1)), run_comparison(&cfg(1)));
}
