//! Property tests: wire-format round trips and query semantics.

use bytes::BytesMut;
use proptest::prelude::*;
use roads_records::wire::{
    decode_query, decode_record, decode_value, encode_query, encode_record, encode_value,
};
use roads_records::{
    AttrId, OwnerId, Predicate, Query, QueryId, Record, RecordId, Schema, Value, WireSize,
};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<f64>()
            .prop_filter("finite", |f| f.is_finite())
            .prop_map(Value::Float),
        any::<i64>().prop_map(Value::Int),
        "[a-zA-Z0-9 _-]{0,40}".prop_map(Value::Text),
        "[a-zA-Z0-9_-]{0,24}".prop_map(Value::Cat),
        any::<i64>().prop_map(Value::Timestamp),
    ]
}

fn arb_record() -> impl Strategy<Value = Record> {
    (
        any::<u64>(),
        any::<u32>(),
        prop::collection::vec(arb_value(), 0..12),
    )
        .prop_map(|(id, owner, values)| Record::new_unchecked(RecordId(id), OwnerId(owner), values))
}

fn arb_predicate() -> impl Strategy<Value = Predicate> {
    prop_oneof![
        (any::<u16>(), -1.0f64..1.0, 0.0f64..1.0).prop_map(|(a, lo, w)| Predicate::Range {
            attr: AttrId(a),
            lo,
            hi: lo + w,
        }),
        (any::<u16>(), arb_value()).prop_map(|(a, value)| Predicate::Eq {
            attr: AttrId(a),
            value,
        }),
        (
            any::<u16>(),
            prop::collection::vec("[a-z0-9]{0,10}".prop_map(String::from), 0..5)
        )
            .prop_map(|(a, values)| Predicate::OneOf {
                attr: AttrId(a),
                values,
            }),
    ]
}

fn arb_query() -> impl Strategy<Value = Query> {
    (any::<u64>(), prop::collection::vec(arb_predicate(), 0..8))
        .prop_map(|(id, preds)| Query::new(QueryId(id), preds))
}

proptest! {
    #[test]
    fn value_roundtrip(v in arb_value()) {
        let mut buf = BytesMut::new();
        encode_value(&v, &mut buf);
        prop_assert_eq!(buf.len(), v.wire_size());
        let back = decode_value(&mut buf.freeze()).expect("decodes");
        prop_assert_eq!(back, v);
    }

    #[test]
    fn record_roundtrip(r in arb_record()) {
        let mut buf = BytesMut::new();
        encode_record(&r, &mut buf);
        prop_assert_eq!(buf.len(), r.wire_size());
        let back = decode_record(&mut buf.freeze()).expect("decodes");
        prop_assert_eq!(back, r);
    }

    #[test]
    fn query_roundtrip(q in arb_query()) {
        let mut buf = BytesMut::new();
        encode_query(&q, &mut buf);
        prop_assert_eq!(buf.len(), q.wire_size());
        let back = decode_query(&mut buf.freeze()).expect("decodes");
        prop_assert_eq!(back, q);
    }

    #[test]
    fn truncated_record_never_panics(r in arb_record(), cut in 0usize..64) {
        let mut buf = BytesMut::new();
        encode_record(&r, &mut buf);
        let take = cut.min(buf.len());
        let slice = buf.freeze().slice(0..take);
        // Must return None or a record, never panic.
        let _ = decode_record(&mut slice.clone());
    }

    #[test]
    fn range_predicate_matches_iff_in_bounds(v in 0.0f64..1.0, lo in 0.0f64..1.0, w in 0.0f64..1.0) {
        let schema = Schema::unit_numeric(1);
        let r = Record::new_unchecked(RecordId(0), OwnerId(0), vec![Value::Float(v)]);
        let hi = (lo + w).min(1.0);
        let p = Predicate::Range { attr: AttrId(0), lo, hi };
        prop_assert_eq!(p.matches(&r), lo <= v && v <= hi);
        let _ = schema;
    }

    #[test]
    fn conjunction_is_intersection(v0 in 0.0f64..1.0, v1 in 0.0f64..1.0) {
        let r = Record::new_unchecked(
            RecordId(0),
            OwnerId(0),
            vec![Value::Float(v0), Value::Float(v1)],
        );
        let p0 = Predicate::Range { attr: AttrId(0), lo: 0.25, hi: 0.75 };
        let p1 = Predicate::Range { attr: AttrId(1), lo: 0.5, hi: 1.0 };
        let q = Query::new(QueryId(0), vec![p0.clone(), p1.clone()]);
        prop_assert_eq!(q.matches(&r), p0.matches(&r) && p1.matches(&r));
    }

    #[test]
    fn uniform_selectivity_bounded(lo in 0.0f64..1.0, w in 0.0f64..1.0) {
        let schema = Schema::unit_numeric(2);
        let q = Query::new(QueryId(0), vec![
            Predicate::Range { attr: AttrId(0), lo, hi: lo + w },
            Predicate::Range { attr: AttrId(1), lo: 0.0, hi: 1.0 },
        ]);
        let s = q.uniform_selectivity(&schema);
        prop_assert!((0.0..=1.0).contains(&s));
    }
}
