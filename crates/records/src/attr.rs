//! Attribute definitions and the shared federation schema.
//!
//! The paper assumes all participants agree on a common schema (§II: schema
//! mapping "has been well studied … we assume that all participants use a
//! common schema"). A [`Schema`] is therefore an immutable, ordered list of
//! [`AttrDef`]s; attributes are referenced by dense [`AttrId`] indexes
//! everywhere else in the system.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Dense index of an attribute within a [`Schema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AttrId(pub u16);

impl AttrId {
    /// The attribute's position in the schema's attribute list.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// The type of values an attribute carries, which also determines how the
/// summary layer condenses it (histogram vs value set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttrType {
    /// Real-valued, summarized with an equi-width histogram over `[lo, hi]`.
    Numeric,
    /// Integer-valued, summarized like `Numeric` after coercion.
    Integer,
    /// Finite vocabulary, summarized with a value set or Bloom filter.
    Categorical,
    /// Free text; only equality predicates are supported.
    Text,
    /// Millisecond timestamps, summarized like `Numeric`.
    Timestamp,
}

impl AttrType {
    /// Whether values of this type support range predicates.
    pub fn is_ordered(self) -> bool {
        !matches!(self, AttrType::Categorical)
    }

    /// Whether the value variant matches this declared type.
    pub fn accepts(self, v: &Value) -> bool {
        matches!(
            (self, v),
            (AttrType::Numeric, Value::Float(_))
                | (AttrType::Integer, Value::Int(_))
                | (AttrType::Categorical, Value::Cat(_))
                | (AttrType::Text, Value::Text(_))
                | (AttrType::Timestamp, Value::Timestamp(_))
        )
    }
}

/// Declaration of one searchable attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttrDef {
    /// Attribute name, unique within the schema (e.g. `"rate"`).
    pub name: String,
    /// Value type.
    pub ty: AttrType,
    /// Domain lower bound for ordered types (histogram range start).
    pub lo: f64,
    /// Domain upper bound for ordered types (histogram range end).
    pub hi: f64,
}

impl AttrDef {
    /// A numeric attribute over the unit interval, the paper's simulation
    /// default ("values from unit range", §IV-A).
    pub fn unit(name: impl Into<String>) -> Self {
        AttrDef {
            name: name.into(),
            ty: AttrType::Numeric,
            lo: 0.0,
            hi: 1.0,
        }
    }

    /// A numeric attribute over `[lo, hi]`.
    pub fn numeric(name: impl Into<String>, lo: f64, hi: f64) -> Self {
        AttrDef {
            name: name.into(),
            ty: AttrType::Numeric,
            lo,
            hi,
        }
    }

    /// An integer attribute over `[lo, hi]`.
    pub fn integer(name: impl Into<String>, lo: i64, hi: i64) -> Self {
        AttrDef {
            name: name.into(),
            ty: AttrType::Integer,
            lo: lo as f64,
            hi: hi as f64,
        }
    }

    /// A categorical attribute.
    pub fn categorical(name: impl Into<String>) -> Self {
        AttrDef {
            name: name.into(),
            ty: AttrType::Categorical,
            lo: 0.0,
            hi: 0.0,
        }
    }

    /// A free-text attribute.
    pub fn text(name: impl Into<String>) -> Self {
        AttrDef {
            name: name.into(),
            ty: AttrType::Text,
            lo: 0.0,
            hi: 0.0,
        }
    }

    /// A timestamp attribute over `[lo, hi]` epoch-milliseconds.
    pub fn timestamp(name: impl Into<String>, lo: i64, hi: i64) -> Self {
        AttrDef {
            name: name.into(),
            ty: AttrType::Timestamp,
            lo: lo as f64,
            hi: hi as f64,
        }
    }
}

/// Errors raised while constructing a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// Two attributes share a name.
    DuplicateAttr(String),
    /// An ordered attribute has `lo >= hi`.
    EmptyDomain(String),
    /// More attributes than `AttrId` can index.
    TooManyAttrs(usize),
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::DuplicateAttr(n) => write!(f, "duplicate attribute name {n:?}"),
            SchemaError::EmptyDomain(n) => {
                write!(f, "attribute {n:?} has an empty domain (lo >= hi)")
            }
            SchemaError::TooManyAttrs(n) => write!(f, "{n} attributes exceed the u16 id space"),
        }
    }
}

impl std::error::Error for SchemaError {}

/// Immutable, shared schema all federation participants use.
///
/// Cloning is cheap (`Arc` inside); every record, summary and query carries
/// attribute ids resolved against one schema instance.
#[derive(Debug, Clone)]
pub struct Schema {
    inner: Arc<SchemaInner>,
}

#[derive(Debug)]
struct SchemaInner {
    attrs: Vec<AttrDef>,
    by_name: HashMap<String, AttrId>,
}

impl Schema {
    /// Build a schema from attribute definitions.
    pub fn new(attrs: Vec<AttrDef>) -> Result<Self, SchemaError> {
        if attrs.len() > u16::MAX as usize {
            return Err(SchemaError::TooManyAttrs(attrs.len()));
        }
        let mut by_name = HashMap::with_capacity(attrs.len());
        for (i, a) in attrs.iter().enumerate() {
            if a.ty.is_ordered() && !matches!(a.ty, AttrType::Text) && a.lo >= a.hi {
                return Err(SchemaError::EmptyDomain(a.name.clone()));
            }
            if by_name.insert(a.name.clone(), AttrId(i as u16)).is_some() {
                return Err(SchemaError::DuplicateAttr(a.name.clone()));
            }
        }
        Ok(Schema {
            inner: Arc::new(SchemaInner { attrs, by_name }),
        })
    }

    /// The simulation default schema: `n` numeric attributes `x0..x{n-1}`
    /// over the unit interval.
    pub fn unit_numeric(n: usize) -> Self {
        Schema::new((0..n).map(|i| AttrDef::unit(format!("x{i}"))).collect())
            .expect("generated names are unique")
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.inner.attrs.len()
    }

    /// True when the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.inner.attrs.is_empty()
    }

    /// Look up an attribute id by name.
    pub fn id(&self, name: &str) -> Option<AttrId> {
        self.inner.by_name.get(name).copied()
    }

    /// Definition of an attribute.
    pub fn def(&self, id: AttrId) -> &AttrDef {
        &self.inner.attrs[id.index()]
    }

    /// Iterate over `(AttrId, &AttrDef)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &AttrDef)> {
        self.inner
            .attrs
            .iter()
            .enumerate()
            .map(|(i, d)| (AttrId(i as u16), d))
    }

    /// All ids of ordered (range-searchable) attributes.
    pub fn ordered_attrs(&self) -> Vec<AttrId> {
        self.iter()
            .filter(|(_, d)| d.ty.is_ordered())
            .map(|(id, _)| id)
            .collect()
    }

    /// Two schemas are compatible when they point to the same instance or
    /// declare identical attribute lists.
    pub fn compatible(&self, other: &Schema) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner) || self.inner.attrs == other.inner.attrs
    }
}

/// Incremental schema construction.
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    attrs: Vec<AttrDef>,
}

impl SchemaBuilder {
    /// Start an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an attribute definition.
    pub fn push(mut self, def: AttrDef) -> Self {
        self.attrs.push(def);
        self
    }

    /// Finish, validating name uniqueness and domains.
    pub fn build(self) -> Result<Schema, SchemaError> {
        Schema::new(self.attrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_numeric_schema() {
        let s = Schema::unit_numeric(16);
        assert_eq!(s.len(), 16);
        assert_eq!(s.id("x0"), Some(AttrId(0)));
        assert_eq!(s.id("x15"), Some(AttrId(15)));
        assert_eq!(s.id("x16"), None);
        assert_eq!(s.def(AttrId(3)).lo, 0.0);
        assert_eq!(s.def(AttrId(3)).hi, 1.0);
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Schema::new(vec![AttrDef::unit("a"), AttrDef::unit("a")]).unwrap_err();
        assert_eq!(err, SchemaError::DuplicateAttr("a".into()));
    }

    #[test]
    fn empty_domain_rejected() {
        let err = Schema::new(vec![AttrDef::numeric("a", 1.0, 1.0)]).unwrap_err();
        assert_eq!(err, SchemaError::EmptyDomain("a".into()));
    }

    #[test]
    fn categorical_has_no_domain_constraint() {
        let s = Schema::new(vec![AttrDef::categorical("enc")]).unwrap();
        assert!(!s.def(AttrId(0)).ty.is_ordered());
    }

    #[test]
    fn builder_matches_direct_construction() {
        let a = SchemaBuilder::new()
            .push(AttrDef::unit("x"))
            .push(AttrDef::categorical("c"))
            .build()
            .unwrap();
        let b = Schema::new(vec![AttrDef::unit("x"), AttrDef::categorical("c")]).unwrap();
        assert!(a.compatible(&b));
    }

    #[test]
    fn type_accepts() {
        assert!(AttrType::Numeric.accepts(&Value::Float(0.5)));
        assert!(!AttrType::Numeric.accepts(&Value::Int(1)));
        assert!(AttrType::Categorical.accepts(&Value::Cat("x".into())));
        assert!(AttrType::Timestamp.accepts(&Value::Timestamp(1)));
    }

    #[test]
    fn ordered_attrs_filters_categorical() {
        let s = Schema::new(vec![
            AttrDef::unit("x"),
            AttrDef::categorical("c"),
            AttrDef::integer("n", 0, 10),
        ])
        .unwrap();
        assert_eq!(s.ordered_attrs(), vec![AttrId(0), AttrId(2)]);
    }
}
