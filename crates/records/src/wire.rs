//! Wire encoding and byte-size accounting.
//!
//! The paper's overhead metrics are "total number of bytes sent" for updates
//! and query forwarding (§V). To account identically across ROADS, SWORD and
//! the central repository, every message payload implements [`WireSize`] and
//! a real (round-trippable) encoding, so a byte claimed by the simulators is
//! a byte the encoder actually produces.

use crate::attr::AttrId;
use crate::query::{Predicate, Query, QueryId};
use crate::record::{OwnerId, Record, RecordId};
use crate::value::Value;
use bytes::{Buf, BufMut, BytesMut};

/// Exact number of bytes a payload occupies on the wire.
pub trait WireSize {
    /// Encoded size in bytes.
    fn wire_size(&self) -> usize;
}

/// Fixed per-message envelope the simulators add on top of every payload
/// (source, destination, type tag, length) — a stand-in for UDP/TCP framing.
pub const MSG_HEADER_BYTES: usize = 20;

impl WireSize for Value {
    fn wire_size(&self) -> usize {
        1 + match self {
            Value::Float(_) | Value::Int(_) | Value::Timestamp(_) => 8,
            Value::Text(s) | Value::Cat(s) => 2 + s.len(),
        }
    }
}

impl WireSize for Record {
    fn wire_size(&self) -> usize {
        // id (8) + owner (4) + arity (2) + values
        14 + self.values().iter().map(WireSize::wire_size).sum::<usize>()
    }
}

impl WireSize for Predicate {
    fn wire_size(&self) -> usize {
        // attr (2) + tag (1) + payload
        3 + match self {
            Predicate::Range { .. } => 16,
            Predicate::Eq { value, .. } => value.wire_size(),
            Predicate::OneOf { values, .. } => {
                2 + values.iter().map(|v| 2 + v.len()).sum::<usize>()
            }
        }
    }
}

impl WireSize for Query {
    fn wire_size(&self) -> usize {
        // id (8) + count (2) + predicates
        10 + self
            .predicates()
            .iter()
            .map(WireSize::wire_size)
            .sum::<usize>()
    }
}

impl<T: WireSize> WireSize for [T] {
    fn wire_size(&self) -> usize {
        2 + self.iter().map(WireSize::wire_size).sum::<usize>()
    }
}

impl<T: WireSize> WireSize for Vec<T> {
    fn wire_size(&self) -> usize {
        self.as_slice().wire_size()
    }
}

const TAG_FLOAT: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_TEXT: u8 = 2;
const TAG_CAT: u8 = 3;
const TAG_TS: u8 = 4;

/// Encode a value into `buf`; the encoded length equals `wire_size()`.
pub fn encode_value(v: &Value, buf: &mut BytesMut) {
    match v {
        Value::Float(f) => {
            buf.put_u8(TAG_FLOAT);
            buf.put_f64(*f);
        }
        Value::Int(i) => {
            buf.put_u8(TAG_INT);
            buf.put_i64(*i);
        }
        Value::Text(s) => {
            buf.put_u8(TAG_TEXT);
            put_str(s, buf);
        }
        Value::Cat(s) => {
            buf.put_u8(TAG_CAT);
            put_str(s, buf);
        }
        Value::Timestamp(t) => {
            buf.put_u8(TAG_TS);
            buf.put_i64(*t);
        }
    }
}

/// Decode a value previously written by [`encode_value`]; `None` on
/// truncated or malformed input (never panics).
pub fn decode_value(buf: &mut impl Buf) -> Option<Value> {
    if buf.remaining() < 1 {
        return None;
    }
    Some(match buf.get_u8() {
        TAG_FLOAT => Value::Float(get_f64(buf)?),
        TAG_INT => Value::Int(get_i64(buf)?),
        TAG_TEXT => Value::Text(get_str(buf)?),
        TAG_CAT => Value::Cat(get_str(buf)?),
        TAG_TS => Value::Timestamp(get_i64(buf)?),
        _ => return None,
    })
}

fn get_f64(buf: &mut impl Buf) -> Option<f64> {
    (buf.remaining() >= 8).then(|| buf.get_f64())
}

fn get_i64(buf: &mut impl Buf) -> Option<i64> {
    (buf.remaining() >= 8).then(|| buf.get_i64())
}

/// Encode a full record; the encoded length equals `wire_size()`.
pub fn encode_record(r: &Record, buf: &mut BytesMut) {
    buf.put_u64(r.id.0);
    buf.put_u32(r.owner.0);
    buf.put_u16(r.values().len() as u16);
    for v in r.values() {
        encode_value(v, buf);
    }
}

/// Decode a record previously written by [`encode_record`].
pub fn decode_record(buf: &mut impl Buf) -> Option<Record> {
    if buf.remaining() < 14 {
        return None;
    }
    let id = RecordId(buf.get_u64());
    let owner = OwnerId(buf.get_u32());
    let n = buf.get_u16() as usize;
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(decode_value(buf)?);
    }
    Some(Record::new_unchecked(id, owner, values))
}

const PTAG_RANGE: u8 = 0;
const PTAG_EQ: u8 = 1;
const PTAG_ONEOF: u8 = 2;

/// Encode a query; the encoded length equals `wire_size()`.
pub fn encode_query(q: &Query, buf: &mut BytesMut) {
    buf.put_u64(q.id.0);
    buf.put_u16(q.predicates().len() as u16);
    for p in q.predicates() {
        buf.put_u16(p.attr().0);
        match p {
            Predicate::Range { lo, hi, .. } => {
                buf.put_u8(PTAG_RANGE);
                buf.put_f64(*lo);
                buf.put_f64(*hi);
            }
            Predicate::Eq { value, .. } => {
                buf.put_u8(PTAG_EQ);
                encode_value(value, buf);
            }
            Predicate::OneOf { values, .. } => {
                buf.put_u8(PTAG_ONEOF);
                buf.put_u16(values.len() as u16);
                for v in values {
                    put_str(v, buf);
                }
            }
        }
    }
}

/// Decode a query previously written by [`encode_query`].
pub fn decode_query(buf: &mut impl Buf) -> Option<Query> {
    if buf.remaining() < 10 {
        return None;
    }
    let id = QueryId(buf.get_u64());
    let n = buf.get_u16() as usize;
    let mut preds = Vec::with_capacity(n);
    for _ in 0..n {
        if buf.remaining() < 3 {
            return None;
        }
        let attr = AttrId(buf.get_u16());
        preds.push(match buf.get_u8() {
            PTAG_RANGE => Predicate::Range {
                attr,
                lo: get_f64(buf)?,
                hi: get_f64(buf)?,
            },
            PTAG_EQ => Predicate::Eq {
                attr,
                value: decode_value(buf)?,
            },
            PTAG_ONEOF => {
                if buf.remaining() < 2 {
                    return None;
                }
                let k = buf.get_u16() as usize;
                let mut values = Vec::with_capacity(k);
                for _ in 0..k {
                    values.push(get_str(buf)?);
                }
                Predicate::OneOf { attr, values }
            }
            _ => return None,
        });
    }
    Some(Query::new(id, preds))
}

fn put_str(s: &str, buf: &mut BytesMut) {
    // The wire format carries a u16 length prefix; longer strings would be
    // silently truncated to a corrupt stream, so reject them loudly.
    assert!(
        s.len() <= u16::MAX as usize,
        "string value exceeds the 64 KiB wire limit ({} bytes)",
        s.len()
    );
    buf.put_u16(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut impl Buf) -> Option<String> {
    if buf.remaining() < 2 {
        return None;
    }
    let len = buf.get_u16() as usize;
    if buf.remaining() < len {
        return None;
    }
    let mut bytes = vec![0u8; len];
    buf.copy_to_slice(&mut bytes);
    String::from_utf8(bytes).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::{AttrDef, Schema};
    use crate::query::QueryBuilder;
    use crate::record::RecordBuilder;

    fn schema() -> Schema {
        Schema::new(vec![
            AttrDef::categorical("type"),
            AttrDef::numeric("rate", 0.0, 1000.0),
            AttrDef::text("note"),
            AttrDef::timestamp("seen", 0, i64::MAX - 1),
        ])
        .unwrap()
    }

    fn sample_record() -> Record {
        RecordBuilder::new(&schema(), RecordId(42), OwnerId(3))
            .set("type", "camera")
            .set("rate", 99.5)
            .set("note", Value::Text("front door".into()))
            .set("seen", Value::Timestamp(1_700_000_000_000))
            .build()
            .unwrap()
    }

    #[test]
    fn record_roundtrip_and_size() {
        let r = sample_record();
        let mut buf = BytesMut::new();
        encode_record(&r, &mut buf);
        assert_eq!(buf.len(), r.wire_size());
        let back = decode_record(&mut buf.freeze()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn query_roundtrip_and_size() {
        let s = schema();
        let q = QueryBuilder::new(&s, QueryId(7))
            .eq("type", "camera")
            .range("rate", 10.0, 500.0)
            .one_of("type", &["camera", "mic"])
            .build();
        let mut buf = BytesMut::new();
        encode_query(&q, &mut buf);
        assert_eq!(buf.len(), q.wire_size());
        let back = decode_query(&mut buf.freeze()).unwrap();
        assert_eq!(back, q);
    }

    #[test]
    fn value_sizes() {
        assert_eq!(Value::Float(1.0).wire_size(), 9);
        assert_eq!(Value::Cat("MPEG2".into()).wire_size(), 8);
        assert_eq!(Value::Text(String::new()).wire_size(), 3);
    }

    #[test]
    fn truncated_input_yields_none() {
        let r = sample_record();
        let mut buf = BytesMut::new();
        encode_record(&r, &mut buf);
        let truncated = buf.freeze().slice(0..10);
        assert!(decode_record(&mut truncated.clone()).is_none());
    }

    #[test]
    fn vec_wire_size_includes_count_prefix() {
        let v = vec![Value::Float(0.0), Value::Float(1.0)];
        assert_eq!(v.wire_size(), 2 + 9 + 9);
    }
}
