//! Multi-dimensional conjunctive range queries.
//!
//! The paper's clients "submit multi-dimensional range queries to precisely
//! specify their interests" (§II); a query is a conjunction such as
//! `type=camera AND rate>150Kbps AND encoding=MPEG2` (§III-B). Each predicate
//! constrains one attribute; a record matches when every predicate holds.

use crate::attr::{AttrId, Schema};
use crate::record::Record;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Unique query identifier (assigned by the issuing client).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct QueryId(pub u64);

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// One predicate over a single attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    /// `lo <= value <= hi` over the numeric view of an ordered attribute.
    Range {
        /// Constrained attribute.
        attr: AttrId,
        /// Inclusive lower bound.
        lo: f64,
        /// Inclusive upper bound.
        hi: f64,
    },
    /// Exact equality (categorical/text, or an exact numeric point).
    Eq {
        /// Constrained attribute.
        attr: AttrId,
        /// Required value.
        value: Value,
    },
    /// Membership in an explicit set of categorical values.
    OneOf {
        /// Constrained attribute.
        attr: AttrId,
        /// Acceptable values.
        values: Vec<String>,
    },
}

impl Predicate {
    /// The attribute this predicate constrains.
    pub fn attr(&self) -> AttrId {
        match self {
            Predicate::Range { attr, .. }
            | Predicate::Eq { attr, .. }
            | Predicate::OneOf { attr, .. } => *attr,
        }
    }

    /// Evaluate against a record.
    pub fn matches(&self, record: &Record) -> bool {
        match self {
            Predicate::Range { attr, lo, hi } => match record.get_f64(*attr) {
                Some(v) => *lo <= v && v <= *hi,
                None => false,
            },
            Predicate::Eq { attr, value } => record.get(*attr) == value,
            Predicate::OneOf { attr, values } => match record.get(*attr).as_str() {
                Some(s) => values.iter().any(|v| v == s),
                None => false,
            },
        }
    }

    /// Fraction of the attribute's declared domain this predicate selects,
    /// assuming a uniform value distribution. Used by SWORD to size ring
    /// segments and by selectivity estimators. Non-range predicates report a
    /// nominal point selectivity of 0.
    pub fn domain_fraction(&self, schema: &Schema) -> f64 {
        match self {
            Predicate::Range { attr, lo, hi } => {
                let def = schema.def(*attr);
                let width = def.hi - def.lo;
                if width <= 0.0 {
                    return 0.0;
                }
                let clipped = (hi.min(def.hi) - lo.max(def.lo)).max(0.0);
                clipped / width
            }
            Predicate::Eq { .. } | Predicate::OneOf { .. } => 0.0,
        }
    }
}

/// Conjunction of predicates: a record matches when all predicates hold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// Query identifier.
    pub id: QueryId,
    /// Conjunctive predicates, at most one per attribute.
    predicates: Vec<Predicate>,
}

impl Query {
    /// Build from a predicate list. Predicates are kept verbatim as
    /// conjuncts — multiple predicates on the same attribute all must hold
    /// (an implicit intersection at evaluation time; no normalization is
    /// performed).
    pub fn new(id: QueryId, predicates: Vec<Predicate>) -> Self {
        Query { id, predicates }
    }

    /// Predicates in declaration order.
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }

    /// Number of queried dimensions (the paper's `q`).
    pub fn dimensionality(&self) -> usize {
        self.predicates.len()
    }

    /// True when every predicate matches the record.
    pub fn matches(&self, record: &Record) -> bool {
        self.predicates.iter().all(|p| p.matches(record))
    }

    /// Ids of all constrained attributes.
    pub fn attrs(&self) -> impl Iterator<Item = AttrId> + '_ {
        self.predicates.iter().map(|p| p.attr())
    }

    /// Estimated selectivity under independent uniform attributes: product
    /// of per-dimension domain fractions (0 for point predicates).
    pub fn uniform_selectivity(&self, schema: &Schema) -> f64 {
        self.predicates
            .iter()
            .map(|p| p.domain_fraction(schema))
            .product()
    }
}

/// Fluent query construction resolving attribute names via the schema.
#[derive(Debug)]
pub struct QueryBuilder<'a> {
    schema: &'a Schema,
    id: QueryId,
    predicates: Vec<Predicate>,
}

impl<'a> QueryBuilder<'a> {
    /// Start a query against `schema`.
    pub fn new(schema: &'a Schema, id: QueryId) -> Self {
        QueryBuilder {
            schema,
            id,
            predicates: Vec::new(),
        }
    }

    /// Add `lo <= name <= hi`. Panics on unknown attribute names: queries
    /// are authored against the shared schema, so a bad name is a bug.
    pub fn range(mut self, name: &str, lo: f64, hi: f64) -> Self {
        let attr = self
            .schema
            .id(name)
            .unwrap_or_else(|| panic!("unknown attribute {name:?}"));
        self.predicates.push(Predicate::Range { attr, lo, hi });
        self
    }

    /// Add `name > lo` (strict), clipped to the attribute's domain upper
    /// bound. Implemented as an inclusive range starting just above `lo`,
    /// so a value exactly equal to `lo` does not match.
    pub fn gt(self, name: &str, lo: f64) -> Self {
        let hi = self
            .schema
            .id(name)
            .map(|a| self.schema.def(a).hi)
            .unwrap_or(f64::INFINITY);
        self.range(name, lo.next_up(), hi)
    }

    /// Add `name = value` for categorical/text attributes.
    pub fn eq(mut self, name: &str, value: impl Into<Value>) -> Self {
        let attr = self
            .schema
            .id(name)
            .unwrap_or_else(|| panic!("unknown attribute {name:?}"));
        self.predicates.push(Predicate::Eq {
            attr,
            value: value.into(),
        });
        self
    }

    /// Add `name IN (values…)`.
    pub fn one_of(mut self, name: &str, values: &[&str]) -> Self {
        let attr = self
            .schema
            .id(name)
            .unwrap_or_else(|| panic!("unknown attribute {name:?}"));
        self.predicates.push(Predicate::OneOf {
            attr,
            values: values.iter().map(|s| s.to_string()).collect(),
        });
        self
    }

    /// Finish the query.
    pub fn build(self) -> Query {
        Query::new(self.id, self.predicates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrDef;
    use crate::record::{OwnerId, RecordBuilder, RecordId};

    fn schema() -> Schema {
        Schema::new(vec![
            AttrDef::categorical("type"),
            AttrDef::categorical("encoding"),
            AttrDef::numeric("rate", 0.0, 1000.0),
        ])
        .unwrap()
    }

    fn camera(rate: f64) -> (Schema, Record) {
        let s = schema();
        let r = RecordBuilder::new(&s, RecordId(1), OwnerId(0))
            .set("type", "camera")
            .set("encoding", "MPEG2")
            .set("rate", rate)
            .build()
            .unwrap();
        (s, r)
    }

    #[test]
    fn paper_example_query() {
        // type=camera AND rate>150Kbps AND encoding=MPEG2
        let (s, r) = camera(200.0);
        let q = QueryBuilder::new(&s, QueryId(1))
            .eq("type", "camera")
            .gt("rate", 150.0)
            .eq("encoding", "MPEG2")
            .build();
        assert!(q.matches(&r));
        assert_eq!(q.dimensionality(), 3);
    }

    #[test]
    fn range_excludes_below() {
        let (s, r) = camera(100.0);
        let q = QueryBuilder::new(&s, QueryId(1)).gt("rate", 150.0).build();
        assert!(!q.matches(&r));
    }

    #[test]
    fn eq_mismatch() {
        let (s, r) = camera(200.0);
        let q = QueryBuilder::new(&s, QueryId(1))
            .eq("encoding", "H264")
            .build();
        assert!(!q.matches(&r));
    }

    #[test]
    fn one_of_membership() {
        let (s, r) = camera(200.0);
        let q = QueryBuilder::new(&s, QueryId(1))
            .one_of("encoding", &["H264", "MPEG2"])
            .build();
        assert!(q.matches(&r));
        let q2 = QueryBuilder::new(&s, QueryId(2))
            .one_of("encoding", &["H264", "VP8"])
            .build();
        assert!(!q2.matches(&r));
    }

    #[test]
    fn empty_query_matches_everything() {
        let (_, r) = camera(1.0);
        let q = Query::new(QueryId(9), vec![]);
        assert!(q.matches(&r));
        assert_eq!(q.dimensionality(), 0);
    }

    #[test]
    fn range_predicate_on_categorical_is_false() {
        let (s, r) = camera(1.0);
        let q = Query::new(
            QueryId(3),
            vec![Predicate::Range {
                attr: s.id("type").unwrap(),
                lo: 0.0,
                hi: 1.0,
            }],
        );
        assert!(!q.matches(&r));
    }

    #[test]
    fn uniform_selectivity_is_product() {
        let s = Schema::unit_numeric(4);
        let q = QueryBuilder::new(&s, QueryId(1))
            .range("x0", 0.0, 0.25)
            .range("x1", 0.5, 1.0)
            .build();
        let sel = q.uniform_selectivity(&s);
        assert!((sel - 0.125).abs() < 1e-12);
    }

    #[test]
    fn domain_fraction_clips_to_domain() {
        let s = Schema::unit_numeric(1);
        let p = Predicate::Range {
            attr: AttrId(0),
            lo: -1.0,
            hi: 0.5,
        };
        assert!((p.domain_fraction(&s) - 0.5).abs() < 1e-12);
    }
}
