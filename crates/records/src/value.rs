//! Typed attribute values.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// One attribute value inside a resource record.
///
/// The paper's prototype stores "integer, double, timestamp, string,
/// categorical" columns (§V, Prototype Benchmarking); this enum mirrors that
/// set. Numeric simulation workloads use [`Value::Float`] in the unit range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Double-precision numeric value (simulation attributes live in \[0,1\]).
    Float(f64),
    /// Integer value.
    Int(i64),
    /// Free-form text (searchable by equality/prefix only).
    Text(String),
    /// Categorical value from a finite vocabulary (e.g. `encoding=MPEG2`).
    Cat(String),
    /// Milliseconds since the Unix epoch.
    Timestamp(i64),
}

impl Value {
    /// Numeric view of the value, if it has one.
    ///
    /// Integers and timestamps coerce to `f64` so one histogram
    /// implementation can summarize every ordered type.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            Value::Timestamp(t) => Some(*t as f64),
            Value::Text(_) | Value::Cat(_) => None,
        }
    }

    /// String view for categorical / text values.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Text(s) | Value::Cat(s) => Some(s),
            _ => None,
        }
    }

    /// True when the value is ordered (supports range predicates).
    pub fn is_ordered(&self) -> bool {
        !matches!(self, Value::Cat(_))
    }

    /// Total order among comparable values; `None` across incompatible types.
    ///
    /// Text compares lexicographically; every numeric kind compares through
    /// `f64`. NaN floats sort greater than all other numbers so ordering is
    /// total within the numeric class.
    pub fn partial_cmp_typed(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (Value::Cat(a), Value::Cat(b)) => Some(a.cmp(b)),
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => Some(total_f64_cmp(a, b)),
                _ => None,
            },
        }
    }
}

/// Total ordering over f64 with NaN sorted last.
pub(crate) fn total_f64_cmp(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => a.partial_cmp(&b).expect("both non-NaN"),
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Float(v) => write!(f, "{v}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Text(v) => write!(f, "{v:?}"),
            Value::Cat(v) => write!(f, "{v}"),
            Value::Timestamp(v) => write!(f, "@{v}"),
        }
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Cat(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Cat(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_coercion() {
        assert_eq!(Value::Int(7).as_f64(), Some(7.0));
        assert_eq!(Value::Timestamp(12).as_f64(), Some(12.0));
        assert_eq!(Value::Cat("x".into()).as_f64(), None);
    }

    #[test]
    fn ordered_flags() {
        assert!(Value::Float(0.5).is_ordered());
        assert!(Value::Text("a".into()).is_ordered());
        assert!(!Value::Cat("a".into()).is_ordered());
    }

    #[test]
    fn cross_type_numeric_ordering() {
        let a = Value::Int(1);
        let b = Value::Float(1.5);
        assert_eq!(a.partial_cmp_typed(&b), Some(Ordering::Less));
        assert_eq!(b.partial_cmp_typed(&a), Some(Ordering::Greater));
    }

    #[test]
    fn string_vs_numeric_incomparable() {
        let a = Value::Text("a".into());
        let b = Value::Float(1.0);
        assert_eq!(a.partial_cmp_typed(&b), None);
    }

    #[test]
    fn nan_sorts_last() {
        assert_eq!(total_f64_cmp(f64::NAN, 1.0), Ordering::Greater);
        assert_eq!(total_f64_cmp(1.0, f64::NAN), Ordering::Less);
        assert_eq!(total_f64_cmp(f64::NAN, f64::NAN), Ordering::Equal);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Cat("MPEG2".into()).to_string(), "MPEG2");
        assert_eq!(Value::Timestamp(5).to_string(), "@5");
        assert_eq!(Value::Text("hi".into()).to_string(), "\"hi\"");
    }
}
