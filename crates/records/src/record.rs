//! Resource records: one row of attribute values aligned to a schema.

use crate::attr::{AttrId, Schema};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Globally unique record identifier, assigned by the owning organization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RecordId(pub u64);

/// Identifier of a resource owner (an autonomous organization in the
/// federation, §II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct OwnerId(pub u32);

impl fmt::Display for RecordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for OwnerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// Errors raised while building a record.
#[derive(Debug, Clone, PartialEq)]
pub enum RecordError {
    /// A value's variant does not match the declared attribute type.
    TypeMismatch {
        /// Offending attribute.
        attr: AttrId,
        /// The rejected value.
        value: Value,
    },
    /// Not every schema attribute received a value.
    MissingAttr(AttrId),
    /// An ordered value lies outside the attribute's declared domain.
    OutOfDomain {
        /// Offending attribute.
        attr: AttrId,
        /// The out-of-range numeric view.
        value: f64,
    },
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordError::TypeMismatch { attr, value } => {
                write!(f, "value {value} does not match type of {attr}")
            }
            RecordError::MissingAttr(a) => write!(f, "attribute {a} has no value"),
            RecordError::OutOfDomain { attr, value } => {
                write!(f, "value {value} outside domain of {attr}")
            }
        }
    }
}

impl std::error::Error for RecordError {}

/// One resource description: a dense vector of values, one per schema
/// attribute, plus identity and ownership.
///
/// Records are *soft state* in ROADS — the owner re-exports them (or their
/// summary) periodically and stale entries expire (§III-B). Expiry is handled
/// by the summary layer's TTL wrapper; the record itself is plain data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Record {
    /// Unique id.
    pub id: RecordId,
    /// The organization that owns (and retains control of) this record.
    pub owner: OwnerId,
    /// Values, indexed by [`AttrId`].
    values: Vec<Value>,
}

impl Record {
    /// Construct a record, validating against the schema.
    pub fn new(
        schema: &Schema,
        id: RecordId,
        owner: OwnerId,
        values: Vec<Value>,
    ) -> Result<Self, RecordError> {
        if values.len() != schema.len() {
            let missing = AttrId(values.len().min(u16::MAX as usize) as u16);
            return Err(RecordError::MissingAttr(missing));
        }
        for (i, v) in values.iter().enumerate() {
            let attr = AttrId(i as u16);
            let def = schema.def(attr);
            if !def.ty.accepts(v) {
                return Err(RecordError::TypeMismatch {
                    attr,
                    value: v.clone(),
                });
            }
            if def.ty.is_ordered() && !matches!(def.ty, crate::attr::AttrType::Text) {
                let f = v.as_f64().expect("ordered non-text values are numeric");
                if f < def.lo || f > def.hi {
                    return Err(RecordError::OutOfDomain { attr, value: f });
                }
            }
        }
        Ok(Record { id, owner, values })
    }

    /// Construct without validation; used by trusted generators on hot paths.
    pub fn new_unchecked(id: RecordId, owner: OwnerId, values: Vec<Value>) -> Self {
        Record { id, owner, values }
    }

    /// Value of one attribute.
    pub fn get(&self, attr: AttrId) -> &Value {
        &self.values[attr.index()]
    }

    /// Numeric view of one attribute, if it has one.
    pub fn get_f64(&self, attr: AttrId) -> Option<f64> {
        self.values[attr.index()].as_f64()
    }

    /// All values in schema order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.values.len()
    }
}

/// Named-attribute record construction, resolving names through the schema.
#[derive(Debug)]
pub struct RecordBuilder<'a> {
    schema: &'a Schema,
    id: RecordId,
    owner: OwnerId,
    values: Vec<Option<Value>>,
}

impl<'a> RecordBuilder<'a> {
    /// Start building a record for `schema`.
    pub fn new(schema: &'a Schema, id: RecordId, owner: OwnerId) -> Self {
        RecordBuilder {
            schema,
            id,
            owner,
            values: vec![None; schema.len()],
        }
    }

    /// Set an attribute by name. Unknown names are ignored so callers can
    /// feed heterogeneous sources; validation happens in [`Self::build`].
    pub fn set(mut self, name: &str, value: impl Into<Value>) -> Self {
        if let Some(id) = self.schema.id(name) {
            self.values[id.index()] = Some(value.into());
        }
        self
    }

    /// Finish, requiring every attribute to have a value of the right type.
    pub fn build(self) -> Result<Record, RecordError> {
        let mut out = Vec::with_capacity(self.values.len());
        for (i, v) in self.values.into_iter().enumerate() {
            match v {
                Some(v) => out.push(v),
                None => return Err(RecordError::MissingAttr(AttrId(i as u16))),
            }
        }
        Record::new(self.schema, self.id, self.owner, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrDef;

    fn camera_schema() -> Schema {
        Schema::new(vec![
            AttrDef::categorical("type"),
            AttrDef::categorical("encoding"),
            AttrDef::numeric("rate", 0.0, 10_000.0),
        ])
        .unwrap()
    }

    #[test]
    fn builder_by_name() {
        let s = camera_schema();
        let r = RecordBuilder::new(&s, RecordId(1), OwnerId(7))
            .set("type", "camera")
            .set("encoding", "MPEG2")
            .set("rate", 100.0)
            .build()
            .unwrap();
        assert_eq!(r.get(s.id("encoding").unwrap()).as_str(), Some("MPEG2"));
        assert_eq!(r.get_f64(s.id("rate").unwrap()), Some(100.0));
        assert_eq!(r.owner, OwnerId(7));
    }

    #[test]
    fn missing_attr_rejected() {
        let s = camera_schema();
        let err = RecordBuilder::new(&s, RecordId(1), OwnerId(0))
            .set("type", "camera")
            .build()
            .unwrap_err();
        assert!(matches!(err, RecordError::MissingAttr(_)));
    }

    #[test]
    fn type_mismatch_rejected() {
        let s = camera_schema();
        let err = Record::new(
            &s,
            RecordId(1),
            OwnerId(0),
            vec![
                Value::Cat("camera".into()),
                Value::Float(1.0), // wrong: encoding is categorical
                Value::Float(5.0),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, RecordError::TypeMismatch { .. }));
    }

    #[test]
    fn out_of_domain_rejected() {
        let s = camera_schema();
        let err = Record::new(
            &s,
            RecordId(1),
            OwnerId(0),
            vec![
                Value::Cat("camera".into()),
                Value::Cat("MPEG2".into()),
                Value::Float(20_000.0),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, RecordError::OutOfDomain { .. }));
    }

    #[test]
    fn unknown_names_ignored_by_builder() {
        let s = camera_schema();
        let err = RecordBuilder::new(&s, RecordId(1), OwnerId(0))
            .set("type", "camera")
            .set("encoding", "MPEG2")
            .set("rate", 1.0)
            .set("nonexistent", 9.0)
            .build();
        assert!(err.is_ok());
    }
}
