//! Resource record model for ROADS (ICPP 2008).
//!
//! Federated resources are described by records of attribute–value pairs
//! (§II of the paper): a camera data source might be
//! `{type=camera, encoding=MPEG2, rate=100Kbps, resolution=640x480}`.
//! Users locate resources with multi-dimensional range queries.
//!
//! This crate provides:
//!
//! * [`Schema`] / [`AttrDef`] — the common attribute schema all federation
//!   participants agree on (the paper assumes schema mapping is solved and a
//!   shared schema exists).
//! * [`Value`] — typed attribute values (numeric, integer, string,
//!   categorical, timestamp).
//! * [`Record`] — one resource description, aligned to a schema.
//! * [`Query`] / [`Predicate`] — conjunctive multi-dimensional range queries.
//! * [`wire`] — byte-accurate encoding used by the simulators to account for
//!   message sizes exactly the way the paper's analysis does.

pub mod attr;
pub mod query;
pub mod record;
pub mod value;
pub mod wire;

pub use attr::{AttrDef, AttrId, AttrType, Schema, SchemaBuilder, SchemaError};
pub use query::{Predicate, Query, QueryBuilder, QueryId};
pub use record::{OwnerId, Record, RecordBuilder, RecordError, RecordId};
pub use value::Value;
pub use wire::WireSize;
