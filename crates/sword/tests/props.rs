//! Property tests: ring routing and segment coverage.

use proptest::prelude::*;
use roads_records::{AttrId, OwnerId, Predicate, Query, QueryId, Record, RecordId, Schema, Value};
use roads_sword::{MultiRing, SwordNetwork};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn routing_always_reaches_owner(
        n in 1usize..500,
        rings in 1usize..20,
        from_seed in any::<u32>(),
        p in 0.0f64..1.0,
    ) {
        let ring = MultiRing::new(n, rings);
        let from = from_seed as usize % n;
        let path = ring.route(from, p);
        let target = ring.owner_of(p);
        if from == target {
            prop_assert!(path.is_empty());
        } else {
            prop_assert_eq!(*path.last().unwrap(), target);
        }
        // Chord bound: strictly fewer hops than log2(n)+1.
        let bound = (usize::BITS - n.leading_zeros()) as usize + 1;
        prop_assert!(path.len() <= bound, "{} hops in an {}-ring", path.len(), n);
    }

    #[test]
    fn hash_keeps_attribute_arcs_disjoint(
        rings in 1usize..16,
        a in 0usize..16,
        b in 0usize..16,
        v in 0.0f64..1.0,
        w in 0.0f64..1.0,
    ) {
        let ring = MultiRing::new(64, rings);
        let (a, b) = (a % rings, b % rings);
        if a < b {
            prop_assert!(ring.hash(a, v) < ring.hash(b, w));
        }
        prop_assert!((0.0..1.0).contains(&ring.hash(a, v)));
    }

    #[test]
    fn segment_contains_every_matching_owner(
        n in 1usize..300,
        rings in 1usize..12,
        attr in 0usize..12,
        lo in 0.0f64..1.0,
        w in 0.0f64..1.0,
        samples in prop::collection::vec(0.0f64..1.0, 1..30),
    ) {
        let ring = MultiRing::new(n, rings);
        let attr = attr % rings;
        let hi = (lo + w).min(1.0);
        let seg = ring.segment(attr, lo, hi);
        for v in samples {
            if lo <= v && v <= hi {
                let owner = ring.owner_of(ring.hash(attr, v));
                prop_assert!(seg.contains(&owner), "owner of {v} not in segment");
            }
        }
    }

    #[test]
    fn sword_query_exact_vs_ground_truth(
        n in 2usize..40,
        per_node in 1usize..10,
        lo in 0.0f64..1.0,
        w in 0.0f64..0.5,
        start_seed in any::<u32>(),
    ) {
        let schema = Schema::unit_numeric(2);
        let records: Vec<Vec<Record>> = (0..n)
            .map(|s| {
                (0..per_node)
                    .map(|i| Record::new_unchecked(
                        RecordId((s * per_node + i) as u64),
                        OwnerId(s as u32),
                        vec![
                            Value::Float(((s * 13 + i * 7) % 100) as f64 / 100.0),
                            Value::Float(((s * 5 + i * 3) % 100) as f64 / 100.0),
                        ],
                    ))
                    .collect()
            })
            .collect();
        let net = SwordNetwork::build(schema, records);
        let delays = roads_netsim::DelaySpace::paper(n, 2);
        let hi = (lo + w).min(1.0);
        let q = Query::new(QueryId(0), vec![
            Predicate::Range { attr: AttrId(0), lo, hi },
            Predicate::Range { attr: AttrId(1), lo: 0.25, hi: 0.9 },
        ]);
        let gt = net.matching_records(&q);
        let out = net.execute_query(&delays, &q, start_seed as usize % n);
        prop_assert_eq!(out.matching_records, gt);
    }
}
