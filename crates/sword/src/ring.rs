//! The multi-ring identifier circle with locality-preserving placement and
//! Chord-style finger routing.
//!
//! All `n` servers sit on one identifier circle `[0, 1)`; server `i` owns
//! position `i / n`. The circle is split into `r` equal arcs, one per
//! searchable attribute (the paper's "multiple sub-rings in a single
//! ring"); a value `v ∈ \[0,1\]` of attribute `a` hashes to `(a + v) / r`,
//! which preserves locality: a value range maps to a contiguous arc inside
//! attribute `a`'s sub-ring.
//!
//! Each server keeps Chord fingers at power-of-two distances over the whole
//! circle, so any position is reachable in `O(log n)` greedy hops.

/// The identifier circle.
#[derive(Debug, Clone)]
pub struct MultiRing {
    n: usize,
    rings: usize,
    /// fingers[i][j] = index of successor(i + 2^j positions).
    fingers: Vec<Vec<usize>>,
}

impl MultiRing {
    /// Build the circle for `n` servers and `rings` attribute sub-rings.
    ///
    /// # Panics
    /// If `n == 0` or `rings == 0`.
    pub fn new(n: usize, rings: usize) -> Self {
        assert!(n > 0, "a ring needs at least one server");
        assert!(rings > 0, "at least one attribute ring");
        let levels = usize::BITS as usize - n.leading_zeros() as usize;
        let fingers = (0..n)
            .map(|i| {
                (0..levels.max(1))
                    .map(|j| (i + (1usize << j)) % n)
                    .collect()
            })
            .collect();
        MultiRing { n, rings, fingers }
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the ring holds no servers (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of attribute sub-rings (the paper's `r`).
    pub fn rings(&self) -> usize {
        self.rings
    }

    /// Circle position of server `i`.
    pub fn position_of(&self, server: usize) -> f64 {
        server as f64 / self.n as f64
    }

    /// Locality-preserving hash: value `v` (clamped into `\[0,1\]`) of
    /// attribute `attr` → circle position in attribute `attr`'s arc.
    pub fn hash(&self, attr: usize, v: f64) -> f64 {
        let a = attr % self.rings;
        let v = v.clamp(0.0, 1.0);
        // Map the closed value 1.0 just inside the arc so it does not bleed
        // into the next attribute's sub-ring.
        (a as f64 + v.min(1.0 - f64::EPSILON)) / self.rings as f64
    }

    /// The server owning circle position `p` (its successor): server `i`
    /// owns `[i/n, (i+1)/n)`.
    pub fn owner_of(&self, p: f64) -> usize {
        let p = p.rem_euclid(1.0);
        ((p * self.n as f64).floor() as usize).min(self.n - 1)
    }

    /// Clockwise successor of a server on the circle.
    pub fn successor(&self, server: usize) -> usize {
        (server + 1) % self.n
    }

    /// Clockwise distance (in positions) from server `a` to server `b`.
    fn clockwise(&self, a: usize, b: usize) -> usize {
        (b + self.n - a) % self.n
    }

    /// Greedy Chord routing from `from` to the owner of position `p`:
    /// repeatedly take the largest finger that does not overshoot. Returns
    /// the hop path, excluding the source, including the destination (empty
    /// when `from` already owns `p`).
    pub fn route(&self, from: usize, p: f64) -> Vec<usize> {
        let target = self.owner_of(p);
        let mut path = Vec::new();
        let mut cur = from;
        while cur != target {
            let remaining = self.clockwise(cur, target);
            // Largest finger ≤ remaining; finger j covers 2^j positions.
            let step = self.fingers[cur]
                .iter()
                .copied()
                .enumerate()
                .filter(|&(j, _)| (1usize << j) <= remaining)
                .map(|(_, f)| f)
                .next_back()
                .unwrap_or(self.successor(cur));
            cur = step;
            path.push(cur);
        }
        path
    }

    /// The contiguous segment of servers whose arcs intersect the hashed
    /// range `[lo, hi]` of attribute `attr`, in clockwise order.
    pub fn segment(&self, attr: usize, lo: f64, hi: f64) -> Vec<usize> {
        if lo > hi {
            return Vec::new();
        }
        let first = self.owner_of(self.hash(attr, lo));
        let last = self.owner_of(self.hash(attr, hi));
        let mut seg = vec![first];
        let mut cur = first;
        while cur != last {
            cur = self.successor(cur);
            seg.push(cur);
        }
        seg
    }

    /// Number of routing hops from `from` to the owner of `p` (path
    /// length).
    pub fn route_hops(&self, from: usize, p: f64) -> usize {
        self.route(from, p).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positions_partition_circle() {
        let r = MultiRing::new(10, 2);
        for i in 0..10 {
            assert_eq!(r.owner_of(r.position_of(i)), i);
            // A point just inside the arc still belongs to i.
            assert_eq!(r.owner_of(r.position_of(i) + 0.05), i);
        }
    }

    #[test]
    fn hash_is_locality_preserving() {
        let r = MultiRing::new(64, 4);
        // Within one attribute, order of values = order of positions.
        let (a, b, c) = (r.hash(1, 0.1), r.hash(1, 0.5), r.hash(1, 0.9));
        assert!(a < b && b < c);
        // Different attributes land in disjoint arcs.
        assert!(r.hash(0, 0.999) < r.hash(1, 0.0));
        assert!(r.hash(1, 0.999) < r.hash(2, 0.0));
        // Value 1.0 stays inside its attribute's arc.
        assert!(r.hash(1, 1.0) < 0.5);
    }

    #[test]
    fn route_reaches_target() {
        let r = MultiRing::new(100, 4);
        for from in [0usize, 13, 50, 99] {
            for p in [0.0, 0.26, 0.51, 0.77, 0.999] {
                let path = r.route(from, p);
                let target = r.owner_of(p);
                if from == target {
                    assert!(path.is_empty());
                } else {
                    assert_eq!(*path.last().unwrap(), target);
                }
            }
        }
    }

    #[test]
    fn route_is_logarithmic() {
        let r = MultiRing::new(1024, 4);
        let mut worst = 0;
        for from in (0..1024).step_by(37) {
            for p in [0.1, 0.35, 0.62, 0.9] {
                worst = worst.max(r.route_hops(from, p));
            }
        }
        // Chord bound: ≤ log2(n) hops.
        assert!(worst <= 10, "worst route {worst} hops in a 1024 ring");
    }

    #[test]
    fn segment_covers_hashed_range() {
        let r = MultiRing::new(64, 4);
        let seg = r.segment(2, 0.25, 0.75);
        // Attribute 2's arc is [0.5, 0.75); the hashed range spans
        // [0.5625, 0.6875] → 64 × 0.125 ≈ 8 or 9 servers.
        assert!(
            (8..=9).contains(&seg.len()),
            "segment {} servers",
            seg.len()
        );
        // Contiguity.
        for w in seg.windows(2) {
            assert_eq!(w[1], r.successor(w[0]));
        }
        // Segment servers hold every hashed value of the range.
        for v in [0.25, 0.4, 0.6, 0.75] {
            assert!(seg.contains(&r.owner_of(r.hash(2, v))));
        }
    }

    #[test]
    fn segment_size_proportional_to_nodes() {
        // The paper's Fig. 3 argument: for fixed selectivity the matching
        // segment grows linearly with n.
        // 64 servers / 16 rings = 4 per sub-ring → 0.25 of it ≈ 2 servers;
        // 640 servers → 40 per sub-ring → ≈ 11 servers.
        let small = MultiRing::new(64, 16).segment(0, 0.0, 0.25).len();
        let large = MultiRing::new(640, 16).segment(0, 0.0, 0.25).len();
        assert!(
            large as f64 >= 5.0 * small as f64,
            "segment should scale with n: {small} → {large}"
        );
    }

    #[test]
    fn empty_range_empty_segment() {
        let r = MultiRing::new(16, 2);
        assert!(r.segment(0, 0.7, 0.2).is_empty());
    }

    #[test]
    fn single_server_ring() {
        let r = MultiRing::new(1, 4);
        assert_eq!(r.owner_of(0.99), 0);
        assert!(r.route(0, 0.5).is_empty());
        assert_eq!(r.segment(3, 0.0, 1.0), vec![0]);
    }
}
