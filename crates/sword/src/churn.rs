//! Ring membership dynamics and their data-movement cost.
//!
//! The related-work comparison (§VI) argues DHT-based discovery pays for
//! churn: record placement is determined by the hash, so when a server
//! joins or leaves, the records on the affected arc must move — and ROADS
//! avoids this entirely because summaries are soft state that simply
//! refreshes. This module implements a dynamic identifier circle with
//! arbitrary join positions, successor-based ownership, on-demand finger
//! routing, and byte accounting for every ownership transfer.

use roads_records::{Record, WireSize};
use std::collections::BTreeMap;

/// Scale factor mapping circle positions `[0,1)` to integer keys (avoids
/// float keys in the ordered map).
const POS_SCALE: f64 = (1u64 << 52) as f64;

fn key_of(p: f64) -> u64 {
    ((p.rem_euclid(1.0)) * POS_SCALE) as u64
}

/// Cost of one membership event.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransferCost {
    /// Records that changed owner.
    pub records_moved: u64,
    /// Bytes of record payload transferred.
    pub bytes: u64,
}

/// A dynamic ring: servers at arbitrary positions, each owning the arc
/// from its predecessor (exclusive) to itself (inclusive) — standard
/// consistent hashing with successor ownership.
#[derive(Debug, Clone, Default)]
pub struct DynamicRing {
    /// position-key → server id.
    members: BTreeMap<u64, u32>,
    /// Records stored per owning member's position-key, each tagged with
    /// its own hash position so ownership can be re-derived on churn.
    stored: BTreeMap<u64, Vec<(f64, Record)>>,
}

impl DynamicRing {
    /// Empty ring.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of member servers.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when no servers are in the ring.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Server owning position `p`: the first member clockwise at or after
    /// `p` (wrapping).
    pub fn owner_of(&self, p: f64) -> Option<u32> {
        let k = key_of(p);
        self.members
            .range(k..)
            .next()
            .or_else(|| self.members.iter().next())
            .map(|(_, &s)| s)
    }

    fn owner_key_of(&self, p: f64) -> Option<u64> {
        let k = key_of(p);
        self.members
            .range(k..)
            .next()
            .or_else(|| self.members.iter().next())
            .map(|(&k, _)| k)
    }

    /// Add a server at position `p`. Records on the arc it takes over move
    /// from its successor; the returned cost accounts for them.
    pub fn join(&mut self, server: u32, p: f64) -> TransferCost {
        let k = key_of(p);
        let successor_key = self.owner_key_of(p);
        self.members.insert(k, server);
        self.stored.entry(k).or_default();
        let Some(succ) = successor_key else {
            return TransferCost::default(); // first member: nothing to move
        };
        if succ == k {
            return TransferCost::default();
        }
        // Records at the successor whose hash position now lands on the
        // new server move over.
        let succ_records = self.stored.remove(&succ).unwrap_or_default();
        let (mut keep, mut moved) = (Vec::new(), Vec::new());
        for (pos, rec) in succ_records {
            if self.owner_key_of(pos) == Some(k) {
                moved.push((pos, rec));
            } else {
                keep.push((pos, rec));
            }
        }
        let cost = TransferCost {
            records_moved: moved.len() as u64,
            bytes: moved.iter().map(|(_, r)| r.wire_size() as u64).sum(),
        };
        self.stored.insert(succ, keep);
        self.stored.entry(k).or_default().extend(moved);
        cost
    }

    /// Remove the server at position `p` (graceful leave). Its records move
    /// to its successor.
    pub fn leave(&mut self, p: f64) -> TransferCost {
        let k = key_of(p);
        if self.members.remove(&k).is_none() {
            return TransferCost::default();
        }
        let orphaned = self.stored.remove(&k).unwrap_or_default();
        let cost = TransferCost {
            records_moved: orphaned.len() as u64,
            bytes: orphaned.iter().map(|(_, r)| r.wire_size() as u64).sum(),
        };
        if let Some(succ) = self.owner_key_of(k as f64 / POS_SCALE) {
            self.stored.entry(succ).or_default().extend(orphaned);
        }
        cost
    }

    /// Remove whichever member currently owns position `p` (useful for
    /// random-victim churn experiments). No-op on an empty ring.
    pub fn leave_nearest(&mut self, p: f64) -> TransferCost {
        match self.owner_key_of(p) {
            Some(k) => self.leave(k as f64 / POS_SCALE),
            None => TransferCost::default(),
        }
    }

    /// Store a record at the owner of position `p`.
    pub fn store(&mut self, p: f64, record: Record) {
        if let Some(k) = self.owner_key_of(p) {
            self.stored.entry(k).or_default().push((p, record));
        }
    }

    /// Records currently stored at the server owning position `p`.
    pub fn stored_at(&self, p: f64) -> usize {
        self.owner_key_of(p)
            .and_then(|k| self.stored.get(&k))
            .map_or(0, Vec::len)
    }

    /// Total records in the ring.
    pub fn total_records(&self) -> usize {
        self.stored.values().map(Vec::len).sum()
    }

    /// Greedy clockwise routing from the member at `from_p` to the owner of
    /// `to_p`, halving the remaining arc per hop (Chord-style fingers
    /// simulated over the live membership). Returns the hop count.
    pub fn route_hops(&self, from_p: f64, to_p: f64) -> usize {
        let Some(target) = self.owner_key_of(to_p) else {
            return 0;
        };
        let Some(mut cur) = self.owner_key_of(from_p) else {
            return 0;
        };
        let mut hops = 0;
        let full = POS_SCALE as u64;
        while cur != target && hops < self.members.len() {
            let remaining = target.wrapping_sub(cur) % full;
            // Best finger: the farthest member within half the remaining
            // arc… iterate powers of two like a finger table.
            let mut step = remaining;
            let mut next = None;
            while step > 0 {
                let probe = (cur + step) % full;
                // Owner at or before `probe`, but after cur (clockwise).
                if let Some(k) = self.member_at_or_before(probe, cur, target) {
                    next = Some(k);
                    break;
                }
                step /= 2;
            }
            match next {
                Some(k) if k != cur => {
                    cur = k;
                    hops += 1;
                }
                _ => {
                    // Fall back to the immediate successor.
                    cur = self
                        .members
                        .range((cur + 1)..)
                        .next()
                        .or_else(|| self.members.iter().next())
                        .map(|(&k, _)| k)
                        .unwrap_or(target);
                    hops += 1;
                }
            }
        }
        hops
    }

    /// The farthest member at or before `probe` (clockwise from `cur`),
    /// not overshooting `target`.
    fn member_at_or_before(&self, probe: u64, cur: u64, target: u64) -> Option<u64> {
        let full = POS_SCALE as u64;
        let dist = |k: u64| k.wrapping_sub(cur) % full;
        let limit = dist(target);
        self.members
            .keys()
            .copied()
            .filter(|&k| k != cur && dist(k) <= dist(probe).min(limit) && dist(k) > 0)
            .max_by_key(|&k| dist(k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roads_records::{OwnerId, RecordId, Value};

    fn rec(id: u64) -> Record {
        Record::new_unchecked(RecordId(id), OwnerId(0), vec![Value::Float(0.5)])
    }

    fn ring_with(positions: &[f64]) -> DynamicRing {
        let mut r = DynamicRing::new();
        for (i, &p) in positions.iter().enumerate() {
            r.join(i as u32, p);
        }
        r
    }

    #[test]
    fn successor_ownership() {
        let r = ring_with(&[0.1, 0.5, 0.9]);
        assert_eq!(r.owner_of(0.05), Some(0));
        assert_eq!(r.owner_of(0.3), Some(1));
        assert_eq!(r.owner_of(0.7), Some(2));
        assert_eq!(r.owner_of(0.95), Some(0), "wraps to the first member");
    }

    #[test]
    fn join_moves_only_the_taken_arc() {
        let mut r = ring_with(&[0.5]);
        for i in 0..10 {
            r.store(i as f64 / 10.0, rec(i));
        }
        assert_eq!(r.stored_at(0.5), 10);
        // New member at 0.2 takes over (0.5, 0.2] wrapping — i.e. positions
        // 0.6..1.0 and 0.0..=0.2.
        let cost = r.join(1, 0.2);
        assert!(cost.records_moved > 0);
        assert_eq!(r.total_records(), 10, "no records lost");
        assert_eq!(
            r.stored_at(0.2) as u64,
            cost.records_moved,
            "moved records land on the new member"
        );
    }

    #[test]
    fn leave_hands_records_to_successor() {
        let mut r = ring_with(&[0.25, 0.75]);
        for i in 0..8 {
            r.store(i as f64 / 8.0, rec(i));
        }
        let before = r.total_records();
        let cost = r.leave(0.25);
        assert_eq!(r.len(), 1);
        assert_eq!(r.total_records(), before, "successor inherits everything");
        assert!(cost.records_moved > 0);
        assert!(cost.bytes > 0);
    }

    #[test]
    fn empty_ring_operations() {
        let mut r = DynamicRing::new();
        assert!(r.is_empty());
        assert_eq!(r.owner_of(0.3), None);
        assert_eq!(r.leave(0.3), TransferCost::default());
        let cost = r.join(0, 0.3);
        assert_eq!(cost, TransferCost::default());
        assert_eq!(r.owner_of(0.999), Some(0));
    }

    #[test]
    fn routing_reaches_owner_in_log_hops() {
        let mut r = DynamicRing::new();
        for i in 0..256u32 {
            r.join(i, (i as f64 * 0.618_033_988_75) % 1.0);
        }
        let mut worst = 0;
        for probe in [0.01, 0.2, 0.43, 0.77, 0.99] {
            for from in [0.0, 0.5] {
                worst = worst.max(r.route_hops(from, probe));
            }
        }
        assert!(worst <= 16, "route took {worst} hops in a 256-member ring");
    }

    #[test]
    fn churn_cost_scales_with_stored_records() {
        let mut small = ring_with(&[0.5]);
        let mut large = ring_with(&[0.5]);
        for i in 0..10 {
            small.store(i as f64 / 10.0, rec(i));
        }
        for i in 0..100 {
            large.store(i as f64 / 100.0, rec(i));
        }
        let c_small = small.join(1, 0.2);
        let c_large = large.join(1, 0.2);
        assert!(c_large.records_moved > 5 * c_small.records_moved);
    }
}
