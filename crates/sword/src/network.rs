//! A SWORD deployment: record registration, range-query execution, and the
//! byte accounting the paper compares ROADS against.

use crate::ring::MultiRing;
use roads_netsim::DelaySpace;
use roads_records::{wire::MSG_HEADER_BYTES, Predicate, Query, Record, Schema, WireSize};
use roads_telemetry::{Event, EventKind, Recorder, SpanId};

/// Update-round accounting for SWORD: every record re-registered in every
/// attribute ring, each copy routed in `O(log n)` hops (Eq. (2):
/// `O(r²·K·N·log n / tr)`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwordUpdateStats {
    /// Total bytes sent registering record copies.
    pub bytes: u64,
    /// Total routed messages (one per hop per copy).
    pub messages: u64,
    /// Record copies stored (r per record).
    pub copies: u64,
}

impl SwordUpdateStats {
    /// Per-second byte rate given the record refresh period `tr`.
    pub fn bytes_per_second(&self, tr_ms: u64) -> f64 {
        self.bytes as f64 / (tr_ms as f64 / 1000.0)
    }
}

/// Outcome of one SWORD query execution.
#[derive(Debug, Clone, PartialEq)]
pub struct SwordQueryOutcome {
    /// Time until the query reached the last segment server (ms).
    pub latency_ms: f64,
    /// Query-forwarding bytes (routing + segment sweep).
    pub query_bytes: u64,
    /// Query messages sent.
    pub query_messages: u64,
    /// Servers the query visited (routing relays + segment servers).
    pub servers_contacted: usize,
    /// Distinct matching records found (by id).
    pub matching_records: usize,
}

/// A converged SWORD deployment: the ring plus each server's stored record
/// copies.
///
/// Copies are stored as indices into the flat origin table — semantically
/// each server holds a full copy (and is billed for its bytes), but the
/// simulator does not duplicate the payload `r` times in memory.
#[derive(Debug, Clone)]
pub struct SwordNetwork {
    schema: Schema,
    ring: MultiRing,
    /// Record copies stored at each server, as indices into `origins`.
    stored: Vec<Vec<u32>>,
    /// Every original record with its origin server: (origin, record).
    origins: Vec<(usize, Record)>,
}

impl SwordNetwork {
    /// Build a deployment: `records_per_server[i]` are the records owned by
    /// server `i`; each record is registered in every attribute ring.
    pub fn build(schema: Schema, records_per_server: Vec<Vec<Record>>) -> Self {
        let n = records_per_server.len();
        assert!(n > 0, "SWORD needs at least one server");
        let r = schema.len();
        let ring = MultiRing::new(n, r);
        let mut stored: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut origins = Vec::new();
        for (origin, recs) in records_per_server.into_iter().enumerate() {
            for rec in recs {
                let idx = origins.len() as u32;
                for attr in 0..r {
                    if let Some(v) = rec.get_f64(roads_records::AttrId(attr as u16)) {
                        let home = ring.owner_of(ring.hash(attr, v));
                        stored[home].push(idx);
                    }
                }
                origins.push((origin, rec));
            }
        }
        SwordNetwork {
            schema,
            ring,
            stored,
            origins,
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The identifier circle.
    pub fn ring(&self) -> &MultiRing {
        &self.ring
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.stored.len()
    }

    /// True when the deployment has no servers.
    pub fn is_empty(&self) -> bool {
        self.stored.is_empty()
    }

    /// Record copies stored at one server.
    pub fn stored(&self, server: usize) -> impl Iterator<Item = &Record> {
        self.stored[server]
            .iter()
            .map(move |&i| &self.origins[i as usize].1)
    }

    /// Number of record copies stored at one server.
    pub fn stored_count(&self, server: usize) -> usize {
        self.stored[server].len()
    }

    /// Bytes of record copies stored at one server (Table I's `r·K·N/n`).
    pub fn storage_bytes(&self, server: usize) -> usize {
        self.stored(server).map(WireSize::wire_size).sum()
    }

    /// Worst per-server storage.
    pub fn max_storage_bytes(&self) -> usize {
        (0..self.len())
            .map(|s| self.storage_bytes(s))
            .max()
            .unwrap_or(0)
    }

    /// Account one full re-registration round: every record routed to every
    /// attribute ring from its origin server.
    pub fn update_round(&self) -> SwordUpdateStats {
        let mut stats = SwordUpdateStats::default();
        let r = self.schema.len();
        for (origin, rec) in &self.origins {
            let bytes_per_msg = (rec.wire_size() + MSG_HEADER_BYTES) as u64;
            for attr in 0..r {
                if let Some(v) = rec.get_f64(roads_records::AttrId(attr as u16)) {
                    // Routing to the home node forwards the record once per
                    // hop; a local home (0 hops) still costs the store
                    // message itself.
                    let hops = self
                        .ring
                        .route_hops(*origin, self.ring.hash(attr, v))
                        .max(1);
                    stats.bytes += bytes_per_msg * hops as u64;
                    stats.messages += hops as u64;
                    stats.copies += 1;
                }
            }
        }
        stats
    }

    /// Execute a range query starting at `start`.
    ///
    /// The query is resolved in one ring — the ring of its first range
    /// predicate ("for one particular query, the search is performed only
    /// in one ring"): route to the segment start via fingers, then sweep
    /// the segment sequentially; each segment server filters its local
    /// copies against *all* predicates.
    pub fn execute_query(
        &self,
        delays: &DelaySpace,
        query: &Query,
        start: usize,
    ) -> SwordQueryOutcome {
        self.execute_query_recorded(delays, query, start, None)
    }

    /// [`execute_query`](Self::execute_query) that additionally records
    /// the finger route and segment sweep into the flight recorder as a
    /// chain of nested `QueryHop` spans under a fresh trace (detail =
    /// local matches at each sweep server), bracketed by
    /// `QueryStart`/`QueryComplete` instants on the entry span.
    pub fn execute_query_recorded(
        &self,
        delays: &DelaySpace,
        query: &Query,
        start: usize,
        rec: Option<&Recorder>,
    ) -> SwordQueryOutcome {
        assert_eq!(self.len(), delays.len(), "delay space must cover servers");
        let msg_bytes = (query.wire_size() + MSG_HEADER_BYTES) as u64;
        let mut out = SwordQueryOutcome {
            latency_ms: 0.0,
            query_bytes: 0,
            query_messages: 0,
            servers_contacted: 0,
            matching_records: 0,
        };

        // The ring to search: first range predicate (SWORD's query planner
        // would pick one; the paper models exactly one ring per query).
        let Some((attr, lo, hi)) = query.predicates().iter().find_map(|p| match p {
            Predicate::Range { attr, lo, hi } => Some((attr.index(), *lo, *hi)),
            _ => None,
        }) else {
            // No range predicate: nothing to route on (SWORD requires one).
            return out;
        };

        // Phase 1: finger-route from the start server to the segment head.
        let head_pos = self.ring.hash(attr, lo.clamp(0.0, 1.0));
        let path = self.ring.route(start, head_pos);
        let mut now_ms = 0.0;
        let mut cur = start;
        let mut chain: Vec<(usize, f64, u64)> = vec![(start, 0.0, 0)];
        out.servers_contacted += 1; // the start server itself
        for &hop in &path {
            now_ms += delays.delay_ms(cur, hop);
            out.query_bytes += msg_bytes;
            out.query_messages += 1;
            out.servers_contacted += 1;
            cur = hop;
            chain.push((hop, now_ms, 0));
        }
        out.latency_ms = now_ms;

        // Phase 2: sweep the segment sequentially.
        let segment = self
            .ring
            .segment(attr, lo.clamp(0.0, 1.0), hi.clamp(0.0, 1.0));
        let mut seen = std::collections::HashSet::new();
        for (i, &server) in segment.iter().enumerate() {
            if i > 0 {
                now_ms += delays.delay_ms(segment[i - 1], server);
                out.query_bytes += msg_bytes;
                out.query_messages += 1;
                out.servers_contacted += 1;
            }
            out.latency_ms = out.latency_ms.max(now_ms);
            let mut local = 0u64;
            for &idx in &self.stored[server] {
                let rec = &self.origins[idx as usize].1;
                if query.matches(rec) && seen.insert(rec.id) {
                    out.matching_records += 1;
                    local += 1;
                }
            }
            // The segment head is the route destination and is never
            // counted as a separate contact; fold its matches into the
            // last chain entry so hops mirror `servers_contacted`.
            match chain.last_mut() {
                Some(last) if i == 0 || last.0 == server => last.2 += local,
                _ => chain.push((server, now_ms, local)),
            }
        }
        if let Some(r) = rec {
            record_sword_chain(r, &chain, &out);
        }
        out
    }

    /// Ground truth over the original records (not the ring copies).
    pub fn matching_records(&self, query: &Query) -> usize {
        self.origins
            .iter()
            .filter(|(_, r)| query.matches(r))
            .count()
    }

    /// Execute with SWORD's query planner: resolve in the ring of the
    /// *most selective* range predicate (narrowest hashed segment) instead
    /// of blindly taking the first. Still one ring per query, as the paper
    /// models; the planner only shortens the sequential sweep.
    pub fn execute_query_planned(
        &self,
        delays: &DelaySpace,
        query: &Query,
        start: usize,
    ) -> SwordQueryOutcome {
        let best = query
            .predicates()
            .iter()
            .filter_map(|p| match p {
                Predicate::Range { attr, lo, hi } => {
                    let seg =
                        self.ring
                            .segment(attr.index(), lo.clamp(0.0, 1.0), hi.clamp(0.0, 1.0));
                    Some((seg.len(), p.clone()))
                }
                _ => None,
            })
            .min_by_key(|(len, _)| *len);
        let Some((_, planned)) = best else {
            return self.execute_query(delays, query, start);
        };
        // Re-order the query so the planned predicate leads; matching
        // semantics are conjunction-order independent.
        let mut preds = vec![planned.clone()];
        preds.extend(
            query
                .predicates()
                .iter()
                .filter(|p| **p != planned)
                .cloned(),
        );
        let reordered = Query::new(query.id, preds);
        self.execute_query(delays, &reordered, start)
    }
}

/// Emit one executed SWORD query into the flight recorder: a nested
/// `QueryHop` span chain following the finger route and segment sweep
/// (each span runs from its server's arrival to query completion), with
/// `QueryStart`/`QueryComplete` instants on the entry span.
fn record_sword_chain(rec: &Recorder, chain: &[(usize, f64, u64)], out: &SwordQueryOutcome) {
    let Some(&(entry, _, _)) = chain.first() else {
        return;
    };
    let trace = rec.next_trace_id();
    let to_us = |ms: f64| (ms * 1000.0).round().max(0.0) as u64;
    let end_us = to_us(out.latency_ms);
    let mut parent = SpanId::NONE;
    let mut entry_span = SpanId::NONE;
    for (i, &(node, at_ms, matches)) in chain.iter().enumerate() {
        let at_us = to_us(at_ms);
        let dur_us = end_us.saturating_sub(at_us).max(1);
        let span = rec.record_span(
            trace,
            parent,
            node as u32,
            EventKind::QueryHop,
            at_us,
            dur_us,
            matches,
        );
        if i == 0 {
            entry_span = span;
            rec.record(Event {
                at_us,
                dur_us: 0,
                node: node as u32,
                trace,
                span,
                parent: SpanId::NONE,
                kind: EventKind::QueryStart,
                detail: trace.0,
            });
        }
        parent = span;
    }
    rec.record(Event {
        at_us: end_us,
        dur_us: 0,
        node: entry as u32,
        trace,
        span: entry_span,
        parent: SpanId::NONE,
        kind: EventKind::QueryComplete,
        detail: out.matching_records as u64,
    });
}

/// Record one SWORD query outcome into `reg` under the `sword.*`
/// namespace — the same instruments the ROADS engine records under
/// `roads.*`, so figure exports compare the systems field by field.
pub fn record_query_outcome(reg: &roads_telemetry::Registry, out: &SwordQueryOutcome) {
    reg.counter("sword.queries").inc();
    reg.counter("sword.query_messages").add(out.query_messages);
    reg.counter("sword.query_bytes").add(out.query_bytes);
    reg.counter("sword.matching_records")
        .add(out.matching_records as u64);
    reg.histogram("sword.query_latency_ms")
        .record(out.latency_ms);
    reg.histogram("sword.servers_contacted")
        .record(out.servers_contacted as f64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use roads_records::{OwnerId, QueryBuilder, QueryId, RecordId, Value};

    fn records(n: usize, per_node: usize, attrs: usize) -> Vec<Vec<Record>> {
        (0..n)
            .map(|s| {
                (0..per_node)
                    .map(|i| {
                        let idx = s * per_node + i;
                        Record::new_unchecked(
                            RecordId(idx as u64),
                            OwnerId(s as u32),
                            (0..attrs)
                                .map(|a| Value::Float(((idx * 7 + a * 13) % 100) as f64 / 100.0))
                                .collect(),
                        )
                    })
                    .collect()
            })
            .collect()
    }

    fn network(n: usize, per_node: usize, attrs: usize) -> SwordNetwork {
        SwordNetwork::build(Schema::unit_numeric(attrs), records(n, per_node, attrs))
    }

    #[test]
    fn recorded_query_forms_a_span_chain() {
        use roads_telemetry::{span_tree_root, trace_events, Recorder, TraceId};
        let net = network(20, 10, 4);
        let delays = DelaySpace::paper(20, 3);
        let q = QueryBuilder::new(net.schema(), QueryId(1))
            .range("x0", 0.2, 0.4)
            .build();
        let rec = Recorder::new(1024);
        let plain = net.execute_query(&delays, &q, 5);
        let recorded = net.execute_query_recorded(&delays, &q, 5, Some(&rec));
        assert_eq!(plain, recorded, "recording must not change the outcome");
        let events = rec.events();
        let tev = trace_events(&events, TraceId(1));
        let root = span_tree_root(&tev, TraceId(1)).expect("valid span tree");
        let root_ev = tev
            .iter()
            .find(|e| e.span == root && e.kind == EventKind::QueryHop)
            .unwrap();
        assert_eq!(root_ev.node, 5, "chain is rooted at the start server");
        let hops = tev.iter().filter(|e| e.kind == EventKind::QueryHop).count();
        assert_eq!(hops, recorded.servers_contacted);
        assert!(tev
            .iter()
            .any(|e| e.kind == EventKind::QueryComplete
                && e.detail == recorded.matching_records as u64));
        // Each hop's local-match detail sums to the total.
        let sum: u64 = tev
            .iter()
            .filter(|e| e.kind == EventKind::QueryHop)
            .map(|e| e.detail)
            .sum();
        assert_eq!(sum, recorded.matching_records as u64);
    }

    #[test]
    fn every_record_stored_r_times() {
        let net = network(20, 10, 4);
        let total: usize = (0..20).map(|s| net.stored_count(s)).sum();
        assert_eq!(total, 20 * 10 * 4, "each record in each of the 4 rings");
    }

    #[test]
    fn query_finds_all_matches() {
        let net = network(20, 10, 4);
        let delays = DelaySpace::paper(20, 3);
        let q = QueryBuilder::new(net.schema(), QueryId(1))
            .range("x0", 0.2, 0.4)
            .range("x1", 0.0, 1.0)
            .build();
        let gt = net.matching_records(&q);
        assert!(gt > 0);
        for start in [0usize, 7, 19] {
            let out = net.execute_query(&delays, &q, start);
            assert_eq!(out.matching_records, gt, "start={start}");
        }
    }

    #[test]
    fn no_range_predicate_returns_empty() {
        let net = network(10, 5, 4);
        let delays = DelaySpace::paper(10, 3);
        let q = Query::new(QueryId(2), vec![]);
        let out = net.execute_query(&delays, &q, 0);
        assert_eq!(out.matching_records, 0);
        assert_eq!(out.query_messages, 0);
    }

    #[test]
    fn update_round_scales_with_records_and_rings() {
        let base = network(20, 10, 4).update_round();
        let more_recs = network(20, 20, 4).update_round();
        let more_rings = network(20, 10, 8).update_round();
        assert_eq!(base.copies, 20 * 10 * 4);
        assert!(more_recs.bytes >= 2 * base.bytes - base.bytes / 4);
        // Doubling rings doubles copies AND roughly doubles the record
        // size, so bytes grow ~4× (the analysis' r² factor).
        assert!(
            more_rings.bytes as f64 >= 3.0 * base.bytes as f64,
            "r² growth: {} vs {}",
            more_rings.bytes,
            base.bytes
        );
    }

    #[test]
    fn latency_grows_linearly_with_n() {
        // Fixed selectivity ⇒ segment ∝ n ⇒ sequential sweep ∝ n.
        let q_of = |net: &SwordNetwork| {
            QueryBuilder::new(net.schema(), QueryId(3))
                .range("x0", 0.1, 0.6)
                .build()
        };
        let small = network(64, 2, 4);
        let large = network(512, 2, 4);
        let d_small = DelaySpace::paper(64, 9);
        let d_large = DelaySpace::paper(512, 9);
        let l_small = small.execute_query(&d_small, &q_of(&small), 0).latency_ms;
        let l_large = large.execute_query(&d_large, &q_of(&large), 0).latency_ms;
        assert!(
            l_large > 3.0 * l_small,
            "expected ~8× linear growth, got {l_small} → {l_large}"
        );
    }

    #[test]
    fn storage_accounting_positive_everywhere_loaded() {
        let net = network(10, 50, 4);
        assert!(net.max_storage_bytes() > 0);
        let total: usize = (0..10).map(|s| net.storage_bytes(s)).sum();
        // 10×50 records × 4 copies × wire size (4 floats ≈ 50 B).
        assert!(total > 10 * 50 * 4 * 40);
    }

    #[test]
    fn planner_picks_narrowest_segment() {
        let net = network(64, 5, 4);
        let delays = DelaySpace::paper(64, 2);
        // First predicate is wide (would sweep 1/4 of its sub-ring),
        // second is a near-point (1-2 servers).
        let q = QueryBuilder::new(net.schema(), QueryId(9))
            .range("x0", 0.0, 1.0)
            .range("x1", 0.40, 0.41)
            .build();
        let naive = net.execute_query(&delays, &q, 7);
        let planned = net.execute_query_planned(&delays, &q, 7);
        assert_eq!(
            planned.matching_records,
            net.matching_records(&q),
            "planning must not change results"
        );
        assert!(
            planned.servers_contacted < naive.servers_contacted,
            "planned {} vs naive {}",
            planned.servers_contacted,
            naive.servers_contacted
        );
    }

    #[test]
    fn segment_sweep_counts_contacts() {
        let net = network(64, 1, 4);
        let delays = DelaySpace::paper(64, 1);
        let q = QueryBuilder::new(net.schema(), QueryId(4))
            .range("x0", 0.0, 1.0)
            .build();
        let out = net.execute_query(&delays, &q, 32);
        // Full range of one attribute = the whole sub-ring = 16 servers.
        assert!(out.servers_contacted >= 16);
    }
}
