//! SWORD baseline: a DHT-based resource discovery design.
//!
//! Re-implementation of the comparator the ROADS paper evaluates against
//! (§IV, §V; Oppenheimer et al., "Design and implementation tradeoffs for
//! wide-area resource discovery", HPDC 2005):
//!
//! * Servers are organized into multiple DHT rings, **one per searchable
//!   attribute**; the paper's footnote treats them as "multiple sub-rings
//!   in a single ring", which is exactly how [`ring::MultiRing`] lays them
//!   out on one identifier circle.
//! * The hash function **preserves data locality**: a value `v ∈ \[0,1\]` of
//!   attribute `a` maps to position `(a + v) / r` on the circle, so a range
//!   of values is a contiguous arc.
//! * A resource owner registers each record **once per ring** (`r` copies),
//!   routed via Chord-style fingers in `O(log n)` hops.
//! * A multi-dimensional range query is resolved **in one ring only**: it
//!   is routed to the segment matching the queried range of that ring's
//!   attribute, then forwarded sequentially through the segment's servers,
//!   each of which filters its local records against *all* predicates.

pub mod churn;
pub mod network;
pub mod ring;

pub use churn::{DynamicRing, TransferCost};
pub use network::{record_query_outcome, SwordNetwork, SwordQueryOutcome, SwordUpdateStats};
pub use ring::MultiRing;
