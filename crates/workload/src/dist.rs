//! Attribute value distributions.
//!
//! "Each record has 16 attributes, with 4 different types of distribution:
//! uniform (uniformly distributed in \[0,1\]), range (uniformly distributed in
//! ranges of length 0.5), Gaussian and Pareto (scaled and truncated into
//! \[0,1\])." (§V)

use rand::Rng;

/// One attribute's value distribution. All variants produce values in
/// `\[0, 1\]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Distribution {
    /// Uniform over `\[0, 1\]`.
    Uniform,
    /// Uniform over `[start, start + len]` (clipped at 1); the paper's
    /// "range" family uses `len = 0.5` with a per-node or per-attribute
    /// start.
    Range {
        /// Window start in `[0, 1 - len]` (larger values are clipped).
        start: f64,
        /// Window length.
        len: f64,
    },
    /// Gaussian with the given mean and standard deviation, truncated into
    /// `\[0, 1\]` by resampling (up to a bound, then clamping).
    Gaussian {
        /// Mean.
        mu: f64,
        /// Standard deviation.
        sigma: f64,
    },
    /// Pareto with shape `alpha` and scale `x_m`, mapped into `\[0, 1\]` by
    /// `(x_m / x)`-style inversion so mass concentrates near 0 with a heavy
    /// tail toward 1 — "scaled and truncated into \[0,1\]".
    Pareto {
        /// Tail index (smaller = heavier tail).
        alpha: f64,
    },
    /// A Pareto sample scaled into the window `[start, start + len]` — the
    /// "scaled" reading of the paper's "scaled and truncated into \[0,1\]",
    /// with the window chosen per data owner.
    ParetoScaled {
        /// Tail index.
        alpha: f64,
        /// Window start.
        start: f64,
        /// Window length.
        len: f64,
    },
}

impl Distribution {
    /// The paper's "range" family with its default window length of 0.5 and
    /// a window start chosen by the caller.
    pub fn range05(start: f64) -> Self {
        Distribution::Range { start, len: 0.5 }
    }

    /// Default Gaussian used by the harness: centered with moderate spread.
    pub fn default_gaussian() -> Self {
        Distribution::Gaussian {
            mu: 0.5,
            sigma: 0.15,
        }
    }

    /// Default Pareto used by the harness.
    pub fn default_pareto() -> Self {
        Distribution::Pareto { alpha: 1.5 }
    }

    /// Draw one value in `\[0, 1\]`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            Distribution::Uniform => rng.gen::<f64>(),
            Distribution::Range { start, len } => {
                let lo = start.clamp(0.0, 1.0);
                let hi = (start + len).clamp(lo, 1.0);
                if hi <= lo {
                    lo
                } else {
                    rng.gen_range(lo..hi)
                }
            }
            Distribution::Gaussian { mu, sigma } => {
                // Truncate by resampling; clamp after a few failures so the
                // draw always terminates.
                for _ in 0..16 {
                    let v = mu + sigma * gaussian(rng);
                    if (0.0..=1.0).contains(&v) {
                        return v;
                    }
                }
                (mu + sigma * gaussian(rng)).clamp(0.0, 1.0)
            }
            Distribution::Pareto { alpha } => {
                // Standard Pareto X = x_m / U^(1/alpha) with x_m = 1, mapped
                // into (0,1] via 1/X; density alpha·x^(alpha-1).
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                u.powf(1.0 / alpha)
            }
            Distribution::ParetoScaled { alpha, start, len } => {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                (start + len * u.powf(1.0 / alpha)).clamp(0.0, 1.0)
            }
        }
    }

    /// Draw `n` values.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Standard normal via Box–Muller.
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(12345)
    }

    fn assert_unit_range(vals: &[f64]) {
        for &v in vals {
            assert!((0.0..=1.0).contains(&v), "value {v} escapes [0,1]");
        }
    }

    #[test]
    fn uniform_in_unit_range_with_uniform_spread() {
        let vals = Distribution::Uniform.sample_n(&mut rng(), 10_000);
        assert_unit_range(&vals);
        let mean: f64 = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn range_confined_to_window() {
        let d = Distribution::range05(0.3);
        let vals = d.sample_n(&mut rng(), 5_000);
        assert_unit_range(&vals);
        for &v in &vals {
            assert!((0.3..0.8).contains(&v), "value {v} escapes window");
        }
    }

    #[test]
    fn range_window_clipped_at_one() {
        let d = Distribution::range05(0.8);
        let vals = d.sample_n(&mut rng(), 1_000);
        for &v in &vals {
            assert!((0.8..=1.0).contains(&v));
        }
    }

    #[test]
    fn degenerate_range_returns_start() {
        let d = Distribution::Range {
            start: 1.0,
            len: 0.5,
        };
        assert_eq!(d.sample(&mut rng()), 1.0);
    }

    #[test]
    fn gaussian_truncated_and_centered() {
        let d = Distribution::default_gaussian();
        let vals = d.sample_n(&mut rng(), 10_000);
        assert_unit_range(&vals);
        let mean: f64 = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
        // Concentration: most mass within one sigma of the mean.
        let near = vals.iter().filter(|&&v| (v - 0.5).abs() < 0.15).count();
        assert!(near as f64 / vals.len() as f64 > 0.6);
    }

    #[test]
    fn pareto_right_skewed_in_unit_range() {
        let d = Distribution::default_pareto();
        let vals = d.sample_n(&mut rng(), 10_000);
        assert_unit_range(&vals);
        // X = U^(1/alpha) has density alpha·x^(alpha-1) on (0,1]:
        // E[X] = alpha/(alpha+1) = 0.6 for alpha = 1.5, skewed toward 1.
        let mean: f64 = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!((mean - 0.6).abs() < 0.02, "mean={mean}");
        let above_median_point = vals.iter().filter(|&&v| v > 0.5).count();
        assert!(above_median_point as f64 / vals.len() as f64 > 0.6);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = Distribution::Uniform.sample_n(&mut rng(), 10);
        let b = Distribution::Uniform.sample_n(&mut rng(), 10);
        assert_eq!(a, b);
    }
}
