//! Mixed-type record generation for the prototype benchmark.
//!
//! The paper's testbed stores "200K resource records at each server, and
//! each record has 120 attributes, including integer, double, timestamp,
//! string, categorical types", populated from "both synthesized and real
//! data collected from the Distributed System S platform". This module
//! synthesizes records with that column mix over a configurable schema so
//! the prototype runtime exercises every index type of the record store.

use crate::dist::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use roads_records::{AttrDef, OwnerId, Record, RecordId, Schema, Value};

/// Column-type mix of a mixed schema. Counts are per record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MixedSchemaConfig {
    /// Double-precision columns (metrics: rates, loads, capacities).
    pub doubles: usize,
    /// Integer columns (counts, ports, priorities).
    pub integers: usize,
    /// Timestamp columns (created/updated/observed times).
    pub timestamps: usize,
    /// Categorical columns (types, codecs, regions).
    pub categoricals: usize,
    /// Free-text columns (names, descriptions).
    pub texts: usize,
}

impl MixedSchemaConfig {
    /// The paper's 120-attribute mix, split in proportions typical for a
    /// resource catalog: 60 doubles, 24 ints, 12 timestamps, 18
    /// categoricals, 6 texts.
    pub fn paper_120() -> Self {
        MixedSchemaConfig {
            doubles: 60,
            integers: 24,
            timestamps: 12,
            categoricals: 18,
            texts: 6,
        }
    }

    /// A small mix for tests.
    pub fn small() -> Self {
        MixedSchemaConfig {
            doubles: 4,
            integers: 2,
            timestamps: 1,
            categoricals: 2,
            texts: 1,
        }
    }

    /// Total columns.
    pub fn arity(&self) -> usize {
        self.doubles + self.integers + self.timestamps + self.categoricals + self.texts
    }
}

/// Build the mixed schema: `d0..`, `i0..`, `t0..`, `c0..`, `s0..` columns.
pub fn mixed_schema(cfg: &MixedSchemaConfig) -> Schema {
    let mut defs = Vec::with_capacity(cfg.arity());
    for i in 0..cfg.doubles {
        defs.push(AttrDef::numeric(format!("d{i}"), 0.0, 1.0));
    }
    for i in 0..cfg.integers {
        defs.push(AttrDef::integer(format!("i{i}"), 0, 1_000_000));
    }
    for i in 0..cfg.timestamps {
        // One year of millisecond timestamps starting 2008-01-01.
        defs.push(AttrDef::timestamp(
            format!("t{i}"),
            1_199_145_600_000,
            1_230_768_000_000,
        ));
    }
    for i in 0..cfg.categoricals {
        defs.push(AttrDef::categorical(format!("c{i}")));
    }
    for i in 0..cfg.texts {
        defs.push(AttrDef::text(format!("s{i}")));
    }
    Schema::new(defs).expect("generated names are unique")
}

/// Vocabularies for categorical columns: column `c{i}` draws from
/// `vocab_size` values `v{i}_{k}`, Zipf-ish skewed toward low `k`.
fn categorical_value(col: usize, vocab_size: usize, rng: &mut StdRng) -> String {
    // Squaring a uniform skews toward 0 — a cheap Zipf stand-in.
    let u: f64 = rng.gen();
    let k = ((u * u) * vocab_size as f64) as usize;
    format!("v{col}_{k}")
}

/// Generate `records_per_owner` mixed records for each of `owners` owners.
///
/// Per-owner heterogeneity mirrors [`crate::gen::generate_node_records`]:
/// each owner's numeric columns cluster in owner-specific windows, its
/// categorical columns favour an owner-specific slice of the vocabulary —
/// federated organizations have *different* resources, which is what lets
/// summaries prune.
pub fn generate_mixed_records(
    cfg: &MixedSchemaConfig,
    owners: usize,
    records_per_owner: usize,
    vocab_size: usize,
    seed: u64,
) -> Vec<Vec<Record>> {
    // Values are built positionally in the same order `mixed_schema`
    // declares its columns; the tests cross-validate every record against
    // the schema's declared types and domains.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut next_id = 0u64;
    (0..owners)
        .map(|owner| {
            // Owner-specific numeric windows.
            let windows: Vec<Distribution> = (0..cfg.doubles)
                .map(|_| Distribution::Range {
                    start: rng.gen_range(0.0..0.7),
                    len: 0.3,
                })
                .collect();
            let int_base: i64 = rng.gen_range(0..900_000);
            let ts_base: i64 = rng.gen_range(1_199_145_600_000..1_228_000_000_000);
            let cat_offset = rng.gen_range(0..vocab_size.max(1));
            (0..records_per_owner)
                .map(|_| {
                    let mut values = Vec::with_capacity(cfg.arity());
                    for w in &windows {
                        values.push(Value::Float(w.sample(&mut rng)));
                    }
                    for _ in 0..cfg.integers {
                        values.push(Value::Int(
                            (int_base + rng.gen_range(0..100_000)).min(1_000_000),
                        ));
                    }
                    for _ in 0..cfg.timestamps {
                        values.push(Value::Timestamp(
                            (ts_base + rng.gen_range(0..2_500_000_000i64)).min(1_230_768_000_000),
                        ));
                    }
                    for c in 0..cfg.categoricals {
                        let mut v = categorical_value(c, vocab_size, &mut rng);
                        // Shift into the owner's favoured slice half the time.
                        if rng.gen_bool(0.5) {
                            v = format!("v{c}_{}", cat_offset % vocab_size.max(1));
                        }
                        values.push(Value::Cat(v));
                    }
                    for s in 0..cfg.texts {
                        values.push(Value::Text(format!(
                            "resource-{owner}-{s}-{}",
                            rng.gen::<u16>()
                        )));
                    }
                    let id = RecordId(next_id);
                    next_id += 1;
                    Record::new_unchecked(id, OwnerId(owner as u32), values)
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use roads_records::AttrType;

    #[test]
    fn paper_mix_has_120_columns() {
        let cfg = MixedSchemaConfig::paper_120();
        assert_eq!(cfg.arity(), 120);
        let schema = mixed_schema(&cfg);
        assert_eq!(schema.len(), 120);
    }

    #[test]
    fn schema_types_match_mix() {
        let cfg = MixedSchemaConfig::small();
        let schema = mixed_schema(&cfg);
        let count = |ty: AttrType| schema.iter().filter(|(_, d)| d.ty == ty).count();
        assert_eq!(count(AttrType::Numeric), 4);
        assert_eq!(count(AttrType::Integer), 2);
        assert_eq!(count(AttrType::Timestamp), 1);
        assert_eq!(count(AttrType::Categorical), 2);
        assert_eq!(count(AttrType::Text), 1);
    }

    #[test]
    fn records_validate_against_schema() {
        let cfg = MixedSchemaConfig::small();
        let schema = mixed_schema(&cfg);
        let sets = generate_mixed_records(&cfg, 4, 25, 16, 9);
        assert_eq!(sets.len(), 4);
        for (owner, set) in sets.iter().enumerate() {
            assert_eq!(set.len(), 25);
            for r in set {
                assert_eq!(r.owner.0, owner as u32);
                assert_eq!(r.arity(), schema.len());
                for (attr, def) in schema.iter() {
                    assert!(
                        def.ty.accepts(r.get(attr)),
                        "column {} holds wrong type",
                        def.name
                    );
                    if def.ty.is_ordered() && def.ty != AttrType::Text {
                        let v = r.get_f64(attr).unwrap();
                        assert!(v >= def.lo && v <= def.hi, "{} out of domain", def.name);
                    }
                }
            }
        }
    }

    #[test]
    fn deterministic() {
        let cfg = MixedSchemaConfig::small();
        let a = generate_mixed_records(&cfg, 2, 10, 8, 1);
        let b = generate_mixed_records(&cfg, 2, 10, 8, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn categorical_vocab_bounded() {
        let cfg = MixedSchemaConfig::small();
        let sets = generate_mixed_records(&cfg, 2, 100, 8, 2);
        let schema = mixed_schema(&cfg);
        let c0 = schema.id("c0").unwrap();
        for r in sets.iter().flatten() {
            let v = r.get(c0).as_str().unwrap();
            assert!(v.starts_with("v0_"));
            let k: usize = v[3..].parse().unwrap();
            assert!(k < 8, "vocab index {k} out of range");
        }
    }
}
