//! Record-set and query-set generators.

use crate::dist::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use roads_records::{OwnerId, Predicate, Query, QueryId, Record, RecordId, Schema, Value};

/// The four distribution families of the paper's default workload, assigned
/// to attribute quartiles: the first quarter of the attributes is uniform,
/// then range, then Gaussian, then Pareto.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Uniform in \[0,1\].
    Uniform,
    /// Uniform in a per-node window of length 0.5.
    Range,
    /// Truncated Gaussian.
    Gaussian,
    /// Scaled/truncated Pareto.
    Pareto,
}

/// Family of attribute `idx` among `total` attributes.
pub fn family_of(idx: usize, total: usize) -> Family {
    let q = (total.max(4)) / 4;
    match idx / q.max(1) {
        0 => Family::Uniform,
        1 => Family::Range,
        2 => Family::Gaussian,
        _ => Family::Pareto,
    }
}

/// Record-generation parameters; defaults are the paper's (§V): 320 nodes,
/// 500 records each, 16 attributes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecordWorkloadConfig {
    /// Number of nodes (each is a resource owner and a server).
    pub nodes: usize,
    /// Records held by each node.
    pub records_per_node: usize,
    /// Attributes per record.
    pub attrs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RecordWorkloadConfig {
    fn default() -> Self {
        RecordWorkloadConfig {
            nodes: 320,
            records_per_node: 500,
            attrs: 16,
            seed: 0xD15C0,
        }
    }
}

/// The default simulation schema: `attrs` unit-range numeric attributes.
pub fn default_schema(attrs: usize) -> Schema {
    Schema::unit_numeric(attrs)
}

/// Independent RNG stream `index` of `seed`.
///
/// Every node (and every query) draws from its own stream instead of one
/// RNG threaded sequentially through the whole workload, so stream `i` is
/// a pure function of `(seed, i)`: growing the node count, reordering
/// generation, or generating nodes in parallel never perturbs the data of
/// the nodes already there. The seed/index pair is mixed through a
/// splitmix64 finalizer so neighbouring indices start in uncorrelated
/// states rather than `seed`, `seed+1`, ….
pub fn rng_stream(seed: u64, index: u64) -> StdRng {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

/// Per-node distribution assignment under the default workload.
///
/// The federated setting makes servers heterogeneous: each organization's
/// data clusters differently (the paper's Fig. 9 models the same effect
/// with per-server windows as narrow as 1/320). The range family gets a
/// per-node window start (explicit in the paper); the Gaussian family a
/// per-node mean; the Pareto family a per-node tail index. Uniform
/// attributes remain globally uniform as the paper states.
fn node_distributions(cfg: &RecordWorkloadConfig, rng: &mut StdRng) -> Vec<Distribution> {
    (0..cfg.attrs)
        .map(|a| match family_of(a, cfg.attrs) {
            Family::Uniform => Distribution::Uniform,
            Family::Range => Distribution::range05(rng.gen_range(0.0..0.5)),
            Family::Gaussian => Distribution::Gaussian {
                mu: rng.gen_range(0.1..0.9),
                sigma: 0.03,
            },
            Family::Pareto => Distribution::ParetoScaled {
                alpha: rng.gen_range(1.2..3.0),
                start: rng.gen_range(0.0..0.9),
                len: 0.1,
            },
        })
        .collect()
}

/// Generate the default workload: one record set per node, each node from
/// its own [`rng_stream`].
pub fn generate_node_records(cfg: &RecordWorkloadConfig) -> Vec<Vec<Record>> {
    (0..cfg.nodes)
        .map(|node| {
            let mut rng = rng_stream(cfg.seed, node as u64);
            let dists = node_distributions(cfg, &mut rng);
            (0..cfg.records_per_node)
                .map(|i| {
                    let values = dists
                        .iter()
                        .map(|d| Value::Float(d.sample(&mut rng)))
                        .collect();
                    let id = RecordId((node * cfg.records_per_node + i) as u64);
                    Record::new_unchecked(id, OwnerId(node as u32), values)
                })
                .collect()
        })
        .collect()
}

/// Generate the Fig. 9 workload: "for each of the first 8 attributes, we let
/// the resource data of each server distribute within a range of length
/// `Of/nodes`, randomly located within \[0,1\]". Remaining attributes follow
/// the default families.
pub fn generate_overlap_records(
    cfg: &RecordWorkloadConfig,
    overlap_factor: f64,
) -> Vec<Vec<Record>> {
    let window = overlap_factor / cfg.nodes as f64;
    let confined = cfg.attrs.min(8);
    (0..cfg.nodes)
        .map(|node| {
            let mut rng = rng_stream(cfg.seed ^ 0x0F0F, node as u64);
            let default_dists = node_distributions(cfg, &mut rng);
            let dists: Vec<Distribution> = (0..cfg.attrs)
                .map(|a| {
                    if a < confined {
                        Distribution::Range {
                            start: rng.gen_range(0.0..(1.0 - window).max(f64::MIN_POSITIVE)),
                            len: window,
                        }
                    } else {
                        default_dists[a]
                    }
                })
                .collect();
            (0..cfg.records_per_node)
                .map(|i| {
                    let values = dists
                        .iter()
                        .map(|d| Value::Float(d.sample(&mut rng)))
                        .collect();
                    let id = RecordId((node * cfg.records_per_node + i) as u64);
                    Record::new_unchecked(id, OwnerId(node as u32), values)
                })
                .collect()
        })
        .collect()
}

/// Query-generation parameters; defaults are the paper's: 500 queries of 6
/// dimensions, each a range of length 0.25.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryWorkloadConfig {
    /// Number of queries.
    pub count: usize,
    /// Dimensions per query.
    pub dims: usize,
    /// Range length per dimension.
    pub range_len: f64,
    /// Number of nodes (for start-node assignment).
    pub nodes: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for QueryWorkloadConfig {
    fn default() -> Self {
        QueryWorkloadConfig {
            count: 500,
            dims: 6,
            range_len: 0.25,
            nodes: 320,
            seed: 0x9E12,
        }
    }
}

/// Pick `dims` distinct attribute indexes matching the paper's composition:
/// for 6 dims, "two on uniform attributes, two on range attributes, one each
/// on Gaussian and Pareto"; other dimensionalities cycle through the
/// families in that ratio (U,R,G,P,U,R,…).
fn pick_query_attrs(dims: usize, attrs: usize, rng: &mut StdRng) -> Vec<usize> {
    let q = (attrs / 4).max(1);
    let family_range = |f: usize| -> (usize, usize) {
        let start = f * q;
        let end = if f == 3 { attrs } else { (f + 1) * q };
        (start, end.min(attrs))
    };
    // Family order for successive dims: U,R,G,P,U,R,G,P,…
    let mut chosen = Vec::with_capacity(dims);
    let mut used = vec![false; attrs];
    for d in 0..dims {
        let f = d % 4;
        let (lo, hi) = family_range(f);
        // Pick an unused attribute from the family; fall back to any unused.
        let candidates: Vec<usize> = (lo..hi).filter(|&a| !used[a]).collect();
        let pick = if candidates.is_empty() {
            let any: Vec<usize> = (0..attrs).filter(|&a| !used[a]).collect();
            if any.is_empty() {
                break;
            }
            any[rng.gen_range(0..any.len())]
        } else {
            candidates[rng.gen_range(0..candidates.len())]
        };
        used[pick] = true;
        chosen.push(pick);
    }
    chosen
}

/// Generate `(query, start_node)` pairs under the paper's default
/// composition, each query from its own [`rng_stream`].
pub fn generate_queries(schema: &Schema, cfg: &QueryWorkloadConfig) -> Vec<(Query, usize)> {
    (0..cfg.count)
        .map(|i| {
            let mut rng = rng_stream(cfg.seed, i as u64);
            let attrs = pick_query_attrs(cfg.dims, schema.len(), &mut rng);
            let preds = attrs
                .iter()
                .map(|&a| {
                    let def = schema.def(roads_records::AttrId(a as u16));
                    let span = def.hi - def.lo;
                    let len = cfg.range_len * span;
                    let start = def.lo + rng.gen_range(0.0..(span - len).max(f64::MIN_POSITIVE));
                    Predicate::Range {
                        attr: roads_records::AttrId(a as u16),
                        lo: start,
                        hi: start + len,
                    }
                })
                .collect();
            let start_node = rng.gen_range(0..cfg.nodes.max(1));
            (Query::new(QueryId(i as u64), preds), start_node)
        })
        .collect()
}

/// Queries with an explicit dimensionality (Fig. 6/7 sweep), keeping every
/// other parameter at the paper defaults.
pub fn queries_with_dims(
    schema: &Schema,
    dims: usize,
    count: usize,
    nodes: usize,
    seed: u64,
) -> Vec<(Query, usize)> {
    generate_queries(
        schema,
        &QueryWorkloadConfig {
            count,
            dims,
            nodes,
            seed,
            ..QueryWorkloadConfig::default()
        },
    )
}

/// Exact selectivity of `query` over `records` (fraction of matching
/// records).
pub fn exact_selectivity(query: &Query, records: &[&Record]) -> f64 {
    if records.is_empty() {
        return 0.0;
    }
    let hits = records.iter().filter(|r| query.matches(r)).count();
    hits as f64 / records.len() as f64
}

/// Build query groups calibrated to target selectivities (Fig. 11: 0.01 %,
/// 0.03 %, 0.1 %, 0.3 %, 1 %, 3 %; 200 queries per group).
///
/// Each query is centered on a uniformly chosen record (so it always has at
/// least one hit) and its per-dimension range length is scaled by binary
/// search until the measured selectivity lands within ±30 % of the target
/// (or the search exhausts its iterations — the closest scale wins).
pub fn selectivity_query_groups(
    schema: &Schema,
    records: &[Vec<Record>],
    targets_pct: &[f64],
    per_group: usize,
    dims: usize,
    seed: u64,
) -> Vec<(f64, Vec<Query>)> {
    let all: Vec<&Record> = records.iter().flatten().collect();
    let mut next_qid = 0u64;
    targets_pct
        .iter()
        .map(|&target_pct| {
            let target = target_pct / 100.0;
            let queries = (0..per_group)
                .map(|_| {
                    let mut rng = rng_stream(seed, next_qid);
                    let center = all[rng.gen_range(0..all.len())];
                    let attrs = pick_query_attrs(dims, schema.len(), &mut rng);
                    let q =
                        calibrate_query(schema, &all, center, &attrs, target, QueryId(next_qid));
                    next_qid += 1;
                    q
                })
                .collect();
            (target_pct, queries)
        })
        .collect()
}

/// Binary-search a per-dimension half-width multiplier to approach the
/// target selectivity for a query centered on `center`.
fn calibrate_query(
    schema: &Schema,
    all: &[&Record],
    center: &Record,
    attrs: &[usize],
    target: f64,
    qid: QueryId,
) -> Query {
    let build = |scale: f64| -> Query {
        let preds = attrs
            .iter()
            .map(|&a| {
                let id = roads_records::AttrId(a as u16);
                let def = schema.def(id);
                let c = center.get_f64(id).unwrap_or((def.lo + def.hi) / 2.0);
                let half = scale * (def.hi - def.lo) / 2.0;
                Predicate::Range {
                    attr: id,
                    lo: (c - half).max(def.lo),
                    hi: (c + half).min(def.hi),
                }
            })
            .collect();
        Query::new(qid, preds)
    };
    // Selectivity grows monotonically with scale; search scale in (0, 1].
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    let mut best = build(0.5);
    let mut best_err = f64::INFINITY;
    for _ in 0..18 {
        let mid = (lo + hi) / 2.0;
        let q = build(mid);
        let sel = exact_selectivity(&q, all);
        let err = (sel - target).abs();
        if err < best_err {
            best_err = err;
            best = q;
        }
        if (sel - target).abs() / target.max(1e-12) < 0.3 {
            break;
        }
        if sel < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> RecordWorkloadConfig {
        RecordWorkloadConfig {
            nodes: 8,
            records_per_node: 50,
            attrs: 16,
            seed: 7,
        }
    }

    #[test]
    fn family_quartiles() {
        assert_eq!(family_of(0, 16), Family::Uniform);
        assert_eq!(family_of(3, 16), Family::Uniform);
        assert_eq!(family_of(4, 16), Family::Range);
        assert_eq!(family_of(8, 16), Family::Gaussian);
        assert_eq!(family_of(12, 16), Family::Pareto);
        assert_eq!(family_of(15, 16), Family::Pareto);
    }

    #[test]
    fn record_counts_and_ownership() {
        let cfg = small_cfg();
        let sets = generate_node_records(&cfg);
        assert_eq!(sets.len(), 8);
        for (node, set) in sets.iter().enumerate() {
            assert_eq!(set.len(), 50);
            for r in set {
                assert_eq!(r.owner, OwnerId(node as u32));
                assert_eq!(r.arity(), 16);
                for v in r.values() {
                    let f = v.as_f64().unwrap();
                    assert!((0.0..=1.0).contains(&f));
                }
            }
        }
        // Globally unique record ids.
        let mut ids: Vec<u64> = sets.iter().flatten().map(|r| r.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 8 * 50);
    }

    #[test]
    fn deterministic_generation() {
        let cfg = small_cfg();
        let a = generate_node_records(&cfg);
        let b = generate_node_records(&cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn node_streams_are_independent_of_node_count() {
        // Stream-per-node means node k's records are a pure function of
        // (seed, k): growing the federation must not rewrite the data of
        // the nodes already in it.
        let big = generate_node_records(&small_cfg());
        let small = generate_node_records(&RecordWorkloadConfig {
            nodes: 3,
            ..small_cfg()
        });
        assert_eq!(&big[..3], &small[..]);
        // (No such property for the overlap workload: its window length is
        // overlap_factor / nodes, so the distributions themselves depend on
        // the node count.)
    }

    #[test]
    fn query_streams_are_independent_of_query_count() {
        let schema = default_schema(16);
        let cfg = QueryWorkloadConfig {
            count: 40,
            nodes: 8,
            seed: 77,
            ..Default::default()
        };
        let big = generate_queries(&schema, &cfg);
        let small = generate_queries(&schema, &QueryWorkloadConfig { count: 15, ..cfg });
        assert_eq!(&big[..15], &small[..]);
    }

    #[test]
    fn rng_streams_diverge() {
        // Adjacent indices (and adjacent seeds) must not produce
        // correlated streams.
        let mut a = rng_stream(42, 0);
        let mut b = rng_stream(42, 1);
        let mut c = rng_stream(43, 0);
        let da: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let db: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let dc: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_ne!(da, db);
        assert_ne!(da, dc);
        assert_ne!(db, dc);
    }

    #[test]
    fn overlap_confines_first_eight_attrs() {
        let cfg = small_cfg();
        let of = 2.0;
        let window = of / cfg.nodes as f64;
        let sets = generate_overlap_records(&cfg, of);
        for set in &sets {
            for a in 0..8u16 {
                let vals: Vec<f64> = set
                    .iter()
                    .map(|r| r.get_f64(roads_records::AttrId(a)).unwrap())
                    .collect();
                let (min, max) = vals
                    .iter()
                    .fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
                assert!(
                    max - min <= window + 1e-9,
                    "attr {a}: spread {} > window {window}",
                    max - min
                );
            }
        }
    }

    #[test]
    fn default_queries_have_six_dims_of_right_length() {
        let schema = default_schema(16);
        let qs = generate_queries(
            &schema,
            &QueryWorkloadConfig {
                count: 50,
                nodes: 8,
                ..Default::default()
            },
        );
        assert_eq!(qs.len(), 50);
        for (q, start) in &qs {
            assert_eq!(q.dimensionality(), 6);
            assert!(*start < 8);
            for p in q.predicates() {
                if let Predicate::Range { lo, hi, .. } = p {
                    assert!((hi - lo - 0.25).abs() < 1e-9);
                    assert!(*lo >= 0.0 && *hi <= 1.0 + 1e-9);
                }
            }
            // No duplicate attributes within a query.
            let mut attrs: Vec<_> = q.attrs().collect();
            attrs.sort();
            attrs.dedup();
            assert_eq!(attrs.len(), 6);
        }
    }

    #[test]
    fn dims_sweep_produces_requested_dims() {
        let schema = default_schema(16);
        for dims in 2..=8 {
            let qs = queries_with_dims(&schema, dims, 10, 8, 3);
            for (q, _) in &qs {
                assert_eq!(q.dimensionality(), dims);
            }
        }
    }

    #[test]
    fn query_family_composition_default() {
        let schema = default_schema(16);
        let qs = generate_queries(
            &schema,
            &QueryWorkloadConfig {
                count: 20,
                nodes: 4,
                ..Default::default()
            },
        );
        for (q, _) in &qs {
            let mut fam = [0usize; 4];
            for a in q.attrs() {
                match family_of(a.index(), 16) {
                    Family::Uniform => fam[0] += 1,
                    Family::Range => fam[1] += 1,
                    Family::Gaussian => fam[2] += 1,
                    Family::Pareto => fam[3] += 1,
                }
            }
            assert_eq!(fam, [2, 2, 1, 1], "two uniform, two range, one each G/P");
        }
    }

    #[test]
    fn selectivity_calibration_reaches_targets() {
        let cfg = RecordWorkloadConfig {
            nodes: 16,
            records_per_node: 200,
            attrs: 16,
            seed: 5,
        };
        let records = generate_node_records(&cfg);
        let schema = default_schema(16);
        let groups = selectivity_query_groups(&schema, &records, &[1.0, 3.0], 5, 6, 11);
        let all: Vec<&Record> = records.iter().flatten().collect();
        for (target_pct, queries) in &groups {
            assert_eq!(queries.len(), 5);
            for q in queries {
                let sel = exact_selectivity(q, &all) * 100.0;
                // Centered on a real record → never empty.
                assert!(sel > 0.0);
                // Within a factor of ~3 of the target (coarse but monotone).
                assert!(
                    sel / target_pct < 4.0 && target_pct / sel.max(1e-9) < 4.0,
                    "target {target_pct}% got {sel}%"
                );
            }
        }
    }

    #[test]
    fn exact_selectivity_empty_records() {
        let schema = default_schema(4);
        let q = Query::new(QueryId(0), vec![]);
        assert_eq!(exact_selectivity(&q, &[]), 0.0);
        let _ = schema;
    }
}
