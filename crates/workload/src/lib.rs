//! Workload generation for the ROADS evaluation (§V).
//!
//! The paper's default simulation workload: 320 nodes × 500 records, each
//! record with 16 numeric attributes drawn from four distribution families
//! ("uniform, range, Gaussian and Pareto, scaled and truncated into \[0,1\]"),
//! and 500 six-dimensional queries (two uniform dims, two range dims, one
//! Gaussian, one Pareto), each dimension a range of length 0.25, each query
//! initiated from a randomly chosen node.
//!
//! * [`dist`] — the four attribute distributions, implemented directly
//!   (Box–Muller Gaussian, inverse-CDF Pareto) so no extra sampling crate is
//!   needed.
//! * [`gen`] — record-set and query-set generators, including the
//!   overlap-factor placement of Fig. 9 and the selectivity-calibrated query
//!   groups of Fig. 11.

pub mod dist;
pub mod gen;
pub mod mixed;

pub use dist::Distribution;
pub use gen::{
    default_schema, exact_selectivity, family_of, generate_node_records, generate_overlap_records,
    generate_queries, queries_with_dims, rng_stream, selectivity_query_groups, Family,
    QueryWorkloadConfig, RecordWorkloadConfig,
};
pub use mixed::{generate_mixed_records, mixed_schema, MixedSchemaConfig};
