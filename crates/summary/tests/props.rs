//! Property tests: the summary layer's core invariants.
//!
//! The one invariant everything in ROADS rests on: summaries are
//! *conservative* — a summary may claim a match that is not there (false
//! positive), but it must never hide one that is (false negative). A false
//! negative would silently drop resources from the federation.

use proptest::prelude::*;
use roads_records::{
    AttrId, OwnerId, Predicate, Query, QueryId, Record, RecordId, Schema, Value, WireSize,
};
use roads_summary::{BloomFilter, CategoricalMode, Histogram, Summary, SummaryConfig, ValueSet};

fn unit_records(values: &[Vec<f64>]) -> Vec<Record> {
    values
        .iter()
        .enumerate()
        .map(|(i, vs)| {
            Record::new_unchecked(
                RecordId(i as u64),
                OwnerId(0),
                vs.iter().map(|&v| Value::Float(v)).collect(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn histogram_no_false_negatives(
        values in prop::collection::vec(0.0f64..1.0, 1..100),
        lo in 0.0f64..1.0,
        w in 0.0f64..1.0,
        m in 1usize..64,
    ) {
        let h = Histogram::from_values(0.0, 1.0, m, values.iter().copied());
        let hi = (lo + w).min(1.0);
        let any_in_range = values.iter().any(|&v| lo <= v && v <= hi);
        if any_in_range {
            prop_assert!(h.may_match_range(lo, hi), "false negative at m={m}");
        }
    }

    #[test]
    fn histogram_merge_equals_union(
        a in prop::collection::vec(0.0f64..1.0, 0..50),
        b in prop::collection::vec(0.0f64..1.0, 0..50),
        m in 1usize..32,
    ) {
        let mut ha = Histogram::from_values(0.0, 1.0, m, a.iter().copied());
        let hb = Histogram::from_values(0.0, 1.0, m, b.iter().copied());
        ha.merge(&hb).unwrap();
        let union = Histogram::from_values(0.0, 1.0, m, a.iter().chain(b.iter()).copied());
        prop_assert_eq!(ha.buckets(), union.buckets());
    }

    #[test]
    fn histogram_merge_commutative(
        a in prop::collection::vec(0.0f64..1.0, 0..40),
        b in prop::collection::vec(0.0f64..1.0, 0..40),
    ) {
        let base_a = Histogram::from_values(0.0, 1.0, 16, a.iter().copied());
        let base_b = Histogram::from_values(0.0, 1.0, 16, b.iter().copied());
        let mut ab = base_a.clone();
        ab.merge(&base_b).unwrap();
        let mut ba = base_b.clone();
        ba.merge(&base_a).unwrap();
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn histogram_estimate_bounded_by_total(
        values in prop::collection::vec(0.0f64..1.0, 0..80),
        lo in 0.0f64..1.0,
        w in 0.0f64..1.0,
    ) {
        let h = Histogram::from_values(0.0, 1.0, 20, values.iter().copied());
        let est = h.estimate_count(lo, lo + w);
        prop_assert!(est >= -1e-9);
        prop_assert!(est <= h.total() as f64 + 1e-9);
    }

    #[test]
    fn bloom_no_false_negatives(keys in prop::collection::vec("[a-z0-9]{1,12}", 1..60)) {
        let mut f = BloomFilter::new(2048, 4);
        for k in &keys {
            f.insert(k);
        }
        for k in &keys {
            prop_assert!(f.contains(k));
        }
    }

    #[test]
    fn bloom_merge_superset(
        a in prop::collection::vec("[a-z]{1,8}", 0..30),
        b in prop::collection::vec("[a-z]{1,8}", 0..30),
    ) {
        let mut fa = BloomFilter::new(1024, 3);
        let mut fb = BloomFilter::new(1024, 3);
        for k in &a { fa.insert(k); }
        for k in &b { fb.insert(k); }
        fa.merge(&fb).unwrap();
        for k in a.iter().chain(b.iter()) {
            prop_assert!(fa.contains(k));
        }
    }

    #[test]
    fn value_set_merge_is_union(
        a in prop::collection::vec("[a-z]{1,6}", 0..20),
        b in prop::collection::vec("[a-z]{1,6}", 0..20),
    ) {
        let mut sa = ValueSet::from_values(a.clone());
        let sb = ValueSet::from_values(b.clone());
        sa.merge(&sb);
        for k in a.iter().chain(b.iter()) {
            prop_assert!(sa.contains(k));
        }
        let expected: std::collections::BTreeSet<&String> = a.iter().chain(b.iter()).collect();
        prop_assert_eq!(sa.len(), expected.len());
    }

    #[test]
    fn summary_no_false_negatives_multidim(
        rows in prop::collection::vec(
            prop::collection::vec(0.0f64..1.0, 3..=3), 1..60),
        q0 in (0.0f64..1.0, 0.0f64..0.5),
        q1 in (0.0f64..1.0, 0.0f64..0.5),
        buckets in 2usize..128,
    ) {
        let schema = Schema::unit_numeric(3);
        let records = unit_records(&rows);
        let cfg = SummaryConfig::with_buckets(buckets);
        let summary = Summary::from_records(&schema, &cfg, &records);
        let query = Query::new(QueryId(0), vec![
            Predicate::Range { attr: AttrId(0), lo: q0.0, hi: (q0.0 + q0.1).min(1.0) },
            Predicate::Range { attr: AttrId(2), lo: q1.0, hi: (q1.0 + q1.1).min(1.0) },
        ]);
        if records.iter().any(|r| query.matches(r)) {
            prop_assert!(summary.may_match(&query), "conjunctive false negative");
        }
    }

    #[test]
    fn summary_merge_conservative_over_parts(
        rows_a in prop::collection::vec(prop::collection::vec(0.0f64..1.0, 2..=2), 1..30),
        rows_b in prop::collection::vec(prop::collection::vec(0.0f64..1.0, 2..=2), 1..30),
        lo in 0.0f64..1.0,
        w in 0.0f64..0.5,
    ) {
        let schema = Schema::unit_numeric(2);
        let cfg = SummaryConfig::with_buckets(32);
        let a = Summary::from_records(&schema, &cfg, &unit_records(&rows_a));
        let b = Summary::from_records(&schema, &cfg, &unit_records(&rows_b));
        let merged = Summary::aggregate(&schema, &cfg, [&a, &b]).unwrap();
        let query = Query::new(QueryId(0), vec![Predicate::Range {
            attr: AttrId(0), lo, hi: (lo + w).min(1.0),
        }]);
        // Anything either part may match, the merge may match too — the
        // bottom-up aggregation can only widen, never narrow.
        if a.may_match(&query) || b.may_match(&query) {
            prop_assert!(merged.may_match(&query));
        }
        prop_assert_eq!(merged.record_count(), a.record_count() + b.record_count());
    }

    #[test]
    fn summary_wire_size_constant_in_rows(
        rows in prop::collection::vec(prop::collection::vec(0.0f64..1.0, 2..=2), 1..50),
    ) {
        let schema = Schema::unit_numeric(2);
        let cfg = SummaryConfig::with_buckets(64);
        let one = Summary::from_records(&schema, &cfg, &unit_records(&rows[..1]));
        let all = Summary::from_records(&schema, &cfg, &unit_records(&rows));
        prop_assert_eq!(one.wire_size(), all.wire_size());
    }

    #[test]
    fn bloom_mode_summary_no_false_negatives(
        cats in prop::collection::vec("[a-z]{1,8}", 1..40),
    ) {
        let schema = Schema::new(vec![roads_records::AttrDef::categorical("c")]).unwrap();
        let cfg = SummaryConfig {
            categorical: CategoricalMode::Bloom { bits: 1024, hashes: 4 },
            ..SummaryConfig::with_buckets(8)
        };
        let records: Vec<Record> = cats
            .iter()
            .enumerate()
            .map(|(i, c)| Record::new_unchecked(
                RecordId(i as u64), OwnerId(0), vec![Value::Cat(c.clone())]))
            .collect();
        let summary = Summary::from_records(&schema, &cfg, &records);
        for c in &cats {
            let q = Query::new(QueryId(0), vec![Predicate::Eq {
                attr: AttrId(0),
                value: Value::Cat(c.clone()),
            }]);
            prop_assert!(summary.may_match(&q));
        }
    }
}
