//! Property tests: the multi-resolution pyramid's algebra and its
//! conservativeness under coarsening.
//!
//! Two families of invariants:
//!
//! * merge is a commutative, associative monoid action on pyramids built
//!   over the same domain/resolution — bottom-up aggregation order (and
//!   the parallel build's fan-in shape) must not change the result;
//! * resolution coarsening never under-reports containment: if any
//!   summarized value falls inside a query range, *every* level of the
//!   pyramid answers "may match" — selecting a coarser level under a byte
//!   budget can add false positives but never introduces a false negative.

use proptest::prelude::*;
use roads_summary::MultiResHistogram;

fn pyramid(values: &[f64], m: usize) -> MultiResHistogram {
    MultiResHistogram::from_values(0.0, 1.0, m, values.iter().copied())
}

/// Power-of-two bucket counts only (from_finest asserts this).
fn buckets() -> impl Strategy<Value = usize> {
    (0u32..7).prop_map(|e| 1usize << e)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn merge_is_commutative(
        a in prop::collection::vec(0.0f64..1.0, 0..60),
        b in prop::collection::vec(0.0f64..1.0, 0..60),
        m in buckets(),
    ) {
        let mut ab = pyramid(&a, m);
        ab.merge(&pyramid(&b, m)).unwrap();
        let mut ba = pyramid(&b, m);
        ba.merge(&pyramid(&a, m)).unwrap();
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative(
        a in prop::collection::vec(0.0f64..1.0, 0..40),
        b in prop::collection::vec(0.0f64..1.0, 0..40),
        c in prop::collection::vec(0.0f64..1.0, 0..40),
        m in buckets(),
    ) {
        // (a ⊔ b) ⊔ c
        let mut left = pyramid(&a, m);
        left.merge(&pyramid(&b, m)).unwrap();
        left.merge(&pyramid(&c, m)).unwrap();
        // a ⊔ (b ⊔ c)
        let mut bc = pyramid(&b, m);
        bc.merge(&pyramid(&c, m)).unwrap();
        let mut right = pyramid(&a, m);
        right.merge(&bc).unwrap();
        prop_assert_eq!(left, right);
    }

    #[test]
    fn merge_acts_like_concatenation(
        a in prop::collection::vec(0.0f64..1.0, 0..60),
        b in prop::collection::vec(0.0f64..1.0, 0..60),
        m in buckets(),
    ) {
        // Merging two pyramids equals building one pyramid from the
        // concatenated value stream — at every level, not just the finest.
        let mut merged = pyramid(&a, m);
        merged.merge(&pyramid(&b, m)).unwrap();
        let all: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(merged, pyramid(&all, m));
    }

    #[test]
    fn coarsening_never_under_reports_containment(
        values in prop::collection::vec(0.0f64..1.0, 1..80),
        lo in 0.0f64..1.0,
        w in 0.0f64..1.0,
        m in buckets(),
    ) {
        let p = pyramid(&values, m);
        let hi = (lo + w).min(1.0);
        let any_in_range = values.iter().any(|&v| lo <= v && v <= hi);
        if any_in_range {
            // Ground-truth containment: every level must say "may match".
            for level in 0..p.level_count() {
                prop_assert!(
                    p.level(level).may_match_range(lo, hi),
                    "level {level}/{} produced a false negative for [{lo}, {hi}]",
                    p.level_count(),
                );
            }
        }
        // Monotonicity along the pyramid: a coarser level never prunes
        // a range a finer level admits (bucket ranges only union).
        for level in 1..p.level_count() {
            if p.level(level - 1).may_match_range(lo, hi) {
                prop_assert!(
                    p.level(level).may_match_range(lo, hi),
                    "coarsening {} -> {} under-reported [{lo}, {hi}]",
                    level - 1,
                    level,
                );
            }
        }
    }
}
