//! Equi-width histograms for numeric attributes.
//!
//! "A numeric attribute can be aggregated using a histogram consisting of
//! multiple buckets of value ranges. Each bucket has a counter for how many
//! values in this range are present. … two histograms can be combined by
//! adding their respective counters in each bucket." (§III-B)

use roads_records::WireSize;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error merging structurally incompatible histograms.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeError {
    /// Human-readable explanation.
    pub reason: String,
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "histogram merge error: {}", self.reason)
    }
}

impl std::error::Error for MergeError {}

/// Equi-width histogram over `[lo, hi]` with `m` buckets of `u32` counters.
///
/// Counter width matches the paper's accounting (4 bytes per bucket; a
/// summary of `r` attributes with `m` buckets each occupies `~4·m·r` bytes
/// regardless of how many records it condenses). Counters saturate instead
/// of wrapping so adversarially large merges stay conservative — but a
/// saturated counter has *dropped* increments, so exact decrement-based
/// deltas ([`Histogram::remove`]) are no longer possible. The `saturated`
/// flag records that loss: once set, removals refuse and callers must
/// re-aggregate from the underlying records. The flag is local bookkeeping,
/// not wire payload — [`WireSize`] stays at the paper's `20 + 4·m` bytes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u32>,
    saturated: bool,
}

impl Histogram {
    /// Empty histogram over `[lo, hi]` with `m` buckets.
    ///
    /// # Panics
    /// If `m == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, m: usize) -> Self {
        assert!(m > 0, "histogram needs at least one bucket");
        assert!(lo < hi, "histogram domain must be non-empty");
        Histogram {
            lo,
            hi,
            buckets: vec![0; m],
            saturated: false,
        }
    }

    /// Build from an iterator of values, clamping out-of-domain values into
    /// the boundary buckets (owners occasionally export slightly stale
    /// domains; dropping values would create false negatives). `NaN`
    /// values are skipped entirely — see [`Histogram::insert`].
    pub fn from_values(lo: f64, hi: f64, m: usize, values: impl IntoIterator<Item = f64>) -> Self {
        let mut h = Histogram::new(lo, hi, m);
        for v in values {
            h.insert(v);
        }
        h
    }

    /// Number of buckets (the paper's `m`).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Domain lower bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Domain upper bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Raw bucket counters.
    pub fn buckets(&self) -> &[u32] {
        &self.buckets
    }

    /// Total number of summarized values (sum of counters, saturating).
    pub fn total(&self) -> u64 {
        self.buckets.iter().map(|&c| c as u64).sum()
    }

    /// True when no values have been inserted.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(|&c| c == 0)
    }

    /// Bucket index for a value, clamped into the domain. `NaN` maps to
    /// bucket 0 by IEEE comparison fallthrough; callers that must not
    /// count `NaN` (i.e. [`Histogram::insert`]) reject it first.
    pub fn bucket_of(&self, v: f64) -> usize {
        let m = self.buckets.len();
        if !v.is_finite() {
            return if v > 0.0 { m - 1 } else { 0 };
        }
        let frac = (v - self.lo) / (self.hi - self.lo);
        ((frac * m as f64).floor() as isize).clamp(0, m as isize - 1) as usize
    }

    /// Record one value. `NaN` is ignored: it carries no position on the
    /// attribute axis, and counting it (the old behavior filed it into
    /// bucket 0 because `NaN > 0.0` is false) would let one corrupt
    /// export skew the lowest bucket and every range estimate over it.
    pub fn insert(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        let idx = self.bucket_of(v);
        match self.buckets[idx].checked_add(1) {
            Some(n) => self.buckets[idx] = n,
            // The increment is dropped: counts are now a lower bound and
            // exact removal is impossible until a full re-aggregation.
            None => self.saturated = true,
        }
    }

    /// Remove one previously inserted value, exactly reversing
    /// [`Histogram::insert`]. Returns `false` — leaving the histogram
    /// untouched — when the removal cannot be performed exactly: the
    /// histogram has [saturated](Histogram::is_saturated) (dropped
    /// increments would make the decrement under-count) or the target
    /// bucket is already empty (the value was never inserted). `NaN` is
    /// ignored, symmetric with insert, and reports success.
    pub fn remove(&mut self, v: f64) -> bool {
        if v.is_nan() {
            return true;
        }
        if self.saturated {
            return false;
        }
        let idx = self.bucket_of(v);
        match self.buckets[idx].checked_sub(1) {
            Some(n) => {
                self.buckets[idx] = n;
                true
            }
            None => false,
        }
    }

    /// Whether [`Histogram::remove`] of `v` would succeed right now.
    pub fn can_remove(&self, v: f64) -> bool {
        v.is_nan() || (!self.saturated && self.buckets[self.bucket_of(v)] > 0)
    }

    /// True when a counter has ever dropped an increment (clamped at
    /// `u32::MAX`). Saturated histograms still answer queries
    /// conservatively, but refuse exact removals — callers must rebuild
    /// from the underlying records.
    pub fn is_saturated(&self) -> bool {
        self.saturated
    }

    /// Value range covered by bucket `i`: `[lo_i, hi_i)` (last bucket is
    /// closed at the domain upper bound).
    pub fn bucket_range(&self, i: usize) -> (f64, f64) {
        let m = self.buckets.len() as f64;
        let w = (self.hi - self.lo) / m;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// Conservative range test: could any summarized value lie in
    /// `[q_lo, q_hi]`? True when any bucket intersecting the query range is
    /// non-empty. Never produces a false negative; may produce a false
    /// positive when a bucket straddles the range boundary.
    pub fn may_match_range(&self, q_lo: f64, q_hi: f64) -> bool {
        if q_lo.is_nan() || q_hi.is_nan() || q_lo > q_hi {
            // A NaN bound describes no interval at all.
            return false;
        }
        let first = self.bucket_of(q_lo);
        let last = self.bucket_of(q_hi);
        self.buckets[first..=last].iter().any(|&c| c > 0)
    }

    /// Estimated number of values in `[q_lo, q_hi]`, assuming values are
    /// uniform within each bucket (standard equi-width estimator).
    pub fn estimate_count(&self, q_lo: f64, q_hi: f64) -> f64 {
        if q_lo.is_nan() || q_hi.is_nan() || q_lo > q_hi {
            return 0.0;
        }
        let mut est = 0.0;
        let first = self.bucket_of(q_lo);
        let last = self.bucket_of(q_hi);
        for i in first..=last {
            let (b_lo, b_hi) = self.bucket_range(i);
            let overlap = (q_hi.min(b_hi) - q_lo.max(b_lo)).max(0.0);
            let width = b_hi - b_lo;
            if width > 0.0 {
                est += self.buckets[i] as f64 * (overlap / width).min(1.0);
            }
        }
        est
    }

    /// Merge another histogram into this one by adding counters
    /// ("two histograms can be combined by adding their respective counters
    /// in each bucket").
    pub fn merge(&mut self, other: &Histogram) -> Result<(), MergeError> {
        if self.buckets.len() != other.buckets.len() {
            return Err(MergeError {
                reason: format!(
                    "bucket counts differ: {} vs {}",
                    self.buckets.len(),
                    other.buckets.len()
                ),
            });
        }
        if self.lo != other.lo || self.hi != other.hi {
            return Err(MergeError {
                reason: format!(
                    "domains differ: [{},{}] vs [{},{}]",
                    self.lo, self.hi, other.lo, other.hi
                ),
            });
        }
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            match a.checked_add(*b) {
                Some(n) => *a = n,
                None => {
                    *a = u32::MAX;
                    self.saturated = true;
                }
            }
        }
        self.saturated |= other.saturated;
        Ok(())
    }

    /// Coarsen by an integer factor: bucket `i` of the result sums buckets
    /// `[i·f, (i+1)·f)` of the input. Used by the multi-resolution pyramid.
    ///
    /// # Panics
    /// If `factor == 0` or does not divide the bucket count.
    pub fn coarsen(&self, factor: usize) -> Histogram {
        assert!(factor > 0, "factor must be positive");
        assert!(
            self.buckets.len().is_multiple_of(factor),
            "factor must divide the bucket count"
        );
        let mut saturated = self.saturated;
        let buckets = self
            .buckets
            .chunks(factor)
            .map(|c| {
                c.iter().fold(0u32, |a, &b| match a.checked_add(b) {
                    Some(n) => n,
                    None => {
                        saturated = true;
                        u32::MAX
                    }
                })
            })
            .collect();
        Histogram {
            lo: self.lo,
            hi: self.hi,
            buckets,
            saturated,
        }
    }

    /// Reset all counters to zero, keeping the configuration.
    pub fn clear(&mut self) {
        self.buckets.iter_mut().for_each(|c| *c = 0);
        self.saturated = false;
    }

    /// Estimated `q`-quantile (0 ≤ q ≤ 1) of the summarized values, by
    /// linear interpolation within the bucket containing the target rank.
    /// `None` when the histogram is empty.
    ///
    /// Lets a client ask a federation-wide question like "what is the
    /// median free capacity?" from summaries alone — no record ever moves.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * total as f64;
        let mut seen = 0.0;
        for (i, &c) in self.buckets.iter().enumerate() {
            let c = c as f64;
            if seen + c >= target && c > 0.0 {
                let (b_lo, b_hi) = self.bucket_range(i);
                let frac = ((target - seen) / c).clamp(0.0, 1.0);
                return Some(b_lo + frac * (b_hi - b_lo));
            }
            seen += c;
        }
        Some(self.hi)
    }

    /// Estimated mean of the summarized values (bucket midpoints weighted
    /// by counts). `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let sum: f64 = self
            .buckets
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let (lo, hi) = self.bucket_range(i);
                c as f64 * (lo + hi) / 2.0
            })
            .sum();
        Some(sum / total as f64)
    }

    /// The `k` most populated buckets as `(range, count)`, descending by
    /// count (modes of the summarized distribution).
    pub fn top_buckets(&self, k: usize) -> Vec<((f64, f64), u32)> {
        let mut idx: Vec<usize> = (0..self.buckets.len())
            .filter(|&i| self.buckets[i] > 0)
            .collect();
        idx.sort_by_key(|&i| std::cmp::Reverse(self.buckets[i]));
        idx.truncate(k);
        idx.into_iter()
            .map(|i| (self.bucket_range(i), self.buckets[i]))
            .collect()
    }
}

impl WireSize for Histogram {
    fn wire_size(&self) -> usize {
        // lo (8) + hi (8) + bucket count (4) + counters (4 each)
        20 + 4 * self.buckets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_hist(values: &[f64], m: usize) -> Histogram {
        Histogram::from_values(0.0, 1.0, m, values.iter().copied())
    }

    #[test]
    fn insert_and_total() {
        let h = unit_hist(&[0.05, 0.15, 0.95], 10);
        assert_eq!(h.total(), 3);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 1);
        assert_eq!(h.buckets()[9], 1);
    }

    #[test]
    fn boundary_values_clamped() {
        let h = unit_hist(&[0.0, 1.0, -0.5, 1.5], 4);
        assert_eq!(h.buckets()[0], 2); // 0.0 and -0.5
        assert_eq!(h.buckets()[3], 2); // 1.0 and 1.5
    }

    #[test]
    fn paper_example_rate_query() {
        // "rate>150Kbps will be true when any of the buckets beyond 150 is
        // non-empty". Domain [0,1000], rate 100 only → false; add 200 → true.
        let mut h = Histogram::from_values(0.0, 1000.0, 100, [100.0]);
        assert!(!h.may_match_range(150.0, 1000.0));
        h.insert(200.0);
        assert!(h.may_match_range(150.0, 1000.0));
    }

    #[test]
    fn no_false_negatives_on_straddling_bucket() {
        // value 0.24 is in bucket [0.2,0.3); query [0.25,0.5] touches that
        // bucket, so a conservative match must be reported.
        let h = unit_hist(&[0.24], 10);
        assert!(h.may_match_range(0.25, 0.5));
    }

    #[test]
    fn empty_range_rejected() {
        let h = unit_hist(&[0.5], 10);
        assert!(!h.may_match_range(0.9, 0.1));
        assert_eq!(h.estimate_count(0.9, 0.1), 0.0);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = unit_hist(&[0.1, 0.2], 10);
        let b = unit_hist(&[0.1, 0.9], 10);
        a.merge(&b).unwrap();
        assert_eq!(a.total(), 4);
        assert_eq!(a.buckets()[1], 2);
        assert_eq!(a.buckets()[9], 1);
    }

    #[test]
    fn merge_incompatible_rejected() {
        let mut a = Histogram::new(0.0, 1.0, 10);
        let b = Histogram::new(0.0, 1.0, 20);
        assert!(a.merge(&b).is_err());
        let c = Histogram::new(0.0, 2.0, 10);
        assert!(a.merge(&c).is_err());
    }

    #[test]
    fn estimate_count_partial_overlap() {
        // 10 values uniform in bucket [0.0,0.1); query covers half of it.
        let mut h = Histogram::new(0.0, 1.0, 10);
        for _ in 0..10 {
            h.insert(0.05);
        }
        let est = h.estimate_count(0.0, 0.05);
        assert!((est - 5.0).abs() < 1e-9, "est={est}");
    }

    #[test]
    fn coarsen_preserves_total() {
        let h = unit_hist(&[0.05, 0.15, 0.25, 0.35, 0.95], 8);
        let c = h.coarsen(2);
        assert_eq!(c.bucket_count(), 4);
        assert_eq!(c.total(), h.total());
    }

    #[test]
    fn wire_size_constant_in_record_count() {
        let small = unit_hist(&[0.5], 100);
        let mut big = Histogram::new(0.0, 1.0, 100);
        for i in 0..10_000 {
            big.insert((i % 100) as f64 / 100.0);
        }
        assert_eq!(small.wire_size(), big.wire_size());
        assert_eq!(small.wire_size(), 20 + 400);
    }

    #[test]
    fn saturating_counters() {
        let mut h = Histogram::new(0.0, 1.0, 1);
        h.buckets = vec![u32::MAX - 1];
        h.insert(0.5);
        assert!(!h.is_saturated(), "reaching MAX exactly loses nothing");
        h.insert(0.5);
        assert_eq!(h.buckets()[0], u32::MAX);
        assert!(h.is_saturated(), "a dropped increment must be recorded");
    }

    #[test]
    fn remove_reverses_insert() {
        let mut h = unit_hist(&[0.05, 0.05, 0.95], 10);
        assert!(h.remove(0.05));
        assert_eq!(h.buckets()[0], 1);
        assert!(h.remove(0.05) && h.remove(0.95));
        assert!(h.is_empty());
        // Removing from an empty bucket is rejected, histogram untouched.
        assert!(!h.remove(0.5));
        assert!(!h.can_remove(0.5));
        assert!(h.is_empty());
        // NaN is a no-op on both sides.
        assert!(h.remove(f64::NAN));
    }

    #[test]
    fn saturated_histogram_refuses_removal() {
        // Regression: counters used `saturating_add`, so after saturation a
        // delta remove silently under-counted and delta ≠ rebuild. Removal
        // must now refuse on a saturated histogram, forcing callers to
        // re-aggregate from records.
        let mut h = Histogram::new(0.0, 1.0, 1);
        h.buckets = vec![u32::MAX];
        h.insert(0.5); // dropped increment
        assert!(h.is_saturated());
        assert!(!h.can_remove(0.5));
        assert!(!h.remove(0.5), "saturated counters cannot unlearn exactly");
        assert_eq!(h.buckets()[0], u32::MAX, "refused removal leaves counts");
        // clear() resets the flag along with the counters.
        h.clear();
        assert!(!h.is_saturated());
        assert!(h.is_empty());
    }

    #[test]
    fn merge_and_coarsen_propagate_saturation() {
        let mut a = Histogram::new(0.0, 1.0, 2);
        a.buckets = vec![u32::MAX, 0];
        let mut b = Histogram::new(0.0, 1.0, 2);
        b.buckets = vec![1, 1];
        a.merge(&b).unwrap();
        assert!(a.is_saturated(), "clamped merge must mark saturation");
        assert_eq!(a.buckets(), &[u32::MAX, 1]);
        // A saturated input taints the merge target even without clamping.
        let mut c = Histogram::new(0.0, 1.0, 2);
        c.merge(&a.coarsen(1)).unwrap();
        assert!(c.is_saturated());
        // Coarsening can clamp two in-range counters into saturation.
        let mut d = Histogram::new(0.0, 1.0, 2);
        d.buckets = vec![u32::MAX - 1, 2];
        let coarse = d.coarsen(2);
        assert!(coarse.is_saturated());
        assert_eq!(coarse.buckets(), &[u32::MAX]);
    }

    #[test]
    fn clear_resets() {
        let mut h = unit_hist(&[0.5], 4);
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.bucket_count(), 4);
    }

    #[test]
    fn quantiles_interpolate() {
        // 100 values uniform across [0,1): quantiles ≈ identity.
        let mut h = Histogram::new(0.0, 1.0, 20);
        for i in 0..100 {
            h.insert(i as f64 / 100.0);
        }
        for q in [0.1, 0.25, 0.5, 0.75, 0.9] {
            let est = h.quantile(q).unwrap();
            assert!((est - q).abs() < 0.06, "q={q} est={est}");
        }
        assert_eq!(Histogram::new(0.0, 1.0, 4).quantile(0.5), None);
    }

    #[test]
    fn mean_estimate() {
        let h = unit_hist(&[0.1, 0.2, 0.3, 0.4], 100);
        let m = h.mean().unwrap();
        assert!((m - 0.25).abs() < 0.01, "mean={m}");
        assert_eq!(Histogram::new(0.0, 1.0, 4).mean(), None);
    }

    #[test]
    fn top_buckets_ordered() {
        let h = unit_hist(&[0.05, 0.05, 0.05, 0.55, 0.55, 0.95], 10);
        let top = h.top_buckets(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].1, 3);
        assert_eq!(top[1].1, 2);
        assert!(top[0].0 .0 < 0.1 && top[0].0 .1 > 0.05);
        // Asking for more than exist returns only the occupied buckets.
        assert_eq!(h.top_buckets(10).len(), 3);
    }

    #[test]
    fn infinite_query_bounds() {
        let h = unit_hist(&[0.5], 10);
        assert!(h.may_match_range(f64::NEG_INFINITY, f64::INFINITY));
        assert!(h.may_match_range(0.2, f64::INFINITY));
    }

    #[test]
    fn nan_values_rejected() {
        // Regression: NaN used to be filed into bucket 0 (`!is_finite()`
        // is true but `NaN > 0.0` is false), skewing the lowest bucket.
        let h = unit_hist(&[f64::NAN, f64::NAN, 0.95], 10);
        assert_eq!(h.total(), 1, "NaN must not be counted");
        assert_eq!(h.buckets()[0], 0, "lowest bucket must stay clean");
        assert!(!h.may_match_range(0.0, 0.1), "no phantom low-range match");
        let mut h2 = Histogram::new(0.0, 1.0, 4);
        h2.insert(f64::NAN);
        assert!(h2.is_empty());
    }

    #[test]
    fn nan_query_bounds_no_match() {
        let h = unit_hist(&[0.5], 10);
        assert!(!h.may_match_range(f64::NAN, 1.0));
        assert!(!h.may_match_range(0.0, f64::NAN));
        assert_eq!(h.estimate_count(f64::NAN, f64::NAN), 0.0);
    }
}
