//! Multi-resolution histogram pyramids.
//!
//! The paper lists "multi-resolution summarization \[11\]" (Ganesan et al.,
//! *Multi-resolution storage and search in sensor networks*) among the
//! aggregation methods usable in ROADS. The idea: keep a pyramid of
//! histograms at successively coarser resolutions; when forwarding a summary
//! upward under a byte budget, transmit the finest level that fits. Queries
//! evaluated against a coarser level remain conservative (no false
//! negatives) because coarsening only unions bucket ranges.

use crate::histogram::{Histogram, MergeError};
use roads_records::WireSize;
use serde::{Deserialize, Serialize};

/// A pyramid of histograms: level 0 is the finest (most buckets); each next
/// level halves the bucket count, down to a single bucket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiResHistogram {
    levels: Vec<Histogram>,
}

impl MultiResHistogram {
    /// Build a pyramid from a finest-level histogram.
    ///
    /// # Panics
    /// If the bucket count is not a power of two (levels must halve evenly).
    pub fn from_finest(finest: Histogram) -> Self {
        assert!(
            finest.bucket_count().is_power_of_two(),
            "finest level must have a power-of-two bucket count"
        );
        let mut levels = vec![finest];
        while levels.last().expect("non-empty").bucket_count() > 1 {
            let next = levels.last().expect("non-empty").coarsen(2);
            levels.push(next);
        }
        MultiResHistogram { levels }
    }

    /// Build from raw values over `[lo, hi]` with `m` (power-of-two) finest
    /// buckets.
    pub fn from_values(lo: f64, hi: f64, m: usize, values: impl IntoIterator<Item = f64>) -> Self {
        Self::from_finest(Histogram::from_values(lo, hi, m, values))
    }

    /// Number of pyramid levels.
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Histogram at `level` (0 = finest).
    pub fn level(&self, level: usize) -> &Histogram {
        &self.levels[level]
    }

    /// The finest level.
    pub fn finest(&self) -> &Histogram {
        &self.levels[0]
    }

    /// The coarsest level (single bucket = total count).
    pub fn coarsest(&self) -> &Histogram {
        self.levels.last().expect("non-empty")
    }

    /// Finest level whose wire size fits within `budget_bytes`, if any.
    pub fn level_for_budget(&self, budget_bytes: usize) -> Option<&Histogram> {
        self.levels.iter().find(|h| h.wire_size() <= budget_bytes)
    }

    /// Conservative range test against the finest level.
    pub fn may_match_range(&self, lo: f64, hi: f64) -> bool {
        self.finest().may_match_range(lo, hi)
    }

    /// Record one value at every level. Because each coarser level's bucket
    /// counts are exact sums of finest-level buckets (power-of-two widths,
    /// so bucket mapping nests exactly), per-level insertion produces the
    /// same pyramid as rebuilding from an updated finest level.
    pub fn insert(&mut self, v: f64) {
        for level in &mut self.levels {
            level.insert(v);
        }
    }

    /// Whether [`MultiResHistogram::remove`] of `v` would succeed at every
    /// level.
    pub fn can_remove(&self, v: f64) -> bool {
        self.levels.iter().all(|l| l.can_remove(v))
    }

    /// Remove one previously inserted value from every level. Returns
    /// `false` — leaving the pyramid untouched — when any level refuses
    /// (saturation or an empty target bucket); the caller must then rebuild
    /// from the underlying records.
    pub fn remove(&mut self, v: f64) -> bool {
        if !self.can_remove(v) {
            return false;
        }
        for level in &mut self.levels {
            let removed = level.remove(v);
            debug_assert!(removed, "can_remove vouched for every level");
        }
        true
    }

    /// Merge another pyramid level-by-level.
    pub fn merge(&mut self, other: &MultiResHistogram) -> Result<(), MergeError> {
        if self.levels.len() != other.levels.len() {
            return Err(MergeError {
                reason: format!(
                    "level counts differ: {} vs {}",
                    self.levels.len(),
                    other.levels.len()
                ),
            });
        }
        for (a, b) in self.levels.iter_mut().zip(&other.levels) {
            a.merge(b)?;
        }
        Ok(())
    }
}

impl WireSize for MultiResHistogram {
    fn wire_size(&self) -> usize {
        // level count (1) + all levels
        1 + self.levels.iter().map(WireSize::wire_size).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pyramid(values: &[f64]) -> MultiResHistogram {
        MultiResHistogram::from_values(0.0, 1.0, 8, values.iter().copied())
    }

    #[test]
    fn level_structure() {
        let p = pyramid(&[0.1, 0.9]);
        assert_eq!(p.level_count(), 4); // 8, 4, 2, 1
        assert_eq!(p.level(0).bucket_count(), 8);
        assert_eq!(p.level(3).bucket_count(), 1);
    }

    #[test]
    fn totals_identical_across_levels() {
        let p = pyramid(&[0.1, 0.5, 0.9, 0.95]);
        for lvl in 0..p.level_count() {
            assert_eq!(p.level(lvl).total(), 4);
        }
    }

    #[test]
    fn coarser_levels_are_conservative() {
        let p = pyramid(&[0.05]); // finest bucket [0,0.125)
                                  // Query [0.2,0.24] misses at finest level…
        assert!(!p.level(0).may_match_range(0.2, 0.24));
        // …but the 2-bucket level [0,0.5) must report a (false) positive —
        // coarsening never creates a false negative, only false positives.
        assert!(p.level(2).may_match_range(0.2, 0.24));
    }

    #[test]
    fn budget_selection_picks_finest_that_fits() {
        let p = pyramid(&[0.5]);
        // Finest: 20+32=52 bytes, next 20+16=36, then 28, then 24.
        assert_eq!(p.level_for_budget(52).unwrap().bucket_count(), 8);
        assert_eq!(p.level_for_budget(40).unwrap().bucket_count(), 4);
        assert_eq!(p.level_for_budget(24).unwrap().bucket_count(), 1);
        assert!(p.level_for_budget(10).is_none());
    }

    #[test]
    fn merge_all_levels() {
        let mut a = pyramid(&[0.1]);
        let b = pyramid(&[0.9]);
        a.merge(&b).unwrap();
        assert_eq!(a.finest().total(), 2);
        assert_eq!(a.coarsest().total(), 2);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_rejected() {
        let _ = MultiResHistogram::from_values(0.0, 1.0, 6, [0.5]);
    }

    #[test]
    fn per_level_insert_matches_rebuild() {
        let mut incremental = pyramid(&[0.1, 0.5]);
        incremental.insert(0.73);
        let rebuilt = pyramid(&[0.1, 0.5, 0.73]);
        assert_eq!(incremental, rebuilt, "per-level insert ≡ pyramid rebuild");
    }

    #[test]
    fn remove_reverses_insert_across_levels() {
        let mut p = pyramid(&[0.1, 0.5, 0.9]);
        assert!(p.remove(0.5));
        assert_eq!(p, pyramid(&[0.1, 0.9]));
        // A value never inserted leaves an empty finest bucket: refused,
        // and no level is half-modified.
        let before = p.clone();
        assert!(!p.remove(0.5));
        assert_eq!(p, before);
    }
}
