//! TTL soft state.
//!
//! "Data and summaries are soft-state and have TTLs associated with them.
//! This is because many resources are dynamic, thus we need to continuously
//! update the corresponding resource records and summaries." (§III-B)
//!
//! Time is an abstract `u64` tick so the same wrapper serves the
//! discrete-event simulator (milliseconds of virtual time) and the threaded
//! prototype (milliseconds since process start).

use std::collections::HashMap;
use std::hash::Hash;

/// A value with an absolute expiry tick and its own lifetime: the TTL it
/// was created with sticks to the entry, so heartbeats extend by the
/// *entry's* lifetime rather than whatever default the caller holds.
#[derive(Debug, Clone, PartialEq)]
pub struct SoftState<T> {
    value: T,
    expires_at: u64,
    ttl: u64,
}

impl<T> SoftState<T> {
    /// Wrap `value`, expiring at `now + ttl`.
    pub fn new(value: T, now: u64, ttl: u64) -> Self {
        SoftState {
            value,
            expires_at: now.saturating_add(ttl),
            ttl,
        }
    }

    /// The wrapped value, regardless of freshness.
    pub fn value(&self) -> &T {
        &self.value
    }

    /// The wrapped value if still fresh at `now`.
    pub fn fresh(&self, now: u64) -> Option<&T> {
        (!self.is_expired(now)).then_some(&self.value)
    }

    /// True when `now` is at or past the expiry tick.
    pub fn is_expired(&self, now: u64) -> bool {
        now >= self.expires_at
    }

    /// Absolute expiry tick.
    pub fn expires_at(&self) -> u64 {
        self.expires_at
    }

    /// The lifetime this entry extends by on heartbeat.
    pub fn ttl(&self) -> u64 {
        self.ttl
    }

    /// Replace the value and push the expiry to `now + ttl`, adopting the
    /// new TTL as the entry's lifetime.
    pub fn refresh(&mut self, value: T, now: u64, ttl: u64) {
        self.value = value;
        self.expires_at = now.saturating_add(ttl);
        self.ttl = ttl;
    }

    /// Extend the expiry without replacing the value, adopting `ttl` as
    /// the entry's lifetime from here on.
    pub fn touch(&mut self, now: u64, ttl: u64) {
        self.expires_at = now.saturating_add(ttl);
        self.ttl = ttl;
    }

    /// Extend the expiry by the entry's own lifetime (heartbeat-style):
    /// the TTL it was inserted or last refreshed with.
    pub fn heartbeat(&mut self, now: u64) {
        self.expires_at = now.saturating_add(self.ttl);
    }

    /// Consume the wrapper.
    pub fn into_inner(self) -> T {
        self.value
    }
}

/// Keyed table of soft state with lazy and bulk expiry.
///
/// Servers keep one entry per child / attached owner / replicated branch;
/// entries not refreshed within their TTL vanish, which is how ROADS sheds
/// state for departed children without explicit teardown.
#[derive(Debug, Clone)]
pub struct SoftStateTable<K, T> {
    entries: HashMap<K, SoftState<T>>,
    default_ttl: u64,
}

impl<K: Eq + Hash + Clone, T> SoftStateTable<K, T> {
    /// Empty table whose inserts default to `default_ttl`.
    pub fn new(default_ttl: u64) -> Self {
        SoftStateTable {
            entries: HashMap::new(),
            default_ttl,
        }
    }

    /// The TTL applied by [`Self::insert`].
    pub fn default_ttl(&self) -> u64 {
        self.default_ttl
    }

    /// Insert or refresh an entry with the default TTL.
    pub fn insert(&mut self, key: K, value: T, now: u64) {
        self.insert_with_ttl(key, value, now, self.default_ttl);
    }

    /// Insert or refresh an entry with an explicit TTL.
    pub fn insert_with_ttl(&mut self, key: K, value: T, now: u64, ttl: u64) {
        self.entries.insert(key, SoftState::new(value, now, ttl));
    }

    /// Fresh value for `key` at `now`, if present and unexpired.
    pub fn get(&self, key: &K, now: u64) -> Option<&T> {
        self.entries.get(key).and_then(|e| e.fresh(now))
    }

    /// Fresh value ignoring expiry (for diagnostics).
    pub fn get_ignoring_ttl(&self, key: &K) -> Option<&T> {
        self.entries.get(key).map(SoftState::value)
    }

    /// Remove an entry eagerly (explicit leave).
    pub fn remove(&mut self, key: &K) -> Option<T> {
        self.entries.remove(key).map(SoftState::into_inner)
    }

    /// Extend an entry's lifetime without replacing its value. The entry
    /// keeps the TTL it was inserted with — heartbeating an
    /// [`Self::insert_with_ttl`] entry must not silently rewrite its
    /// lifetime to the table default.
    pub fn touch(&mut self, key: &K, now: u64) -> bool {
        match self.entries.get_mut(key) {
            Some(e) => {
                e.heartbeat(now);
                true
            }
            None => false,
        }
    }

    /// Drop every expired entry; returns the expired keys.
    pub fn sweep(&mut self, now: u64) -> Vec<K> {
        let expired: Vec<K> = self
            .entries
            .iter()
            .filter(|(_, e)| e.is_expired(now))
            .map(|(k, _)| k.clone())
            .collect();
        for k in &expired {
            self.entries.remove(k);
        }
        expired
    }

    /// Iterate fresh `(key, value)` pairs at `now`.
    pub fn iter_fresh(&self, now: u64) -> impl Iterator<Item = (&K, &T)> {
        self.entries
            .iter()
            .filter_map(move |(k, e)| e.fresh(now).map(|v| (k, v)))
    }

    /// Count of entries (fresh and expired-but-unswept).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the table holds no entries at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_until_expiry() {
        let s = SoftState::new("v", 100, 50);
        assert_eq!(s.fresh(100), Some(&"v"));
        assert_eq!(s.fresh(149), Some(&"v"));
        assert_eq!(s.fresh(150), None);
        assert!(s.is_expired(150));
    }

    #[test]
    fn refresh_replaces_and_extends() {
        let mut s = SoftState::new(1, 0, 10);
        s.refresh(2, 5, 10);
        assert_eq!(s.fresh(14), Some(&2));
        assert_eq!(s.fresh(15), None);
    }

    #[test]
    fn touch_extends_without_replacing() {
        let mut s = SoftState::new(1, 0, 10);
        s.touch(8, 10);
        assert_eq!(s.fresh(17), Some(&1));
    }

    #[test]
    fn table_get_respects_ttl() {
        let mut t = SoftStateTable::new(10);
        t.insert("a", 1, 0);
        assert_eq!(t.get(&"a", 5), Some(&1));
        assert_eq!(t.get(&"a", 10), None);
        // Value still physically present until swept.
        assert_eq!(t.get_ignoring_ttl(&"a"), Some(&1));
    }

    #[test]
    fn sweep_returns_expired_keys() {
        let mut t = SoftStateTable::new(10);
        t.insert("a", 1, 0);
        t.insert("b", 2, 5);
        let mut expired = t.sweep(12);
        expired.sort();
        assert_eq!(expired, vec!["a"]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&"b", 12), Some(&2));
    }

    #[test]
    fn iter_fresh_filters() {
        let mut t = SoftStateTable::new(10);
        t.insert("a", 1, 0);
        t.insert("b", 2, 5);
        let fresh: Vec<_> = t.iter_fresh(12).map(|(k, v)| (*k, *v)).collect();
        assert_eq!(fresh, vec![("b", 2)]);
    }

    #[test]
    fn remove_is_eager() {
        let mut t = SoftStateTable::new(10);
        t.insert("a", 1, 0);
        assert_eq!(t.remove(&"a"), Some(1));
        assert!(t.is_empty());
    }

    #[test]
    fn touch_preserves_per_entry_ttl() {
        // Regression: table touch used to clobber an insert_with_ttl
        // entry's lifetime with the table default (10 here), shrinking a
        // 100-tick entry to 10 on its first heartbeat.
        let mut t = SoftStateTable::new(10);
        t.insert_with_ttl("long", 1, 0, 100);
        assert!(t.touch(&"long", 50));
        assert_eq!(t.get(&"long", 149), Some(&1), "entry keeps its 100 TTL");
        assert_eq!(t.get(&"long", 150), None);
        // Default-TTL entries still heartbeat by the default.
        t.insert("short", 2, 0);
        assert!(t.touch(&"short", 4));
        assert_eq!(t.get(&"short", 13), Some(&2));
        assert_eq!(t.get(&"short", 14), None);
    }

    #[test]
    fn refresh_adopts_new_ttl_for_later_heartbeats() {
        let mut s = SoftState::new(1, 0, 10);
        assert_eq!(s.ttl(), 10);
        s.refresh(2, 0, 30);
        s.heartbeat(100);
        assert_eq!(s.fresh(129), Some(&2));
        assert_eq!(s.fresh(130), None);
    }

    #[test]
    fn touch_missing_key_false() {
        let mut t: SoftStateTable<&str, i32> = SoftStateTable::new(10);
        assert!(!t.touch(&"nope", 0));
    }

    #[test]
    fn saturating_expiry() {
        let s = SoftState::new(1, u64::MAX - 1, 100);
        assert!(!s.is_expired(u64::MAX - 1));
    }
}
