//! Bloom filters for categorical attributes with large vocabularies.
//!
//! The paper points at Bloom's construction \[10\] as a "more efficient data
//! structure" than enumerating all categorical values, "as long as they
//! compress data and support query evaluation" (§III-B). A Bloom filter is a
//! fixed-size bit array with `k` hash probes per element; membership tests
//! have no false negatives and a tunable false-positive rate, and two
//! filters over the same configuration merge by bitwise OR — exactly the
//! semantics ROADS needs for bottom-up aggregation.

use roads_records::WireSize;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error merging structurally incompatible Bloom filters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomMergeError {
    /// Human-readable explanation.
    pub reason: String,
}

impl fmt::Display for BloomMergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bloom merge error: {}", self.reason)
    }
}

impl std::error::Error for BloomMergeError {}

/// Fidelity probe of one Bloom filter: how full it is and how trustworthy
/// its positive answers are at that fill level (see
/// [`BloomFilter::saturation`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BloomSaturation {
    /// Fraction of set bits (fill ratio), in `[0, 1]`.
    pub load: f64,
    /// Estimated false-positive probability at this load (`load^k`).
    pub estimated_fp_rate: f64,
    /// Elements inserted (including merged-in counts).
    pub inserted: u64,
    /// Filter size in bits.
    pub bits: usize,
}

impl BloomSaturation {
    /// A saturated filter answers "maybe" so often that it has stopped
    /// pruning: conventionally load > 1/2 (the optimally-sized operating
    /// point), at which the FP rate grows past `2^-k`.
    pub fn is_saturated(&self) -> bool {
        self.load > 0.5
    }
}

/// Fixed-size Bloom filter over string values.
///
/// Uses Kirsch–Mitzenmatcher double hashing: two independent 64-bit FNV-1a
/// variants generate `k` probe positions as `h1 + i·h2`. The implementation
/// is self-contained (no external hash crates) and deterministic across
/// platforms, which matters for replayable simulations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BloomFilter {
    bits: Vec<u64>,
    m_bits: usize,
    k: u32,
    inserted: u64,
}

impl BloomFilter {
    /// Empty filter with `m_bits` bits and `k` probes.
    ///
    /// # Panics
    /// If `m_bits == 0` or `k == 0`.
    pub fn new(m_bits: usize, k: u32) -> Self {
        assert!(m_bits > 0, "bloom filter needs at least one bit");
        assert!(k > 0, "bloom filter needs at least one hash");
        BloomFilter {
            bits: vec![0; m_bits.div_ceil(64)],
            m_bits,
            k,
            inserted: 0,
        }
    }

    /// Filter sized for `expected` elements at the target false-positive
    /// rate `fp` (standard formulas: m = -n·ln p / ln²2, k = m/n·ln 2).
    pub fn with_capacity(expected: usize, fp: f64) -> Self {
        let n = expected.max(1) as f64;
        let p = fp.clamp(1e-10, 0.5);
        let m = (-(n * p.ln()) / (std::f64::consts::LN_2.powi(2))).ceil() as usize;
        let k = ((m as f64 / n) * std::f64::consts::LN_2).round().max(1.0) as u32;
        BloomFilter::new(m.max(64), k)
    }

    /// Number of bits.
    pub fn bit_len(&self) -> usize {
        self.m_bits
    }

    /// Number of hash probes per element.
    pub fn hash_count(&self) -> u32 {
        self.k
    }

    /// Elements inserted locally (merges add the counts).
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// True when no element has ever been inserted.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    fn hashes(&self, v: &str) -> (u64, u64) {
        (fnv1a(v.as_bytes(), 0xcbf2_9ce4_8422_2325), {
            // Second seed: splitmix of the first basis for independence.
            fnv1a(v.as_bytes(), 0x9e37_79b9_7f4a_7c15)
        })
    }

    fn probe_positions(&self, v: &str) -> impl Iterator<Item = usize> + '_ {
        let (h1, h2) = self.hashes(v);
        let m = self.m_bits as u64;
        (0..self.k as u64).map(move |i| (h1.wrapping_add(i.wrapping_mul(h2)) % m) as usize)
    }

    /// Insert one value.
    pub fn insert(&mut self, v: &str) {
        let positions: Vec<usize> = self.probe_positions(v).collect();
        for pos in positions {
            self.bits[pos / 64] |= 1u64 << (pos % 64);
        }
        self.inserted += 1;
    }

    /// Membership test: false means definitely absent; true means probably
    /// present (false-positive rate depends on load).
    pub fn contains(&self, v: &str) -> bool {
        self.probe_positions(v)
            .all(|pos| self.bits[pos / 64] & (1u64 << (pos % 64)) != 0)
    }

    /// Merge by bitwise OR (aggregation of child summaries).
    pub fn merge(&mut self, other: &BloomFilter) -> Result<(), BloomMergeError> {
        if self.m_bits != other.m_bits || self.k != other.k {
            return Err(BloomMergeError {
                reason: format!(
                    "configs differ: ({} bits, k={}) vs ({} bits, k={})",
                    self.m_bits, self.k, other.m_bits, other.k
                ),
            });
        }
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= *b;
        }
        self.inserted += other.inserted;
        Ok(())
    }

    /// Fraction of set bits (load factor); predicts the false-positive rate
    /// as `load^k`.
    pub fn load(&self) -> f64 {
        let set: u32 = self.bits.iter().map(|w| w.count_ones()).sum();
        set as f64 / self.m_bits as f64
    }

    /// Estimated false-positive probability at current load.
    pub fn estimated_fp_rate(&self) -> f64 {
        self.load().powi(self.k as i32)
    }

    /// Fidelity probe: fill ratio plus the FP rate it implies, as one
    /// report (the audit plane's per-summary `bloom` column).
    pub fn saturation(&self) -> BloomSaturation {
        BloomSaturation {
            load: self.load(),
            estimated_fp_rate: self.estimated_fp_rate(),
            inserted: self.inserted,
            bits: self.m_bits,
        }
    }

    /// Fraction of bit positions on which two same-configured filters
    /// disagree, in `[0, 1]` (`None` when the configurations differ). A
    /// replica copy of a branch filter drifts from the authoritative one
    /// exactly in these bits.
    pub fn bit_difference(&self, other: &BloomFilter) -> Option<f64> {
        if self.m_bits != other.m_bits || self.k != other.k {
            return None;
        }
        let differing: u32 = self
            .bits
            .iter()
            .zip(&other.bits)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        Some(differing as f64 / self.m_bits as f64)
    }

    /// Reset all bits, keeping the configuration.
    pub fn clear(&mut self) {
        self.bits.iter_mut().for_each(|w| *w = 0);
        self.inserted = 0;
    }
}

impl WireSize for BloomFilter {
    fn wire_size(&self) -> usize {
        // m_bits (4) + k (1) + bit words
        5 + 8 * self.bits.len()
    }
}

/// 64-bit FNV-1a with a custom basis (used as a seed).
fn fnv1a(bytes: &[u8], basis: u64) -> u64 {
    let mut h = basis;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // Final avalanche (splitmix64 tail) to decorrelate the two seeds.
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::new(1024, 4);
        for i in 0..100 {
            f.insert(&format!("value-{i}"));
        }
        for i in 0..100 {
            assert!(f.contains(&format!("value-{i}")));
        }
    }

    #[test]
    fn empty_contains_nothing() {
        let f = BloomFilter::new(256, 3);
        assert!(!f.contains("anything"));
        assert!(f.is_empty());
    }

    #[test]
    fn merge_is_or() {
        let mut a = BloomFilter::new(512, 3);
        let mut b = BloomFilter::new(512, 3);
        a.insert("left");
        b.insert("right");
        a.merge(&b).unwrap();
        assert!(a.contains("left"));
        assert!(a.contains("right"));
        assert_eq!(a.inserted(), 2);
    }

    #[test]
    fn merge_incompatible_rejected() {
        let mut a = BloomFilter::new(512, 3);
        let b = BloomFilter::new(256, 3);
        assert!(a.merge(&b).is_err());
        let c = BloomFilter::new(512, 4);
        assert!(a.merge(&c).is_err());
    }

    #[test]
    fn capacity_sizing_hits_target_fp() {
        let mut f = BloomFilter::with_capacity(1000, 0.01);
        for i in 0..1000 {
            f.insert(&format!("elem-{i}"));
        }
        // Count false positives over a disjoint probe set.
        let fp = (0..10_000)
            .filter(|i| f.contains(&format!("probe-{i}")))
            .count();
        // 1% target; allow generous slack for hash variance.
        assert!(fp < 300, "false positives: {fp}/10000");
    }

    #[test]
    fn wire_size_constant() {
        let mut a = BloomFilter::new(1024, 4);
        let empty_size = a.wire_size();
        for i in 0..500 {
            a.insert(&format!("v{i}"));
        }
        assert_eq!(a.wire_size(), empty_size);
        assert_eq!(empty_size, 5 + 8 * 16);
    }

    #[test]
    fn load_and_fp_estimates_monotonic() {
        let mut f = BloomFilter::new(256, 2);
        let before = f.estimated_fp_rate();
        for i in 0..50 {
            f.insert(&format!("x{i}"));
        }
        assert!(f.load() > 0.0);
        assert!(f.estimated_fp_rate() > before);
    }

    #[test]
    fn saturation_reports_fill_and_fp() {
        let mut f = BloomFilter::new(128, 2);
        let empty = f.saturation();
        assert_eq!(empty.load, 0.0);
        assert_eq!(empty.estimated_fp_rate, 0.0);
        assert!(!empty.is_saturated());
        for i in 0..200 {
            f.insert(&format!("v{i}"));
        }
        let full = f.saturation();
        assert!(full.load > 0.5);
        assert!(full.is_saturated());
        assert_eq!(full.inserted, 200);
        assert_eq!(full.bits, 128);
        assert!((full.estimated_fp_rate - full.load.powi(2)).abs() < 1e-12);
    }

    #[test]
    fn bit_difference_measures_divergence() {
        let mut a = BloomFilter::new(512, 3);
        let mut b = BloomFilter::new(512, 3);
        assert_eq!(a.bit_difference(&b), Some(0.0));
        a.insert("only-in-a");
        let d = a.bit_difference(&b).unwrap();
        assert!(d > 0.0 && d <= 3.0 / 512.0, "d={d}");
        // Symmetric, and zero once the copies re-converge.
        assert_eq!(a.bit_difference(&b), b.bit_difference(&a));
        b.merge(&a).unwrap();
        assert_eq!(a.bit_difference(&b), Some(0.0));
        // Mismatched configs are not comparable.
        assert_eq!(a.bit_difference(&BloomFilter::new(256, 3)), None);
    }

    #[test]
    fn clear_resets() {
        let mut f = BloomFilter::new(128, 2);
        f.insert("a");
        f.clear();
        assert!(f.is_empty());
        assert_eq!(f.inserted(), 0);
    }
}
