//! Enumerated value sets for categorical attributes.
//!
//! "For categorical attributes, a set can be used to summarize all values in
//! the given resource records. The set can directly enumerate all such
//! values, which is acceptable if the number of distinct values is limited."
//! (§III-B)

use roads_records::WireSize;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Exact set of distinct categorical values seen in the summarized records.
///
/// Unlike [`crate::BloomFilter`], a `ValueSet` is exact (no false positives)
/// but its size grows with the vocabulary; the summary layer can switch to a
/// Bloom filter when the set exceeds a byte budget.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValueSet {
    values: BTreeSet<String>,
}

impl ValueSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from an iterator of values.
    pub fn from_values<I, S>(values: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        ValueSet {
            values: values.into_iter().map(Into::into).collect(),
        }
    }

    /// Insert one value; returns true if it was new.
    pub fn insert(&mut self, v: impl Into<String>) -> bool {
        self.values.insert(v.into())
    }

    /// Exact membership test.
    pub fn contains(&self, v: &str) -> bool {
        self.values.contains(v)
    }

    /// Number of distinct values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Union another set into this one (set summaries merge by union).
    pub fn merge(&mut self, other: &ValueSet) {
        self.values.extend(other.values.iter().cloned());
    }

    /// Iterate values in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.values.iter().map(String::as_str)
    }

    /// Drop all values.
    pub fn clear(&mut self) {
        self.values.clear();
    }
}

impl WireSize for ValueSet {
    fn wire_size(&self) -> usize {
        // count (2) + per value: length prefix (2) + bytes
        2 + self.values.iter().map(|v| 2 + v.len()).sum::<usize>()
    }
}

impl<S: Into<String>> FromIterator<S> for ValueSet {
    fn from_iter<I: IntoIterator<Item = S>>(iter: I) -> Self {
        ValueSet::from_values(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_encoding_set() {
        // encoding=MPEG2 is "true" when "MPEG2" is found in the set.
        let s = ValueSet::from_values(["MPEG2", "H264"]);
        assert!(s.contains("MPEG2"));
        assert!(!s.contains("VP8"));
    }

    #[test]
    fn merge_is_union() {
        let mut a = ValueSet::from_values(["x", "y"]);
        let b = ValueSet::from_values(["y", "z"]);
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert!(a.contains("z"));
    }

    #[test]
    fn insert_reports_novelty() {
        let mut s = ValueSet::new();
        assert!(s.insert("a"));
        assert!(!s.insert("a"));
    }

    #[test]
    fn wire_size_grows_with_vocabulary() {
        let a = ValueSet::from_values(["ab"]);
        let b = ValueSet::from_values(["ab", "cdef"]);
        assert_eq!(a.wire_size(), 2 + 2 + 2);
        assert_eq!(b.wire_size(), 2 + (2 + 2) + (2 + 4));
    }

    #[test]
    fn iteration_sorted() {
        let s = ValueSet::from_values(["b", "a", "c"]);
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec!["a", "b", "c"]);
    }

    #[test]
    fn clear_empties() {
        let mut s = ValueSet::from_values(["a"]);
        s.clear();
        assert!(s.is_empty());
    }
}
