//! Lossy resource summaries (§III-B of the ROADS paper).
//!
//! A *summary* is a condensed, usually lossy representation of a set of
//! resource records that still supports query evaluation. Owners export
//! summaries instead of raw records to preserve voluntary sharing; servers
//! aggregate child summaries bottom-up so each holds a coarse view of its
//! branch, and the replication overlay copies branch summaries sideways.
//!
//! Structures provided, matching the paper's catalogue:
//!
//! * [`Histogram`] — equi-width bucket counts for numeric attributes; two
//!   histograms merge by adding per-bucket counters.
//! * [`ValueSet`] — enumerated set of categorical values ("acceptable if the
//!   number of distinct values is limited").
//! * [`BloomFilter`] — constant-size alternative for large vocabularies
//!   (the paper cites Bloom's 1970 construction \[10\]).
//! * [`MultiResHistogram`] — multi-resolution summarization in the style of
//!   Ganesan et al. \[11\]: a pyramid of progressively coarser histograms from
//!   which a byte-budgeted level can be selected.
//! * [`Summary`] — one summary per searchable attribute, aligned to a
//!   [`roads_records::Schema`]; evaluates conjunctive queries conservatively
//!   (no false negatives).
//! * [`SoftState`] / [`SoftStateTable`] — TTL wrappers: "data and summaries
//!   are soft-state and have TTLs associated with them".
//! * [`SummaryFidelity`] — fidelity probes for the audit plane: Bloom
//!   saturation, histogram drift against the exact re-aggregate, value-set
//!   Jaccard distance, per-attribute and per-summary reports.

pub mod attr_summary;
pub mod bloom;
pub mod fidelity;
pub mod histogram;
pub mod multires;
pub mod soft_state;
pub mod summary;
pub mod value_set;

pub use attr_summary::AttributeSummary;
pub use bloom::{BloomFilter, BloomSaturation};
pub use fidelity::{histogram_drift, AttrFidelity, SummaryFidelity};
pub use histogram::Histogram;
pub use multires::MultiResHistogram;
pub use soft_state::{SoftState, SoftStateTable};
pub use summary::{CategoricalMode, Summary, SummaryConfig, SummaryVerdict};
pub use value_set::ValueSet;
