//! Fidelity probes: how truthful a (possibly stale or lossy) summary is
//! against an exact reference.
//!
//! The ROADS routing correctness argument rests on summaries being
//! conservative — no false negatives — while the accuracy/size tradeoff
//! (§III-B, and the multi-resolution catalogue of Ganesan et al.) makes
//! false positives a deliberate, *tunable* cost. This module measures that
//! cost: per-attribute drift between an observed summary (a branch
//! summary, or a replica copy of one) and the exact re-aggregate, plus
//! Bloom saturation, folded into one [`SummaryFidelity`] report per
//! summary. The audit plane (roads/runtime crates) samples these probes on
//! a budget and exports them as OpenMetrics gauges and `AUDIT.json` rows.

use crate::attr_summary::AttributeSummary;
use crate::bloom::BloomSaturation;
use crate::histogram::Histogram;
use crate::summary::Summary;

/// Drift between an observed histogram and the exact reference: total
/// variation distance between their normalized bucket mass distributions,
/// in `[0, 1]` (0 = identical shape, 1 = disjoint mass or structurally
/// incomparable). Two empty histograms are identical; an empty one against
/// a populated one is fully drifted.
pub fn histogram_drift(observed: &Histogram, exact: &Histogram) -> f64 {
    if observed.bucket_count() != exact.bucket_count()
        || observed.lo() != exact.lo()
        || observed.hi() != exact.hi()
    {
        return 1.0;
    }
    let (ot, et) = (observed.total() as f64, exact.total() as f64);
    match (ot == 0.0, et == 0.0) {
        (true, true) => return 0.0,
        (true, false) | (false, true) => return 1.0,
        (false, false) => {}
    }
    let tv: f64 = observed
        .buckets()
        .iter()
        .zip(exact.buckets())
        .map(|(&o, &e)| (o as f64 / ot - e as f64 / et).abs())
        .sum();
    (tv / 2.0).clamp(0.0, 1.0)
}

/// Fidelity of one attribute's summary against the exact reference.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrFidelity {
    /// Attribute index in the schema.
    pub attr: usize,
    /// Summary kind label (`histogram`/`multires`/`set`/`bloom`).
    pub kind: &'static str,
    /// Distance to the exact reference in `[0, 1]`; see the per-kind
    /// definitions in [`SummaryFidelity::probe`].
    pub drift: f64,
    /// Bloom fill/FP report, for `bloom`-kind attributes only.
    pub saturation: Option<BloomSaturation>,
}

/// One summary's fidelity report: per-attribute drift against the exact
/// re-aggregate, plus the relative record-count error.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryFidelity {
    /// Per-attribute probes, schema order.
    pub attrs: Vec<AttrFidelity>,
    /// `|observed.records − exact.records| / max(exact.records, 1)`.
    pub record_drift: f64,
}

impl SummaryFidelity {
    /// Compare `observed` (a branch summary or a replica copy) against the
    /// `exact` re-aggregate of the same scope. Per-kind drift:
    ///
    /// * histogram / multires (finest level) — total variation distance
    ///   of bucket mass ([`histogram_drift`]);
    /// * value set — Jaccard distance of the enumerated values;
    /// * bloom — fraction of differing bits
    ///   ([`crate::BloomFilter::bit_difference`]), 1.0 when the filter
    ///   configurations are incomparable.
    ///
    /// Mismatched kinds at the same attribute index (a summary config
    /// change between stamp and probe) report drift 1.0.
    pub fn probe(observed: &Summary, exact: &Summary) -> SummaryFidelity {
        let n = observed.arity().min(exact.arity());
        let attrs = (0..n)
            .map(|i| {
                let (o, e) = (observed.attr(i), exact.attr(i));
                let drift = match (o, e) {
                    (AttributeSummary::Hist(a), AttributeSummary::Hist(b)) => histogram_drift(a, b),
                    (AttributeSummary::MultiRes(a), AttributeSummary::MultiRes(b)) => {
                        histogram_drift(a.finest(), b.finest())
                    }
                    (AttributeSummary::Set(a), AttributeSummary::Set(b)) => {
                        let inter = a.iter().filter(|v| b.contains(v)).count();
                        let union = a.len() + b.len() - inter;
                        if union == 0 {
                            0.0
                        } else {
                            1.0 - inter as f64 / union as f64
                        }
                    }
                    (AttributeSummary::Bloom(a), AttributeSummary::Bloom(b)) => {
                        a.bit_difference(b).unwrap_or(1.0)
                    }
                    _ => 1.0,
                };
                AttrFidelity {
                    attr: i,
                    kind: o.kind_name(),
                    drift,
                    saturation: match o {
                        AttributeSummary::Bloom(f) => Some(f.saturation()),
                        _ => None,
                    },
                }
            })
            .collect();
        let (or, er) = (observed.record_count() as f64, exact.record_count() as f64);
        SummaryFidelity {
            attrs,
            record_drift: (or - er).abs() / er.max(1.0),
        }
    }

    /// Worst per-attribute drift (0 when the summary has no attributes).
    pub fn max_drift(&self) -> f64 {
        self.attrs.iter().map(|a| a.drift).fold(0.0, f64::max)
    }

    /// Worst Bloom saturation among `bloom`-kind attributes, if any.
    pub fn max_bloom_saturation(&self) -> Option<BloomSaturation> {
        self.attrs
            .iter()
            .filter_map(|a| a.saturation)
            .max_by(|a, b| a.load.total_cmp(&b.load))
    }

    /// True when every attribute's drift and the record-count error are
    /// within `tolerance`.
    pub fn is_faithful(&self, tolerance: f64) -> bool {
        self.max_drift() <= tolerance && self.record_drift <= tolerance
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::SummaryConfig;
    use roads_records::{AttrDef, OwnerId, RecordBuilder, RecordId, Schema};

    fn schema() -> Schema {
        Schema::new(vec![
            AttrDef::categorical("type"),
            AttrDef::numeric("rate", 0.0, 100.0),
        ])
        .unwrap()
    }

    fn record(schema: &Schema, id: u64, ty: &str, rate: f64) -> roads_records::Record {
        RecordBuilder::new(schema, RecordId(id), OwnerId(1))
            .set("type", ty)
            .set("rate", rate)
            .build()
            .unwrap()
    }

    #[test]
    fn identical_summaries_have_zero_drift() {
        let s = schema();
        let cfg = SummaryConfig::with_buckets(10);
        let recs: Vec<_> = (0..20)
            .map(|i| record(&s, i, "camera", (i * 5) as f64))
            .collect();
        let a = Summary::from_records(&s, &cfg, recs.iter());
        let f = SummaryFidelity::probe(&a, &a.clone());
        assert_eq!(f.max_drift(), 0.0);
        assert_eq!(f.record_drift, 0.0);
        assert!(f.is_faithful(0.0));
        assert_eq!(f.attrs.len(), 2);
        assert_eq!(f.attrs[0].kind, "set");
        assert_eq!(f.attrs[1].kind, "histogram");
    }

    #[test]
    fn stale_copy_drifts_and_is_flagged() {
        let s = schema();
        let cfg = SummaryConfig::with_buckets(10);
        let old: Vec<_> = (0..10)
            .map(|i| record(&s, i, "camera", (i * 2) as f64))
            .collect();
        let new: Vec<_> = (0..30)
            .map(|i| record(&s, i, if i < 10 { "camera" } else { "gpu" }, 90.0))
            .collect();
        let stale = Summary::from_records(&s, &cfg, old.iter());
        let exact = Summary::from_records(&s, &cfg, new.iter());
        let f = SummaryFidelity::probe(&stale, &exact);
        assert!(f.max_drift() > 0.0, "{f:?}");
        assert!(f.record_drift > 0.5, "{f:?}");
        assert!(!f.is_faithful(0.1));
        // The value-set attribute is missing "gpu": Jaccard distance 1/2.
        assert!((f.attrs[0].drift - 0.5).abs() < 1e-12, "{f:?}");
    }

    #[test]
    fn histogram_drift_edge_cases() {
        let empty = Histogram::new(0.0, 1.0, 4);
        let full = Histogram::from_values(0.0, 1.0, 4, [0.1, 0.6, 0.9]);
        assert_eq!(histogram_drift(&empty, &empty), 0.0);
        assert_eq!(histogram_drift(&empty, &full), 1.0);
        assert_eq!(histogram_drift(&full, &empty), 1.0);
        assert_eq!(histogram_drift(&full, &full), 0.0);
        // Structurally incomparable: different bucketing.
        let other = Histogram::from_values(0.0, 1.0, 8, [0.1]);
        assert_eq!(histogram_drift(&full, &other), 1.0);
        // Disjoint mass: maximum distance.
        let lo = Histogram::from_values(0.0, 1.0, 4, [0.1, 0.1]);
        let hi = Histogram::from_values(0.0, 1.0, 4, [0.9, 0.9]);
        assert!((histogram_drift(&lo, &hi) - 1.0).abs() < 1e-12);
    }
}
