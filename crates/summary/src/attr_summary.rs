//! Per-attribute summaries and their predicate evaluation.

use crate::bloom::BloomFilter;
use crate::histogram::Histogram;
use crate::multires::MultiResHistogram;
use crate::value_set::ValueSet;
use roads_records::{Predicate, WireSize};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Summary of one attribute's values across a set of records.
///
/// The variant is chosen by the attribute type and the
/// [`crate::SummaryConfig`]: histograms (or multi-resolution pyramids) for
/// ordered attributes, value sets or Bloom filters for categorical ones.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttributeSummary {
    /// Equi-width histogram (ordered attributes).
    Hist(Histogram),
    /// Multi-resolution pyramid (ordered attributes under byte budgets).
    MultiRes(MultiResHistogram),
    /// Exact enumerated set (categorical attributes, small vocabularies).
    Set(ValueSet),
    /// Bloom filter (categorical attributes, large vocabularies).
    Bloom(BloomFilter),
}

/// Error merging mismatched per-attribute summaries.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrMergeError {
    /// Human-readable explanation.
    pub reason: String,
}

impl fmt::Display for AttrMergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "attribute summary merge error: {}", self.reason)
    }
}

impl std::error::Error for AttrMergeError {}

impl AttributeSummary {
    /// Conservative predicate evaluation: `false` guarantees no summarized
    /// record satisfies the predicate; `true` means some record *may*.
    ///
    /// Predicates evaluated against a structurally wrong summary kind (e.g.
    /// a range over a value set) answer `true` — the summary cannot prove
    /// absence, and ROADS must never produce a false negative.
    pub fn may_match(&self, pred: &Predicate) -> bool {
        match (self, pred) {
            (AttributeSummary::Hist(h), Predicate::Range { lo, hi, .. }) => {
                h.may_match_range(*lo, *hi)
            }
            (AttributeSummary::MultiRes(p), Predicate::Range { lo, hi, .. }) => {
                p.may_match_range(*lo, *hi)
            }
            (AttributeSummary::Hist(h), Predicate::Eq { value, .. }) => match value.as_f64() {
                Some(v) => h.may_match_range(v, v),
                None => true,
            },
            (AttributeSummary::MultiRes(p), Predicate::Eq { value, .. }) => match value.as_f64() {
                Some(v) => p.may_match_range(v, v),
                None => true,
            },
            (AttributeSummary::Set(s), Predicate::Eq { value, .. }) => match value.as_str() {
                Some(v) => s.contains(v),
                None => true,
            },
            (AttributeSummary::Bloom(b), Predicate::Eq { value, .. }) => match value.as_str() {
                Some(v) => b.contains(v),
                None => true,
            },
            (AttributeSummary::Set(s), Predicate::OneOf { values, .. }) => {
                values.iter().any(|v| s.contains(v))
            }
            (AttributeSummary::Bloom(b), Predicate::OneOf { values, .. }) => {
                values.iter().any(|v| b.contains(v))
            }
            // Structurally mismatched predicate/summary pairs (range over a
            // categorical summary, set membership over a histogram): the
            // summary cannot prove absence, so stay conservative.
            (AttributeSummary::Set(_) | AttributeSummary::Bloom(_), Predicate::Range { .. })
            | (
                AttributeSummary::Hist(_) | AttributeSummary::MultiRes(_),
                Predicate::OneOf { .. },
            ) => true,
        }
    }

    /// Whether this summary can *exactly* unlearn `v` (reverse the fold
    /// performed by the summary layer when the value was inserted).
    ///
    /// Histograms and multi-resolution pyramids decrement counters, so they
    /// can — unless saturation dropped increments or the target bucket is
    /// empty. Value sets and Bloom filters cannot unlearn (a set entry may
    /// be shared by several records; Bloom bits are irreversibly ORed), so
    /// any categorical value present forces the caller to rebuild from
    /// records. Values of a structurally mismatched type were never folded
    /// in ([`crate::Summary::add_record`] ignores them), so they unlearn
    /// trivially.
    pub fn can_unlearn(&self, v: &roads_records::Value) -> bool {
        match (self, v) {
            (AttributeSummary::Hist(h), v) => match v.as_f64() {
                Some(f) => h.can_remove(f),
                None => true,
            },
            (AttributeSummary::MultiRes(p), v) => match v.as_f64() {
                Some(f) => p.can_remove(f),
                None => true,
            },
            (
                AttributeSummary::Set(_) | AttributeSummary::Bloom(_),
                roads_records::Value::Cat(_) | roads_records::Value::Text(_),
            ) => false,
            _ => true,
        }
    }

    /// Unlearn `v` in place. Returns `false` — leaving the summary
    /// untouched — when [`AttributeSummary::can_unlearn`] is `false`.
    pub fn unlearn(&mut self, v: &roads_records::Value) -> bool {
        if !self.can_unlearn(v) {
            return false;
        }
        self.unlearn_vouched(v);
        true
    }

    /// Unlearn `v` after the caller has already checked
    /// [`AttributeSummary::can_unlearn`] — skips the re-check on the hot
    /// delta path, where one pass vouches for every attribute before any
    /// is mutated.
    pub(crate) fn unlearn_vouched(&mut self, v: &roads_records::Value) {
        debug_assert!(self.can_unlearn(v), "caller vouched via can_unlearn");
        match (self, v) {
            (AttributeSummary::Hist(h), v) => {
                if let Some(f) = v.as_f64() {
                    h.remove(f);
                }
            }
            (AttributeSummary::MultiRes(p), v) => {
                if let Some(f) = v.as_f64() {
                    p.remove(f);
                }
            }
            _ => {}
        }
    }

    /// Fold `v` into the summary — the per-attribute half of
    /// [`crate::Summary::add_record`]. Structurally mismatched value types
    /// are ignored.
    pub fn learn(&mut self, v: &roads_records::Value) {
        use roads_records::Value;
        match (self, v) {
            (AttributeSummary::Hist(h), v) => {
                if let Some(f) = v.as_f64() {
                    h.insert(f);
                }
            }
            (AttributeSummary::MultiRes(p), v) => {
                // Per-level insertion: identical to rebuilding the pyramid
                // from a refreshed finest level, because power-of-two
                // bucket mapping nests exactly.
                if let Some(f) = v.as_f64() {
                    p.insert(f);
                }
            }
            (AttributeSummary::Set(s), Value::Cat(c) | Value::Text(c)) => {
                s.insert(c.clone());
            }
            (AttributeSummary::Bloom(b), Value::Cat(c) | Value::Text(c)) => {
                b.insert(c);
            }
            _ => {}
        }
    }

    /// True when the summary condenses zero values.
    pub fn is_empty(&self) -> bool {
        match self {
            AttributeSummary::Hist(h) => h.is_empty(),
            AttributeSummary::MultiRes(p) => p.finest().is_empty(),
            AttributeSummary::Set(s) => s.is_empty(),
            AttributeSummary::Bloom(b) => b.is_empty(),
        }
    }

    /// Merge a same-kind summary into this one.
    pub fn merge(&mut self, other: &AttributeSummary) -> Result<(), AttrMergeError> {
        match (self, other) {
            (AttributeSummary::Hist(a), AttributeSummary::Hist(b)) => {
                a.merge(b).map_err(|e| AttrMergeError {
                    reason: e.to_string(),
                })
            }
            (AttributeSummary::MultiRes(a), AttributeSummary::MultiRes(b)) => {
                a.merge(b).map_err(|e| AttrMergeError {
                    reason: e.to_string(),
                })
            }
            (AttributeSummary::Set(a), AttributeSummary::Set(b)) => {
                a.merge(b);
                Ok(())
            }
            (AttributeSummary::Bloom(a), AttributeSummary::Bloom(b)) => {
                a.merge(b).map_err(|e| AttrMergeError {
                    reason: e.to_string(),
                })
            }
            (a, b) => Err(AttrMergeError {
                reason: format!("kind mismatch: {} vs {}", a.kind_name(), b.kind_name()),
            }),
        }
    }

    /// Short name of the summary kind for diagnostics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            AttributeSummary::Hist(_) => "histogram",
            AttributeSummary::MultiRes(_) => "multires",
            AttributeSummary::Set(_) => "set",
            AttributeSummary::Bloom(_) => "bloom",
        }
    }
}

impl WireSize for AttributeSummary {
    fn wire_size(&self) -> usize {
        // kind tag (1) + payload
        1 + match self {
            AttributeSummary::Hist(h) => h.wire_size(),
            AttributeSummary::MultiRes(p) => p.wire_size(),
            AttributeSummary::Set(s) => s.wire_size(),
            AttributeSummary::Bloom(b) => b.wire_size(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roads_records::{AttrId, Value};

    fn range(lo: f64, hi: f64) -> Predicate {
        Predicate::Range {
            attr: AttrId(0),
            lo,
            hi,
        }
    }

    fn eq_cat(v: &str) -> Predicate {
        Predicate::Eq {
            attr: AttrId(0),
            value: Value::Cat(v.into()),
        }
    }

    #[test]
    fn hist_range_eval() {
        let s = AttributeSummary::Hist(Histogram::from_values(0.0, 1.0, 10, [0.3]));
        assert!(s.may_match(&range(0.25, 0.5)));
        assert!(!s.may_match(&range(0.6, 0.9)));
    }

    #[test]
    fn hist_eq_numeric_point() {
        let s = AttributeSummary::Hist(Histogram::from_values(0.0, 1.0, 10, [0.3]));
        let p = Predicate::Eq {
            attr: AttrId(0),
            value: Value::Float(0.35), // same bucket as 0.3 → conservative hit
        };
        assert!(s.may_match(&p));
    }

    #[test]
    fn set_eval() {
        let s = AttributeSummary::Set(ValueSet::from_values(["MPEG2"]));
        assert!(s.may_match(&eq_cat("MPEG2")));
        assert!(!s.may_match(&eq_cat("H264")));
    }

    #[test]
    fn bloom_eval_no_false_negative() {
        let mut b = BloomFilter::new(512, 3);
        b.insert("MPEG2");
        let s = AttributeSummary::Bloom(b);
        assert!(s.may_match(&eq_cat("MPEG2")));
    }

    #[test]
    fn one_of_any_semantics() {
        let s = AttributeSummary::Set(ValueSet::from_values(["a"]));
        let p = Predicate::OneOf {
            attr: AttrId(0),
            values: vec!["z".into(), "a".into()],
        };
        assert!(s.may_match(&p));
    }

    #[test]
    fn range_over_set_is_conservative_true() {
        let s = AttributeSummary::Set(ValueSet::from_values(["a"]));
        assert!(s.may_match(&range(0.0, 1.0)));
    }

    #[test]
    fn kind_mismatch_merge_fails() {
        let mut a = AttributeSummary::Set(ValueSet::new());
        let b = AttributeSummary::Hist(Histogram::new(0.0, 1.0, 4));
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn unlearn_kinds() {
        // Histograms unlearn exactly…
        let mut h = AttributeSummary::Hist(Histogram::from_values(0.0, 1.0, 4, [0.3]));
        assert!(h.can_unlearn(&Value::Float(0.3)));
        assert!(h.unlearn(&Value::Float(0.3)));
        assert!(h.is_empty());
        // …but refuse when the bucket is already empty.
        assert!(!h.unlearn(&Value::Float(0.3)));

        // Sets and Blooms can never unlearn a present categorical value.
        let mut s = AttributeSummary::Set(ValueSet::from_values(["a"]));
        assert!(!s.can_unlearn(&Value::Cat("a".into())));
        assert!(!s.unlearn(&Value::Cat("a".into())));
        assert!(s.may_match(&eq_cat("a")), "refused unlearn changes nothing");
        let mut b = AttributeSummary::Bloom(BloomFilter::new(64, 2));
        assert!(!b.can_unlearn(&Value::Text("x".into())));
        assert!(!b.unlearn(&Value::Text("x".into())));

        // A structurally mismatched value was never folded in: trivial.
        assert!(s.unlearn(&Value::Float(1.0)));
        assert!(h.unlearn(&Value::Cat("a".into())));
    }

    #[test]
    fn same_kind_merge_works() {
        let mut a = AttributeSummary::Hist(Histogram::from_values(0.0, 1.0, 4, [0.1]));
        let b = AttributeSummary::Hist(Histogram::from_values(0.0, 1.0, 4, [0.9]));
        a.merge(&b).unwrap();
        assert!(a.may_match(&range(0.8, 1.0)));
    }
}
