//! Whole-record summaries: one [`AttributeSummary`] per searchable attribute.
//!
//! "Given a set of resource records, the values of each searchable attribute
//! are aggregated, and the collection of such aggregated values becomes the
//! summary of resource records." (§III-B)

use crate::attr_summary::{AttrMergeError, AttributeSummary};
use crate::bloom::BloomFilter;
use crate::histogram::Histogram;
use crate::multires::MultiResHistogram;
use crate::value_set::ValueSet;
use roads_records::{AttrType, Query, Record, Schema, WireSize};
use serde::{Deserialize, Serialize};

/// Outcome of [`Summary::decide`]: the may-match answer plus which
/// per-attribute representation it hinged on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SummaryVerdict {
    /// Some record may match. `fuzziest` names the loosest participating
    /// summary kind (the likeliest false-positive source).
    Match {
        /// [`AttributeSummary::kind_name`] label, `None` for predicate-free
        /// queries.
        fuzziest: Option<&'static str>,
    },
    /// Provably no record matches. `decided_by` names the kind that
    /// proved absence (`None` when the summary itself is empty or the
    /// predicate fell outside the schema).
    Prune {
        /// [`AttributeSummary::kind_name`] label of the pruning attribute.
        decided_by: Option<&'static str>,
    },
}

/// How categorical attributes are summarized.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CategoricalMode {
    /// Exact enumerated [`ValueSet`].
    Enumerate,
    /// Fixed-size [`BloomFilter`] with the given bit count and probe count.
    Bloom {
        /// Bits in the filter.
        bits: usize,
        /// Hash probes per element.
        hashes: u32,
    },
}

/// Configuration shared by all summaries in one federation.
///
/// Every participant must summarize with identical parameters, otherwise
/// bottom-up aggregation could not merge child summaries; the config is
/// distributed with the schema.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SummaryConfig {
    /// Histogram buckets per ordered attribute (the paper's `m`; the
    /// simulation default is 1000).
    pub buckets: usize,
    /// Categorical summarization strategy.
    pub categorical: CategoricalMode,
    /// Use multi-resolution pyramids instead of flat histograms.
    pub multires: bool,
}

impl SummaryConfig {
    /// The paper's simulation default: 1000-bucket flat histograms,
    /// enumerated categorical sets.
    pub fn paper_default() -> Self {
        SummaryConfig {
            buckets: 1000,
            categorical: CategoricalMode::Enumerate,
            multires: false,
        }
    }

    /// Flat histograms with `m` buckets.
    pub fn with_buckets(m: usize) -> Self {
        SummaryConfig {
            buckets: m,
            ..Self::paper_default()
        }
    }
}

impl Default for SummaryConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Summary of a record set: per-attribute condensed representations aligned
/// to the schema's attribute order.
///
/// This is the unit of data that flows in ROADS — owners export it, servers
/// aggregate it bottom-up, and the replication overlay copies it sideways.
/// Its wire size is independent of how many records it condenses, which is
/// the root of the paper's 1–2 orders of magnitude update-overhead win.
///
/// ```
/// use roads_records::{Query, QueryId, Predicate, AttrId, OwnerId, Record, RecordId, Schema, Value};
/// use roads_summary::{Summary, SummaryConfig};
///
/// let schema = Schema::unit_numeric(2);
/// let records = vec![
///     Record::new_unchecked(RecordId(0), OwnerId(0), vec![Value::Float(0.2), Value::Float(0.9)]),
///     Record::new_unchecked(RecordId(1), OwnerId(0), vec![Value::Float(0.7), Value::Float(0.1)]),
/// ];
/// let summary = Summary::from_records(&schema, &SummaryConfig::with_buckets(100), &records);
///
/// // Conservative evaluation: never a false negative.
/// let hit = Query::new(QueryId(1), vec![Predicate::Range { attr: AttrId(0), lo: 0.15, hi: 0.25 }]);
/// let miss = Query::new(QueryId(2), vec![Predicate::Range { attr: AttrId(0), lo: 0.4, hi: 0.6 }]);
/// assert!(summary.may_match(&hit));
/// assert!(!summary.may_match(&miss));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    per_attr: Vec<AttributeSummary>,
    records: u64,
}

impl Summary {
    /// Empty summary for `schema` under `config`.
    pub fn empty(schema: &Schema, config: &SummaryConfig) -> Self {
        let per_attr = schema
            .iter()
            .map(|(_, def)| match def.ty {
                AttrType::Numeric | AttrType::Integer | AttrType::Timestamp => {
                    if config.multires {
                        let m = config.buckets.next_power_of_two();
                        AttributeSummary::MultiRes(MultiResHistogram::from_finest(Histogram::new(
                            def.lo, def.hi, m,
                        )))
                    } else {
                        AttributeSummary::Hist(Histogram::new(def.lo, def.hi, config.buckets))
                    }
                }
                AttrType::Categorical | AttrType::Text => match config.categorical {
                    CategoricalMode::Enumerate => AttributeSummary::Set(ValueSet::new()),
                    CategoricalMode::Bloom { bits, hashes } => {
                        AttributeSummary::Bloom(BloomFilter::new(bits, hashes))
                    }
                },
            })
            .collect();
        Summary {
            per_attr,
            records: 0,
        }
    }

    /// Summarize a set of records.
    pub fn from_records<'a>(
        schema: &Schema,
        config: &SummaryConfig,
        records: impl IntoIterator<Item = &'a Record>,
    ) -> Self {
        let mut s = Summary::empty(schema, config);
        for r in records {
            s.add_record(r);
        }
        s
    }

    /// Fold one record into the summary.
    pub fn add_record(&mut self, record: &Record) {
        for (slot, v) in self.per_attr.iter_mut().zip(record.values()) {
            slot.learn(v);
        }
        self.records += 1;
    }

    /// Exactly reverse [`Summary::add_record`] for a record whose values
    /// were previously folded in.
    ///
    /// Returns `false` — leaving the summary byte-identical — when any
    /// attribute cannot unlearn its value exactly: categorical sets and
    /// Bloom filters never can (shared entries / ORed bits), and a
    /// saturated histogram has dropped increments. A `false` answer means
    /// the caller must re-aggregate this summary from its underlying
    /// records; a `true` answer guarantees the result equals a fresh
    /// [`Summary::from_records`] over the remaining record set.
    pub fn remove_record(&mut self, record: &Record) -> bool {
        if self.records == 0 {
            return false;
        }
        let removable = self
            .per_attr
            .iter()
            .zip(record.values())
            .all(|(a, v)| a.can_unlearn(v));
        if !removable {
            return false;
        }
        for (slot, v) in self.per_attr.iter_mut().zip(record.values()) {
            slot.unlearn_vouched(v);
        }
        self.records -= 1;
        true
    }

    /// Replace one record's contribution with another's — the hot
    /// operation of the incremental delta plane. Equivalent to a
    /// successful [`Summary::remove_record`] followed by
    /// [`Summary::add_record`], but the unlearn/learn pair runs in a
    /// single pass over the attributes after the unlearn check. Returns
    /// `false` — leaving the summary byte-identical — when `old` cannot be
    /// unlearned exactly, in which case the caller must re-aggregate from
    /// records just as for a refused removal.
    pub fn replace_record(&mut self, old: &Record, new: &Record) -> bool {
        if self.records == 0 {
            return false;
        }
        let removable = self
            .per_attr
            .iter()
            .zip(old.values())
            .all(|(a, v)| a.can_unlearn(v));
        if !removable {
            return false;
        }
        for ((slot, ov), nv) in self.per_attr.iter_mut().zip(old.values()).zip(new.values()) {
            slot.unlearn_vouched(ov);
            slot.learn(nv);
        }
        true
    }

    /// Number of records this summary condenses (including merged children).
    pub fn record_count(&self) -> u64 {
        self.records
    }

    /// Number of attributes (schema arity).
    pub fn arity(&self) -> usize {
        self.per_attr.len()
    }

    /// Per-attribute summary by schema position.
    pub fn attr(&self, idx: usize) -> &AttributeSummary {
        &self.per_attr[idx]
    }

    /// True when no record has been folded in.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Conservative conjunctive query evaluation: `true` iff *every*
    /// predicate may match. "Finally the server obtains 'true' or 'false'
    /// results on each child's summary, and directs the client to query
    /// those children with results of 'true'." (§III-B)
    pub fn may_match(&self, query: &Query) -> bool {
        if self.records == 0 {
            return false;
        }
        query.predicates().iter().all(|p| {
            let idx = p.attr().index();
            idx < self.per_attr.len() && self.per_attr[idx].may_match(p)
        })
    }

    /// [`Summary::may_match`] with provenance: *which* per-attribute
    /// representation decided.
    ///
    /// On a prune, reports the kind of the first attribute summary that
    /// proved absence. On a match, reports the *fuzziest* participating
    /// kind — the likeliest false-positive source, ranked Bloom >
    /// multi-resolution > histogram > exact value set (a value set cannot
    /// false-positive at all). Kind labels are
    /// [`AttributeSummary::kind_name`] strings; `None` when the summary
    /// is empty or the query has no in-range predicates.
    pub fn decide(&self, query: &Query) -> SummaryVerdict {
        if self.records == 0 {
            return SummaryVerdict::Prune { decided_by: None };
        }
        let mut fuzziest: Option<&'static str> = None;
        for p in query.predicates() {
            let idx = p.attr().index();
            if idx >= self.per_attr.len() {
                return SummaryVerdict::Prune { decided_by: None };
            }
            let a = &self.per_attr[idx];
            if !a.may_match(p) {
                return SummaryVerdict::Prune {
                    decided_by: Some(a.kind_name()),
                };
            }
            let rank = |k: &str| match k {
                "set" => 0,
                "histogram" => 1,
                "multires" => 2,
                "bloom" => 3,
                _ => 0,
            };
            if fuzziest.is_none_or(|f| rank(a.kind_name()) > rank(f)) {
                fuzziest = Some(a.kind_name());
            }
        }
        SummaryVerdict::Match { fuzziest }
    }

    /// Merge another summary (bottom-up aggregation step).
    pub fn merge(&mut self, other: &Summary) -> Result<(), AttrMergeError> {
        if self.per_attr.len() != other.per_attr.len() {
            return Err(AttrMergeError {
                reason: format!(
                    "arity mismatch: {} vs {}",
                    self.per_attr.len(),
                    other.per_attr.len()
                ),
            });
        }
        for (a, b) in self.per_attr.iter_mut().zip(&other.per_attr) {
            a.merge(b)?;
        }
        self.records += other.records;
        Ok(())
    }

    /// Aggregate many summaries into one (used by servers to produce their
    /// branch summary from child summaries).
    pub fn aggregate<'a>(
        schema: &Schema,
        config: &SummaryConfig,
        parts: impl IntoIterator<Item = &'a Summary>,
    ) -> Result<Summary, AttrMergeError> {
        let mut out = Summary::empty(schema, config);
        for p in parts {
            out.merge(p)?;
        }
        Ok(out)
    }
}

impl WireSize for Summary {
    fn wire_size(&self) -> usize {
        // record count (8) + arity (2) + per-attribute summaries
        10 + self.per_attr.iter().map(WireSize::wire_size).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roads_records::{AttrDef, OwnerId, QueryBuilder, QueryId, RecordBuilder, RecordId, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            AttrDef::categorical("type"),
            AttrDef::categorical("encoding"),
            AttrDef::numeric("rate", 0.0, 1000.0),
            AttrDef::numeric("resolution", 0.0, 4000.0),
        ])
        .unwrap()
    }

    fn camera(schema: &Schema, id: u64, enc: &str, rate: f64) -> Record {
        RecordBuilder::new(schema, RecordId(id), OwnerId(1))
            .set("type", "camera")
            .set("encoding", enc)
            .set("rate", rate)
            .set("resolution", 640.0)
            .build()
            .unwrap()
    }

    fn config() -> SummaryConfig {
        SummaryConfig::with_buckets(100)
    }

    #[test]
    fn decide_reports_pruning_and_fuzziest_kind() {
        let s = schema();
        let records = vec![camera(&s, 1, "MPEG2", 100.0), camera(&s, 2, "MPEG2", 200.0)];
        // Bloom categorical summaries: the fuzziest participating kind.
        let cfg = SummaryConfig {
            categorical: CategoricalMode::Bloom {
                bits: 256,
                hashes: 3,
            },
            ..SummaryConfig::with_buckets(100)
        };
        let sum = Summary::from_records(&s, &cfg, &records);

        // Match driven by a bloom + a histogram: bloom is fuzzier.
        let q = QueryBuilder::new(&s, QueryId(1))
            .eq("type", "camera")
            .gt("rate", 150.0)
            .build();
        assert_eq!(
            sum.decide(&q),
            SummaryVerdict::Match {
                fuzziest: Some("bloom")
            }
        );

        // Histogram-only predicate: histogram is the fuzziest participant.
        let q = QueryBuilder::new(&s, QueryId(2)).gt("rate", 150.0).build();
        assert_eq!(
            sum.decide(&q),
            SummaryVerdict::Match {
                fuzziest: Some("histogram")
            }
        );

        // A rate range no record covers: the histogram proves absence.
        let q = QueryBuilder::new(&s, QueryId(3))
            .range("rate", 900.0, 1000.0)
            .build();
        assert_eq!(
            sum.decide(&q),
            SummaryVerdict::Prune {
                decided_by: Some("histogram")
            }
        );

        // decide() agrees with may_match() on both branches.
        for q in [
            QueryBuilder::new(&s, QueryId(4)).gt("rate", 150.0).build(),
            QueryBuilder::new(&s, QueryId(5))
                .range("rate", 900.0, 1000.0)
                .build(),
        ] {
            assert_eq!(
                matches!(sum.decide(&q), SummaryVerdict::Match { .. }),
                sum.may_match(&q)
            );
        }

        // Empty summary prunes with no deciding attribute.
        let empty = Summary::from_records(&s, &cfg, &[]);
        let q = QueryBuilder::new(&s, QueryId(6)).gt("rate", 0.0).build();
        assert_eq!(empty.decide(&q), SummaryVerdict::Prune { decided_by: None });
    }

    #[test]
    fn paper_query_against_summary() {
        let s = schema();
        let records = vec![camera(&s, 1, "MPEG2", 100.0), camera(&s, 2, "MPEG2", 200.0)];
        let sum = Summary::from_records(&s, &config(), &records);

        // type=camera AND rate>150 AND encoding=MPEG2 → may match (record 2).
        let q = QueryBuilder::new(&s, QueryId(1))
            .eq("type", "camera")
            .gt("rate", 150.0)
            .eq("encoding", "MPEG2")
            .build();
        assert!(sum.may_match(&q));

        // encoding=H264 → definitely no match.
        let q2 = QueryBuilder::new(&s, QueryId(2))
            .eq("encoding", "H264")
            .build();
        assert!(!sum.may_match(&q2));

        // rate>500 → no bucket beyond 500 is occupied.
        let q3 = QueryBuilder::new(&s, QueryId(3)).gt("rate", 500.0).build();
        assert!(!sum.may_match(&q3));
    }

    #[test]
    fn empty_summary_matches_nothing() {
        let s = schema();
        let sum = Summary::empty(&s, &config());
        let q = QueryBuilder::new(&s, QueryId(1))
            .eq("type", "camera")
            .build();
        assert!(!sum.may_match(&q));
    }

    #[test]
    fn merge_unions_matches() {
        let s = schema();
        let a = Summary::from_records(&s, &config(), &[camera(&s, 1, "MPEG2", 100.0)]);
        let b = Summary::from_records(&s, &config(), &[camera(&s, 2, "H264", 900.0)]);
        let merged = Summary::aggregate(&s, &config(), [&a, &b]).unwrap();
        assert_eq!(merged.record_count(), 2);
        let q = QueryBuilder::new(&s, QueryId(1))
            .eq("encoding", "H264")
            .gt("rate", 800.0)
            .build();
        assert!(merged.may_match(&q));
    }

    #[test]
    fn no_false_negatives_vs_exact_matching() {
        // For any record set and query: exact match ⇒ summary match.
        let s = schema();
        let records: Vec<Record> = (0..50)
            .map(|i| {
                camera(
                    &s,
                    i,
                    if i % 3 == 0 { "MPEG2" } else { "H264" },
                    (i as f64 * 19.7) % 1000.0,
                )
            })
            .collect();
        let sum = Summary::from_records(&s, &config(), &records);
        for lo in [0.0, 100.0, 450.0, 900.0] {
            let q = QueryBuilder::new(&s, QueryId(1))
                .eq("encoding", "MPEG2")
                .range("rate", lo, lo + 90.0)
                .build();
            let exact = records.iter().any(|r| q.matches(r));
            if exact {
                assert!(sum.may_match(&q), "false negative at lo={lo}");
            }
        }
    }

    #[test]
    fn wire_size_constant_in_record_count() {
        let s = schema();
        let one = Summary::from_records(&s, &config(), &[camera(&s, 1, "MPEG2", 1.0)]);
        let many: Vec<Record> = (0..500).map(|i| camera(&s, i, "MPEG2", i as f64)).collect();
        let big = Summary::from_records(&s, &config(), &many);
        assert_eq!(one.wire_size(), big.wire_size());
    }

    #[test]
    fn bloom_mode_constant_size_with_vocab() {
        let s = schema();
        let cfg = SummaryConfig {
            categorical: CategoricalMode::Bloom {
                bits: 1024,
                hashes: 4,
            },
            ..config()
        };
        let many: Vec<Record> = (0..200)
            .map(|i| camera(&s, i, &format!("codec-{i}"), 1.0))
            .collect();
        let sum = Summary::from_records(&s, &cfg, &many);
        let one = Summary::from_records(&s, &cfg, &[camera(&s, 1, "x", 1.0)]);
        assert_eq!(sum.wire_size(), one.wire_size());
        // and still no false negatives:
        let q = QueryBuilder::new(&s, QueryId(1))
            .eq("encoding", "codec-77")
            .build();
        assert!(sum.may_match(&q));
    }

    #[test]
    fn multires_mode_round_trips_queries() {
        let s = Schema::unit_numeric(2);
        let cfg = SummaryConfig {
            buckets: 64,
            multires: true,
            categorical: CategoricalMode::Enumerate,
        };
        let r = Record::new_unchecked(
            RecordId(1),
            OwnerId(0),
            vec![Value::Float(0.3), Value::Float(0.7)],
        );
        let sum = Summary::from_records(&s, &cfg, &[r]);
        let q = QueryBuilder::new(&s, QueryId(1))
            .range("x0", 0.25, 0.35)
            .build();
        assert!(sum.may_match(&q));
        let q2 = QueryBuilder::new(&s, QueryId(2))
            .range("x0", 0.8, 0.9)
            .build();
        assert!(!sum.may_match(&q2));
    }

    #[test]
    fn remove_record_reverses_add_for_numeric_schemas() {
        let s = Schema::unit_numeric(3);
        let cfg = SummaryConfig::with_buckets(64);
        let rec = |id: u64, a: f64, b: f64, c: f64| {
            Record::new_unchecked(
                RecordId(id),
                OwnerId(0),
                vec![Value::Float(a), Value::Float(b), Value::Float(c)],
            )
        };
        let r1 = rec(1, 0.1, 0.2, 0.3);
        let r2 = rec(2, 0.9, 0.8, 0.7);
        let mut sum = Summary::from_records(&s, &cfg, &[r1.clone(), r2.clone()]);
        assert!(sum.remove_record(&r2));
        assert_eq!(
            sum,
            Summary::from_records(&s, &cfg, std::slice::from_ref(&r1)),
            "delta removal must be byte-identical to a rebuild"
        );
        assert!(sum.remove_record(&r1));
        assert_eq!(sum, Summary::empty(&s, &cfg));
        // Empty summaries refuse further removal.
        assert!(!sum.remove_record(&r1));
    }

    #[test]
    fn remove_record_refuses_on_categorical_attributes() {
        // A camera record carries Set-summarized values: the set cannot
        // unlearn, so the whole removal must refuse atomically.
        let s = schema();
        let r = camera(&s, 1, "MPEG2", 100.0);
        let mut sum = Summary::from_records(&s, &config(), &[r.clone(), r.clone()]);
        let before = sum.clone();
        assert!(!sum.remove_record(&r));
        assert_eq!(sum, before, "refused removal must leave no partial edit");
    }

    #[test]
    fn multires_remove_record_round_trips() {
        let s = Schema::unit_numeric(2);
        let cfg = SummaryConfig {
            buckets: 32,
            multires: true,
            categorical: CategoricalMode::Enumerate,
        };
        let rec = |id: u64, a: f64, b: f64| {
            Record::new_unchecked(
                RecordId(id),
                OwnerId(0),
                vec![Value::Float(a), Value::Float(b)],
            )
        };
        let keep = rec(1, 0.25, 0.75);
        let churn = rec(2, 0.5, 0.5);
        let mut sum = Summary::from_records(&s, &cfg, &[keep.clone(), churn.clone()]);
        assert!(sum.remove_record(&churn));
        assert_eq!(sum, Summary::from_records(&s, &cfg, &[keep]));
    }

    #[test]
    fn arity_mismatch_merge_rejected() {
        let s2 = Schema::unit_numeric(2);
        let s3 = Schema::unit_numeric(3);
        let cfg = config();
        let mut a = Summary::empty(&s2, &cfg);
        let b = Summary::empty(&s3, &cfg);
        assert!(a.merge(&b).is_err());
    }
}
