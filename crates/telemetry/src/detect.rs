//! Composable online anomaly detectors over metric time-series.
//!
//! The building blocks of the watchdog plane: a [`Detector`] consumes
//! one `(time, value)` sample at a time from a named series (a
//! [`Timeline`] ring fed by a `Sampler`, or any other source) and
//! reports when the series looks anomalous. Three detector families
//! cover the alerting patterns the runtime needs:
//!
//! * [`EwmaSpikeDetector`] — exponentially-weighted mean/variance
//!   baseline with a z-score trigger: fires when a sample lands more
//!   than `sigma` estimated standard deviations from the learned
//!   baseline. A `noise_floor` bounds the denominator from below so a
//!   perfectly flat series (variance zero) cannot turn numerical dust
//!   into infinite z-scores, and the baseline is *not* updated from
//!   anomalous samples, so a sustained shift keeps firing instead of
//!   being silently absorbed.
//! * [`ThresholdRule`] — a static level with a `min_consecutive`
//!   debounce: fires once a value breaches the level for N samples in
//!   a row (queue depth ceilings, zero-liveness floors).
//! * [`BurnRateRule`] — multi-window SLO burn-rate alerting à la SRE
//!   error budgets: fires when the average of an error-rate series
//!   exceeds `budget × factor` over *both* a short and a long window,
//!   so brief blips (short window only) and slow ancient burn (long
//!   window only) are both rejected.
//!
//! Detectors are deliberately *value-driven*: sample timestamps carry
//! into firings and window bookkeeping but never into the trigger
//! arithmetic of the EWMA/threshold families, which makes their
//! verdicts insensitive to sampler jitter by construction.
//!
//! A [`DetectorBank`] binds detector instances to series names, feeds
//! them only samples it has not already delivered (tracking the ring's
//! monotone timestamps, so bounded [`Timeline`]s that evict old points
//! are fed exactly once), stamps each resulting [`DetectorFiring`] with
//! the bank's evaluation epoch, and attaches the triggering window of
//! recent samples for downstream incident correlation.

use crate::timeline::Timeline;
use std::collections::VecDeque;

/// One detector trigger: the sample that tripped it plus context.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorFiring {
    /// Name of the detector instance that fired.
    pub detector: String,
    /// Name of the series it was watching.
    pub series: String,
    /// Timestamp (ms) of the triggering sample.
    pub at_ms: f64,
    /// Evaluation epoch stamped by the [`DetectorBank`] (0 when the
    /// detector is driven directly).
    pub epoch: u64,
    /// The triggering value.
    pub value: f64,
    /// The level the value crossed (baseline + sigma band, static
    /// level, or budget × factor, by detector family).
    pub threshold: f64,
    /// The recent series window ending at the triggering sample.
    pub window: Vec<(f64, f64)>,
}

/// A detector's verdict for one sample: the trigger level it crossed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Trip {
    /// The level the sample crossed.
    pub threshold: f64,
}

/// An online anomaly detector over one series. Implementations hold
/// whatever running state they need; `observe` is called once per new
/// sample in time order.
pub trait Detector: Send {
    /// Stable instance name (lands in [`DetectorFiring::detector`]).
    fn name(&self) -> &str;
    /// Consume one sample; `Some` when this sample trips the detector.
    fn observe(&mut self, at_ms: f64, value: f64) -> Option<Trip>;
    /// Reset all learned state (baseline, debounce runs, windows).
    fn reset(&mut self);
}

/// EWMA baseline + z-score spike detection. See the module docs.
#[derive(Debug, Clone)]
pub struct EwmaSpikeDetector {
    name: String,
    /// EWMA smoothing factor in (0, 1]; higher adapts faster.
    alpha: f64,
    /// Fire when |value − mean| ≥ sigma × max(std, noise_floor).
    sigma: f64,
    /// Lower bound on the standard-deviation estimate: a drift of at
    /// most `noise_floor` per sample can never produce a z-score above
    /// 1, and a flat series never divides by zero.
    noise_floor: f64,
    /// Samples to absorb before the detector may fire (warmup).
    min_samples: usize,
    mean: f64,
    var: f64,
    seen: usize,
}

impl EwmaSpikeDetector {
    /// A spike detector with the given smoothing factor, z-score
    /// threshold and noise floor. Warmup defaults to 3 samples.
    pub fn new(name: &str, alpha: f64, sigma: f64, noise_floor: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "alpha must be in (0, 1], got {alpha}"
        );
        assert!(sigma > 0.0, "sigma must be positive, got {sigma}");
        assert!(
            noise_floor > 0.0,
            "noise floor must be positive, got {noise_floor}"
        );
        EwmaSpikeDetector {
            name: name.to_string(),
            alpha,
            sigma,
            noise_floor,
            min_samples: 3,
            mean: 0.0,
            var: 0.0,
            seen: 0,
        }
    }

    /// Override the warmup sample count (≥ 1).
    pub fn with_warmup(mut self, min_samples: usize) -> Self {
        self.min_samples = min_samples.max(1);
        self
    }

    /// The configured z-score threshold.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// The current baseline mean estimate.
    pub fn mean(&self) -> f64 {
        self.mean
    }
}

impl Detector for EwmaSpikeDetector {
    fn name(&self) -> &str {
        &self.name
    }

    fn observe(&mut self, _at_ms: f64, value: f64) -> Option<Trip> {
        if !value.is_finite() {
            return None;
        }
        if self.seen == 0 {
            self.mean = value;
            self.var = 0.0;
            self.seen = 1;
            return None;
        }
        let denom = self.var.sqrt().max(self.noise_floor);
        let diff = value - self.mean;
        if self.seen >= self.min_samples && diff.abs() >= self.sigma * denom {
            // Anomalous sample: report, and leave the baseline alone so
            // a sustained shift keeps firing rather than being learned.
            return Some(Trip {
                threshold: self.mean + self.sigma * denom * diff.signum(),
            });
        }
        // Normal sample: fold into the EW mean/variance baseline.
        let incr = self.alpha * diff;
        self.mean += incr;
        self.var = (1.0 - self.alpha) * (self.var + diff * incr);
        self.seen += 1;
        None
    }

    fn reset(&mut self) {
        self.mean = 0.0;
        self.var = 0.0;
        self.seen = 0;
    }
}

/// Static threshold with a consecutive-sample debounce.
#[derive(Debug, Clone)]
pub struct ThresholdRule {
    name: String,
    /// The level to compare against.
    level: f64,
    /// `true`: fire on value ≥ level; `false`: fire on value ≤ level.
    above: bool,
    /// Consecutive breaching samples required before firing.
    min_consecutive: usize,
    run: usize,
}

impl ThresholdRule {
    /// Fire when a value is ≥ `level` for `min_consecutive` samples.
    pub fn above(name: &str, level: f64, min_consecutive: usize) -> Self {
        ThresholdRule {
            name: name.to_string(),
            level,
            above: true,
            min_consecutive: min_consecutive.max(1),
            run: 0,
        }
    }

    /// Fire when a value is ≤ `level` for `min_consecutive` samples.
    pub fn below(name: &str, level: f64, min_consecutive: usize) -> Self {
        ThresholdRule {
            above: false,
            ..Self::above(name, level, min_consecutive)
        }
    }
}

impl Detector for ThresholdRule {
    fn name(&self) -> &str {
        &self.name
    }

    fn observe(&mut self, _at_ms: f64, value: f64) -> Option<Trip> {
        let breach = value.is_finite()
            && if self.above {
                value >= self.level
            } else {
                value <= self.level
            };
        if breach {
            self.run += 1;
            if self.run >= self.min_consecutive {
                return Some(Trip {
                    threshold: self.level,
                });
            }
        } else {
            self.run = 0;
        }
        None
    }

    fn reset(&mut self) {
        self.run = 0;
    }
}

/// Multi-window SLO burn-rate rule over an error-rate series.
///
/// The watched series is a rate in `[0, ∞)` (fraction of requests
/// violating the SLO per sample). With an error budget of `budget`
/// (the long-run rate the SLO tolerates) the rule fires when the mean
/// rate over the trailing short window *and* the trailing long window
/// both exceed `budget × factor` — the classic two-window construction
/// that pages fast on a real outage but ignores single-sample blips
/// and slow historical burn.
#[derive(Debug, Clone)]
pub struct BurnRateRule {
    name: String,
    budget: f64,
    factor: f64,
    short_ms: f64,
    long_ms: f64,
    /// Samples required inside the long window before firing.
    min_samples: usize,
    ring: VecDeque<(f64, f64)>,
}

impl BurnRateRule {
    /// A burn-rate rule firing when both trailing windows average above
    /// `budget × factor`. Requires `short_ms < long_ms`.
    pub fn new(name: &str, budget: f64, factor: f64, short_ms: f64, long_ms: f64) -> Self {
        assert!(budget >= 0.0, "budget must be non-negative, got {budget}");
        assert!(factor > 0.0, "factor must be positive, got {factor}");
        assert!(
            short_ms > 0.0 && long_ms > short_ms,
            "windows must satisfy 0 < short ({short_ms}) < long ({long_ms})"
        );
        BurnRateRule {
            name: name.to_string(),
            budget,
            factor,
            short_ms,
            long_ms,
            min_samples: 3,
            ring: VecDeque::new(),
        }
    }

    /// Override the minimum long-window sample count (≥ 1).
    pub fn with_min_samples(mut self, min_samples: usize) -> Self {
        self.min_samples = min_samples.max(1);
        self
    }

    /// The firing level: `budget × factor`.
    pub fn burn_threshold(&self) -> f64 {
        self.budget * self.factor
    }

    fn window_mean(&self, now_ms: f64, span_ms: f64) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for &(t, v) in self.ring.iter().rev() {
            if now_ms - t > span_ms {
                break;
            }
            sum += v;
            n += 1;
        }
        (n > 0).then(|| sum / n as f64)
    }
}

impl Detector for BurnRateRule {
    fn name(&self) -> &str {
        &self.name
    }

    fn observe(&mut self, at_ms: f64, value: f64) -> Option<Trip> {
        if !value.is_finite() {
            return None;
        }
        self.ring.push_back((at_ms, value));
        while self
            .ring
            .front()
            .is_some_and(|&(t, _)| at_ms - t > self.long_ms)
        {
            self.ring.pop_front();
        }
        if self.ring.len() < self.min_samples {
            return None;
        }
        let level = self.burn_threshold();
        let short = self.window_mean(at_ms, self.short_ms)?;
        let long = self.window_mean(at_ms, self.long_ms)?;
        (short >= level && long >= level).then_some(Trip { threshold: level })
    }

    fn reset(&mut self) {
        self.ring.clear();
    }
}

/// How many trailing samples a firing's attached window carries.
const FIRING_WINDOW: usize = 16;

/// One detector bound to one series inside a [`DetectorBank`].
struct Binding {
    series: String,
    detector: Box<dyn Detector>,
    /// Timestamp of the newest sample already delivered; bounded
    /// timelines evict old points, so dedup is by monotone time, not
    /// index.
    last_seen_ms: f64,
    recent: VecDeque<(f64, f64)>,
}

/// A set of detectors bound to named series, fed from a [`Timeline`].
/// See the module docs.
#[derive(Default)]
pub struct DetectorBank {
    epoch: u64,
    bindings: Vec<Binding>,
}

impl DetectorBank {
    /// An empty bank at epoch 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind a detector instance to the series it should watch. One
    /// series may carry any number of detectors and vice versa.
    pub fn bind(&mut self, series: &str, detector: impl Detector + 'static) {
        self.bindings.push(Binding {
            series: series.to_string(),
            detector: Box::new(detector),
            last_seen_ms: f64::NEG_INFINITY,
            recent: VecDeque::new(),
        });
    }

    /// Number of bound detectors.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// Whether the bank has no bindings.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }

    /// Distinct detector names across all bindings, in binding order —
    /// the label set a metrics plane should pre-resolve per-detector
    /// instruments for.
    pub fn detector_names(&self) -> Vec<String> {
        let mut names: Vec<String> = Vec::new();
        for b in &self.bindings {
            let n = b.detector.name();
            if !names.iter().any(|x| x == n) {
                names.push(n.to_string());
            }
        }
        names
    }

    /// The current evaluation epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Start a new evaluation epoch; subsequent firings carry it.
    pub fn advance_epoch(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }

    /// Feed every binding the samples it has not yet seen from `tl`,
    /// returning all resulting firings stamped with the current epoch.
    pub fn observe_timeline(&mut self, tl: &Timeline) -> Vec<DetectorFiring> {
        let mut firings = Vec::new();
        let epoch = self.epoch;
        for b in &mut self.bindings {
            let Some(points) = tl.points(&b.series) else {
                continue;
            };
            for (t, v) in points {
                if t <= b.last_seen_ms {
                    continue;
                }
                b.last_seen_ms = t;
                if b.recent.len() == FIRING_WINDOW {
                    b.recent.pop_front();
                }
                b.recent.push_back((t, v));
                if let Some(trip) = b.detector.observe(t, v) {
                    firings.push(DetectorFiring {
                        detector: b.detector.name().to_string(),
                        series: b.series.clone(),
                        at_ms: t,
                        epoch,
                        value: v,
                        threshold: trip.threshold,
                        window: b.recent.iter().copied().collect(),
                    });
                }
            }
        }
        firings
    }

    /// Feed one sample directly to every detector bound to `series`
    /// (for sources that are not a [`Timeline`]).
    pub fn observe_sample(&mut self, series: &str, at_ms: f64, value: f64) -> Vec<DetectorFiring> {
        let mut firings = Vec::new();
        let epoch = self.epoch;
        for b in &mut self.bindings {
            if b.series != series || at_ms <= b.last_seen_ms {
                continue;
            }
            b.last_seen_ms = at_ms;
            if b.recent.len() == FIRING_WINDOW {
                b.recent.pop_front();
            }
            b.recent.push_back((at_ms, value));
            if let Some(trip) = b.detector.observe(at_ms, value) {
                firings.push(DetectorFiring {
                    detector: b.detector.name().to_string(),
                    series: series.to_string(),
                    at_ms,
                    epoch,
                    value,
                    threshold: trip.threshold,
                    window: b.recent.iter().copied().collect(),
                });
            }
        }
        firings
    }

    /// Reset every detector's learned state (baselines, runs, rings);
    /// the epoch and already-seen watermarks are kept.
    pub fn reset(&mut self) {
        for b in &mut self.bindings {
            b.detector.reset();
            b.recent.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(d: &mut impl Detector, samples: &[(f64, f64)]) -> Vec<f64> {
        samples
            .iter()
            .filter_map(|&(t, v)| d.observe(t, v).map(|_| t))
            .collect()
    }

    #[test]
    fn ewma_quiet_on_constant_fires_on_spike() {
        let mut d = EwmaSpikeDetector::new("spike", 0.3, 4.0, 0.5);
        let quiet: Vec<(f64, f64)> = (0..50).map(|i| (i as f64 * 10.0, 5.0)).collect();
        assert!(feed(&mut d, &quiet).is_empty(), "constant series is quiet");
        // A step of 4 sigma × noise floor above the flat baseline fires
        // on the very first post-step sample.
        let trip = d.observe(500.0, 5.0 + 4.0 * 0.5).expect("spike fires");
        assert!(trip.threshold > 5.0 && trip.threshold <= 7.0 + 1e-9);
        // The anomalous sample did not contaminate the baseline: the
        // next normal sample is quiet again.
        assert!(d.observe(510.0, 5.0).is_none());
        assert!((d.mean() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn ewma_sustained_shift_keeps_firing() {
        let mut d = EwmaSpikeDetector::new("spike", 0.3, 3.0, 0.1);
        for i in 0..20 {
            assert!(d.observe(i as f64, 1.0).is_none());
        }
        for i in 20..25 {
            assert!(
                d.observe(i as f64, 10.0).is_some(),
                "sustained shift fires every sample (baseline frozen)"
            );
        }
    }

    #[test]
    fn ewma_warmup_suppresses_early_samples() {
        let mut d = EwmaSpikeDetector::new("spike", 0.5, 1.0, 0.01).with_warmup(5);
        // Wild swings inside the warmup never fire.
        for (i, v) in [0.0, 100.0, -50.0, 80.0].iter().enumerate() {
            assert!(d.observe(i as f64, *v).is_none(), "warmup sample {i}");
        }
    }

    #[test]
    fn threshold_debounces() {
        let mut d = ThresholdRule::above("deep", 10.0, 3);
        assert!(d.observe(0.0, 11.0).is_none());
        assert!(d.observe(1.0, 12.0).is_none());
        assert!(d.observe(2.0, 9.0).is_none(), "dip resets the run");
        assert!(d.observe(3.0, 11.0).is_none());
        assert!(d.observe(4.0, 11.0).is_none());
        let trip = d.observe(5.0, 11.0).expect("third consecutive fires");
        assert_eq!(trip.threshold, 10.0);

        let mut low = ThresholdRule::below("dead", 0.5, 2);
        assert!(low.observe(0.0, 0.0).is_none());
        assert!(low.observe(1.0, 0.0).is_some());
    }

    #[test]
    fn burn_rate_needs_both_windows() {
        // budget 0.01, factor 10 → fire at mean rate ≥ 0.1 over both
        // the 30ms short and 100ms long windows.
        let mut d = BurnRateRule::new("burn", 0.01, 10.0, 30.0, 100.0);
        // Long quiet history.
        for i in 0..10 {
            assert!(d.observe(i as f64 * 10.0, 0.0).is_none());
        }
        // One hot sample: short window is hot, long window still cold.
        assert!(d.observe(100.0, 1.0).is_none(), "single blip must not page");
        // Sustained burn: both windows cross budget × factor.
        let mut fired = false;
        for i in 1..12 {
            fired |= d.observe(100.0 + i as f64 * 10.0, 1.0).is_some();
        }
        assert!(fired, "sustained burn fires");
    }

    #[test]
    fn burn_rate_quiet_below_budget() {
        let mut d = BurnRateRule::new("burn", 0.01, 10.0, 30.0, 100.0);
        // Rate steadily below budget × factor never fires.
        for i in 0..100 {
            assert!(d.observe(i as f64 * 10.0, 0.05).is_none());
        }
    }

    #[test]
    fn bank_feeds_new_points_once_and_stamps_epochs() {
        let mut tl = Timeline::with_capacity(10.0, 8);
        let mut bank = DetectorBank::new();
        bank.bind("q", ThresholdRule::above("deep", 10.0, 1));
        assert_eq!(bank.len(), 1);

        for i in 0..4 {
            tl.sample(i as f64 * 10.0, [("q", 1.0)]);
        }
        bank.advance_epoch();
        assert!(bank.observe_timeline(&tl).is_empty());

        tl.sample(40.0, [("q", 25.0)]);
        bank.advance_epoch();
        let firings = bank.observe_timeline(&tl);
        assert_eq!(firings.len(), 1);
        let f = &firings[0];
        assert_eq!((f.detector.as_str(), f.series.as_str()), ("deep", "q"));
        assert_eq!(
            (f.at_ms, f.epoch, f.value, f.threshold),
            (40.0, 2, 25.0, 10.0)
        );
        assert_eq!(f.window.last(), Some(&(40.0, 25.0)));
        assert_eq!(f.window.len(), 5, "window carries the fed history");

        // Re-observing without new samples delivers nothing twice.
        bank.advance_epoch();
        assert!(bank.observe_timeline(&tl).is_empty());
    }

    #[test]
    fn bank_direct_samples() {
        let mut bank = DetectorBank::new();
        bank.bind("err", ThresholdRule::above("hot", 0.5, 1));
        bank.advance_epoch();
        assert!(bank.observe_sample("other", 0.0, 9.0).is_empty());
        let f = bank.observe_sample("err", 1.0, 0.9);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].epoch, 1);
        // Stale timestamps are ignored (already-seen watermark).
        assert!(bank.observe_sample("err", 1.0, 0.9).is_empty());
    }
}
