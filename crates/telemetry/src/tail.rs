//! Tail-based sampling: keep full provenance only for queries worth it.
//!
//! Head-based sampling decides *before* a query runs whether to trace
//! it — which is exactly wrong for tail latency analysis, since the
//! interesting queries (the slow, failed, or incomplete ones) are rare
//! and unpredictable. The [`TailSampler`] decides *after* the fact:
//! every completed query's latency folds into a histogram (cheap,
//! always on), and only queries that are slow (above a live
//! p99-tracked threshold), failed, or incomplete retain their full
//! [`QueryExplain`] record — optionally with the flight-recorder event
//! trace — in a bounded reservoir. Histogram buckets carry the trace id
//! of one retained query each (exemplar-style), so a p99 bucket in an
//! exposition links back to a concrete, fully-explained query.

use crate::event::Event;
use crate::explain::QueryExplain;
use crate::json::Json;
use crate::registry::Histogram;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Why a query's explain record was retained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RetainReason {
    /// Response time above the live p99 threshold (or the floor while
    /// the histogram is still warming up).
    Slow,
    /// The query failed outright (no usable outcome).
    Failed,
    /// The query completed but could not reach every matching branch
    /// (dead servers, deadline).
    Incomplete,
}

impl RetainReason {
    /// Stable label (used in JSON artifacts and renders).
    pub fn as_str(self) -> &'static str {
        match self {
            RetainReason::Slow => "slow",
            RetainReason::Failed => "failed",
            RetainReason::Incomplete => "incomplete",
        }
    }

    /// Inverse of [`RetainReason::as_str`].
    pub fn parse(s: &str) -> Option<RetainReason> {
        Some(match s {
            "slow" => RetainReason::Slow,
            "failed" => RetainReason::Failed,
            "incomplete" => RetainReason::Incomplete,
            _ => return None,
        })
    }
}

/// Tuning knobs for [`TailSampler`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailConfig {
    /// Maximum retained explain records; the least-slow `Slow` entry is
    /// evicted first when full (`Failed`/`Incomplete` are only evicted
    /// by other `Failed`/`Incomplete` once no `Slow` entries remain).
    pub capacity: usize,
    /// Samples required before the live p99 threshold activates; until
    /// then only `floor_ms` gates retention.
    pub min_samples: u64,
    /// Queries faster than this are never retained as `Slow`, even when
    /// the warm-up p99 is tiny.
    pub floor_ms: f64,
}

impl Default for TailConfig {
    fn default() -> Self {
        TailConfig {
            capacity: 64,
            min_samples: 32,
            floor_ms: 1.0,
        }
    }
}

/// One retained tail query.
#[derive(Debug, Clone)]
pub struct RetainedQuery {
    /// Why it was kept.
    pub reason: RetainReason,
    /// The full provenance record.
    pub explain: QueryExplain,
    /// Flight-recorder events of the same trace, when a recorder was
    /// attached at observation time.
    pub events: Vec<Event>,
}

#[derive(Debug, Default)]
struct TailState {
    retained: Vec<RetainedQuery>,
    /// Histogram bucket edge (ms) → trace id of one retained query that
    /// landed in that bucket.
    exemplars: BTreeMap<u64, u64>,
    observed: u64,
    dropped: u64,
}

/// The tail-based sampling reservoir. Thread-safe; share via `Arc`.
#[derive(Debug)]
pub struct TailSampler {
    cfg: TailConfig,
    /// Live latency distribution of *all* observed queries, threshold
    /// source for the `Slow` decision.
    latency_ms: Histogram,
    state: Mutex<TailState>,
}

impl Default for TailSampler {
    fn default() -> Self {
        Self::new(TailConfig::default())
    }
}

impl TailSampler {
    /// A sampler with explicit tuning.
    pub fn new(cfg: TailConfig) -> Self {
        TailSampler {
            cfg: TailConfig {
                capacity: cfg.capacity.max(1),
                ..cfg
            },
            latency_ms: Histogram::new(),
            state: Mutex::new(TailState::default()),
        }
    }

    /// A shared sampler with default tuning.
    pub fn shared() -> Arc<TailSampler> {
        Arc::new(TailSampler::default())
    }

    /// The live retention threshold in milliseconds: the tracked p99
    /// once warmed up, the floor before that. A query at or above this
    /// is `Slow`.
    pub fn threshold_ms(&self) -> f64 {
        if self.latency_ms.count() < self.cfg.min_samples {
            return self.cfg.floor_ms;
        }
        self.latency_ms
            .percentile(0.99)
            .unwrap_or(self.cfg.floor_ms)
            .max(self.cfg.floor_ms)
    }

    /// Classify a completed query without retaining anything.
    pub fn classify(&self, response_ms: f64, failed: bool, complete: bool) -> Option<RetainReason> {
        if failed {
            Some(RetainReason::Failed)
        } else if !complete {
            Some(RetainReason::Incomplete)
        } else if response_ms >= self.threshold_ms() {
            Some(RetainReason::Slow)
        } else {
            None
        }
    }

    /// Observe a completed query: fold its latency into the live
    /// histogram, and retain the explain record (plus optional
    /// flight-recorder events) when it is slow, failed, or incomplete.
    /// Returns the retention decision; `None` means the record was
    /// dropped after folding.
    pub fn observe(
        &self,
        explain: QueryExplain,
        failed: bool,
        events: Vec<Event>,
    ) -> Option<RetainReason> {
        let response_ms = explain.response_us / 1_000.0;
        // Classify against the threshold *before* folding this sample in,
        // so a query is compared to the distribution of its predecessors.
        let reason = self.classify(response_ms, failed, explain.complete);
        self.latency_ms.record(response_ms);
        let mut g = self.state.lock();
        g.observed += 1;
        let Some(reason) = reason else {
            g.dropped += 1;
            return None;
        };
        if g.retained.len() >= self.cfg.capacity && !Self::evict(&mut g.retained, reason) {
            g.dropped += 1;
            return None;
        }
        if explain.trace_id != 0 {
            let edge = Histogram::bucket_edge(response_ms);
            g.exemplars.insert(edge.to_bits(), explain.trace_id);
        }
        g.retained.push(RetainedQuery {
            reason,
            explain,
            events,
        });
        Some(reason)
    }

    /// Drop one entry to make room for a new `incoming` retention.
    /// `Slow` entries go first (least-slow first); `Failed`/`Incomplete`
    /// are only displaced by another `Failed`/`Incomplete`. Returns
    /// false when nothing may be evicted (incoming is dropped instead).
    fn evict(retained: &mut Vec<RetainedQuery>, incoming: RetainReason) -> bool {
        let slowest_first = |r: &[RetainedQuery]| {
            r.iter()
                .enumerate()
                .filter(|(_, q)| q.reason == RetainReason::Slow)
                .min_by(|(_, a), (_, b)| {
                    a.explain
                        .response_us
                        .partial_cmp(&b.explain.response_us)
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(i, _)| i)
        };
        if let Some(i) = slowest_first(retained) {
            retained.swap_remove(i);
            return true;
        }
        // Reservoir holds only Failed/Incomplete: keep them unless the
        // incoming query is also Failed/Incomplete (recency wins then).
        if incoming != RetainReason::Slow {
            retained.swap_remove(0);
            return true;
        }
        false
    }

    /// Snapshot of the retained tail queries.
    pub fn retained(&self) -> Vec<RetainedQuery> {
        self.state.lock().retained.clone()
    }

    /// Exemplar lookup: the retained trace id for the histogram bucket
    /// `response_ms` falls into, if that bucket has one.
    pub fn exemplar(&self, response_ms: f64) -> Option<u64> {
        let edge = Histogram::bucket_edge(response_ms);
        self.state.lock().exemplars.get(&edge.to_bits()).copied()
    }

    /// Total queries observed.
    pub fn observed(&self) -> u64 {
        self.state.lock().observed
    }

    /// Queries dropped after folding (not retained).
    pub fn dropped(&self) -> u64 {
        self.state.lock().dropped
    }

    /// Serialize the reservoir as a `SLOW_QUERIES.json` document:
    /// retained queries ranked by response time (slowest first), each
    /// with its retention reason, attribution, full explain record, and
    /// (when present) flight-recorder events; plus the sampler state
    /// (threshold, counts, exemplar map).
    pub fn report(&self) -> Json {
        let g = self.state.lock();
        let mut ranked: Vec<&RetainedQuery> = g.retained.iter().collect();
        ranked.sort_by(|a, b| {
            b.explain
                .response_us
                .partial_cmp(&a.explain.response_us)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let queries = ranked
            .iter()
            .map(|q| {
                let mut pairs = vec![
                    ("reason", Json::str(q.reason.as_str())),
                    ("explain", q.explain.to_json()),
                ];
                if !q.events.is_empty() {
                    pairs.push((
                        "events",
                        Json::arr(q.events.iter().map(event_to_json).collect()),
                    ));
                }
                Json::obj(pairs)
            })
            .collect();
        let exemplars = g
            .exemplars
            .iter()
            .map(|(&edge, &trace)| {
                Json::obj(vec![
                    ("bucket_ms", Json::num(f64::from_bits(edge))),
                    ("trace_id", Json::num(trace as f64)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("slow_queries", Json::num(1.0)),
            ("threshold_ms", Json::num(self.threshold_ms())),
            ("observed", Json::num(g.observed as f64)),
            ("dropped", Json::num(g.dropped as f64)),
            ("retained", Json::arr(queries)),
            ("exemplars", Json::arr(exemplars)),
        ])
    }
}

/// Serialize one flight-recorder event for the SLOW_QUERIES artifact
/// (enough to rebuild the span tree: ids, kind, timing).
fn event_to_json(e: &Event) -> Json {
    Json::obj(vec![
        ("at_us", Json::num(e.at_us as f64)),
        ("dur_us", Json::num(e.dur_us as f64)),
        ("node", Json::num(e.node as f64)),
        ("trace", Json::num(e.trace.0 as f64)),
        ("span", Json::num(e.span.0 as f64)),
        ("parent", Json::num(e.parent.0 as f64)),
        ("kind", Json::str(e.kind.as_str())),
        ("detail", Json::num(e.detail as f64)),
    ])
}

/// Parse one event serialized by [`event_to_json`] back into an
/// [`Event`]. Used by `roads-inspect` to validate retained traces.
pub fn event_from_json(doc: &Json) -> Result<Event, String> {
    use crate::event::{EventKind, SpanId, TraceId};
    let f = |k: &str| doc.get(k).and_then(Json::as_f64);
    let kind = doc
        .get("kind")
        .and_then(Json::as_str_val)
        .and_then(EventKind::parse)
        .ok_or("event missing kind")?;
    Ok(Event {
        at_us: f("at_us").ok_or("event missing at_us")? as u64,
        dur_us: f("dur_us").unwrap_or(0.0) as u64,
        node: f("node").unwrap_or(0.0) as u32,
        trace: TraceId(f("trace").ok_or("event missing trace")? as u64),
        span: SpanId(f("span").ok_or("event missing span")? as u64),
        parent: SpanId(f("parent").unwrap_or(0.0) as u64),
        kind,
        detail: f("detail").unwrap_or(0.0) as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explain::{ExplainDecision, ExplainHop, HopOutcome, LatencySplit};

    fn explain_ms(id: u64, ms: f64, complete: bool) -> QueryExplain {
        QueryExplain {
            query_id: id,
            trace_id: id + 100,
            entry: 0,
            response_us: ms * 1_000.0,
            complete,
            deadline_hit: false,
            records: 0,
            hops: vec![ExplainHop {
                server: 0,
                decision: ExplainDecision::Entry,
                summary: None,
                false_positive: false,
                outcome: HopOutcome::Replied,
                at_us: 0.0,
                dur_us: ms * 1_000.0,
                caused_by: None,
                local_matches: 0,
                split: LatencySplit::default(),
            }],
        }
    }

    #[test]
    fn warmup_uses_floor_then_live_p99() {
        let s = TailSampler::new(TailConfig {
            capacity: 8,
            min_samples: 10,
            floor_ms: 5.0,
        });
        assert_eq!(s.threshold_ms(), 5.0);
        // Fast queries below the floor are dropped even during warm-up.
        assert_eq!(s.observe(explain_ms(0, 1.0, true), false, Vec::new()), None);
        // Above the floor retains as Slow.
        assert_eq!(
            s.observe(explain_ms(1, 6.0, true), false, Vec::new()),
            Some(RetainReason::Slow)
        );
        // Warm the histogram: 100 fast samples push p99 low, but the
        // floor still applies.
        for i in 0..100 {
            s.observe(explain_ms(2 + i, 0.5, true), false, Vec::new());
        }
        assert!(s.threshold_ms() >= 5.0);
        // And a genuinely slow query after warm-up is retained.
        assert_eq!(
            s.observe(explain_ms(999, 50.0, true), false, Vec::new()),
            Some(RetainReason::Slow)
        );
    }

    #[test]
    fn failed_and_incomplete_always_retained() {
        let s = TailSampler::default();
        assert_eq!(
            s.observe(explain_ms(1, 0.01, true), true, Vec::new()),
            Some(RetainReason::Failed)
        );
        assert_eq!(
            s.observe(explain_ms(2, 0.01, false), false, Vec::new()),
            Some(RetainReason::Incomplete)
        );
        assert_eq!(s.retained().len(), 2);
    }

    #[test]
    fn reservoir_evicts_least_slow_first() {
        let s = TailSampler::new(TailConfig {
            capacity: 2,
            min_samples: 1_000_000, // stay on the floor threshold
            floor_ms: 1.0,
        });
        s.observe(explain_ms(1, 10.0, true), false, Vec::new());
        s.observe(explain_ms(2, 30.0, true), false, Vec::new());
        // Full. A slower query displaces the least-slow entry (id 1).
        s.observe(explain_ms(3, 20.0, true), false, Vec::new());
        let ids: Vec<u64> = s.retained().iter().map(|q| q.explain.query_id).collect();
        assert_eq!(ids.len(), 2);
        assert!(ids.contains(&2) && ids.contains(&3));
        // A Failed query also displaces a Slow one.
        s.observe(explain_ms(4, 0.1, true), true, Vec::new());
        assert!(s
            .retained()
            .iter()
            .any(|q| q.reason == RetainReason::Failed));
        // Once only Failed/Incomplete remain, Slow queries cannot evict.
        s.observe(explain_ms(5, 0.1, false), false, Vec::new());
        assert!(s.retained().iter().all(|q| q.reason != RetainReason::Slow));
        let before: Vec<u64> = s.retained().iter().map(|q| q.explain.query_id).collect();
        s.observe(explain_ms(6, 500.0, true), false, Vec::new());
        let after: Vec<u64> = s.retained().iter().map(|q| q.explain.query_id).collect();
        assert_eq!(before, after, "Slow must not displace Failed/Incomplete");
    }

    #[test]
    fn exemplars_link_buckets_to_trace_ids() {
        let s = TailSampler::new(TailConfig {
            capacity: 8,
            min_samples: 1_000_000,
            floor_ms: 1.0,
        });
        s.observe(explain_ms(1, 42.0, true), false, Vec::new());
        // The exact value and a same-bucket neighbour both resolve.
        assert_eq!(s.exemplar(42.0), Some(101));
        // A far-away bucket has no exemplar.
        assert_eq!(s.exemplar(0.004), None);
    }

    #[test]
    fn report_ranks_by_latency_and_round_trips() {
        let s = TailSampler::new(TailConfig {
            capacity: 8,
            min_samples: 1_000_000,
            floor_ms: 1.0,
        });
        s.observe(explain_ms(1, 10.0, true), false, Vec::new());
        s.observe(explain_ms(2, 99.0, true), false, Vec::new());
        s.observe(explain_ms(3, 55.0, true), false, Vec::new());
        let doc = s.report();
        let text = doc.to_string_pretty();
        let parsed = Json::parse(&text).unwrap();
        assert!(parsed.get("slow_queries").is_some());
        let retained = parsed.get("retained").and_then(Json::as_arr).unwrap();
        let ids: Vec<u64> = retained
            .iter()
            .map(|q| {
                QueryExplain::from_json(q.get("explain").unwrap())
                    .unwrap()
                    .query_id
            })
            .collect();
        assert_eq!(ids, vec![2, 3, 1], "ranked slowest first");
        assert_eq!(s.observed(), 3);
        assert_eq!(s.dropped(), 0);
    }

    #[test]
    fn retained_events_serialize_and_parse_back() {
        use crate::event::{Recorder, SpanId};
        let rec = Recorder::new(64);
        let trace = rec.next_trace_id();
        rec.record_span(
            trace,
            SpanId::NONE,
            0,
            crate::event::EventKind::QueryStart,
            0,
            100,
            7,
        );
        let events: Vec<Event> = rec.events();
        let mut e = explain_ms(1, 20.0, true);
        e.trace_id = trace.0;
        let s = TailSampler::new(TailConfig {
            capacity: 4,
            min_samples: 1_000_000,
            floor_ms: 1.0,
        });
        s.observe(e, false, events.clone());
        let doc = s.report();
        let parsed = Json::parse(&doc.to_string_pretty()).unwrap();
        let retained = parsed.get("retained").and_then(Json::as_arr).unwrap();
        let evs = retained[0].get("events").and_then(Json::as_arr).unwrap();
        let back: Vec<Event> = evs.iter().map(|e| event_from_json(e).unwrap()).collect();
        assert_eq!(back, events);
    }
}
