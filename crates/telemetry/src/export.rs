//! Machine-readable figure export.
//!
//! Every `fig*` bench binary builds a [`FigureExport`] alongside its
//! terminal output and writes `results/<figure>.json`: the plotted series,
//! measured-vs-paper reference points, and (when telemetry ran) a metrics
//! snapshot and trace report. The schema is documented in `DESIGN.md`
//! ("Observability") and versioned via `schema_version`.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::json::Json;
use crate::registry::MetricsSnapshot;
use crate::trace::TraceReport;

/// One plotted line: parallel `x`/`y` vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// X coordinates.
    pub x: Vec<f64>,
    /// Y coordinates (same length as `x`).
    pub y: Vec<f64>,
}

/// A single measured quantity with the paper's reported value beside it.
#[derive(Debug, Clone, PartialEq)]
pub struct ReferencePoint {
    /// What is being compared.
    pub name: String,
    /// Value this reproduction measured.
    pub measured: f64,
    /// Value the paper reports.
    pub paper: f64,
}

/// A figure's full machine-readable record.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FigureExport {
    /// File stem: `results/<figure>.json`.
    pub figure: String,
    /// Human-readable title.
    pub title: String,
    /// X axis label.
    pub x_label: String,
    /// Y axis label.
    pub y_label: String,
    /// Plotted series.
    pub series: Vec<Series>,
    /// Measured-vs-paper comparison points.
    pub reference: Vec<ReferencePoint>,
    /// Free-form annotations (configuration, caveats).
    pub notes: Vec<String>,
    /// Metrics snapshot captured at the end of the run, when telemetry ran.
    pub telemetry: Option<MetricsSnapshot>,
    /// Aggregated query traces, when tracing ran.
    pub traces: Option<TraceReport>,
}

impl FigureExport {
    /// Start an export for `figure` (the output file stem).
    pub fn new(figure: impl Into<String>, title: impl Into<String>) -> Self {
        FigureExport {
            figure: figure.into(),
            title: title.into(),
            ..FigureExport::default()
        }
    }

    /// Set the axis labels.
    pub fn axes(mut self, x: impl Into<String>, y: impl Into<String>) -> Self {
        self.x_label = x.into();
        self.y_label = y.into();
        self
    }

    /// Append a series from `(x, y)` points.
    pub fn push_series(&mut self, name: impl Into<String>, points: &[(f64, f64)]) {
        self.series.push(Series {
            name: name.into(),
            x: points.iter().map(|p| p.0).collect(),
            y: points.iter().map(|p| p.1).collect(),
        });
    }

    /// Append a measured-vs-paper reference point.
    pub fn push_reference(&mut self, name: impl Into<String>, measured: f64, paper: f64) {
        self.reference.push(ReferencePoint {
            name: name.into(),
            measured,
            paper,
        });
    }

    /// Append a free-form note.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Attach the end-of-run metrics snapshot.
    pub fn set_telemetry(&mut self, snapshot: MetricsSnapshot) {
        self.telemetry = Some(snapshot);
    }

    /// Attach the aggregated trace report.
    pub fn set_traces(&mut self, report: TraceReport) {
        self.traces = Some(report);
    }

    /// The full JSON document.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::num(1.0)),
            ("figure", Json::str(self.figure.clone())),
            ("title", Json::str(self.title.clone())),
            ("x_label", Json::str(self.x_label.clone())),
            ("y_label", Json::str(self.y_label.clone())),
            (
                "series",
                Json::Arr(
                    self.series
                        .iter()
                        .map(|s| {
                            Json::obj(vec![
                                ("name", Json::str(s.name.clone())),
                                ("x", Json::nums(&s.x)),
                                ("y", Json::nums(&s.y)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "reference",
                Json::Arr(
                    self.reference
                        .iter()
                        .map(|r| {
                            Json::obj(vec![
                                ("name", Json::str(r.name.clone())),
                                ("measured", Json::num(r.measured)),
                                ("paper", Json::num(r.paper)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "notes",
                Json::Arr(self.notes.iter().map(|n| Json::str(n.clone())).collect()),
            ),
            (
                "telemetry",
                self.telemetry
                    .as_ref()
                    .map(|t| t.to_json())
                    .unwrap_or(Json::Null),
            ),
            (
                "traces",
                self.traces
                    .as_ref()
                    .map(|t| t.to_json())
                    .unwrap_or(Json::Null),
            ),
        ])
    }

    /// Write `<dir>/<figure>.json` (pretty-printed), creating `dir` if
    /// needed. Returns the written path.
    pub fn write(&self, dir: impl AsRef<Path>) -> io::Result<PathBuf> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.figure));
        fs::write(&path, self.to_json().to_string_pretty())?;
        Ok(path)
    }

    /// Write to the workspace's default `results/` directory (honouring
    /// the `ROADS_RESULTS_DIR` environment variable) and report the path
    /// on stdout. Errors are printed, not fatal — a figure run should
    /// never die on a full disk after computing its data.
    pub fn write_default(&self) {
        let dir = results_dir();
        match self.write(&dir) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => eprintln!(
                "warning: could not write {}/{}.json: {e}",
                dir.display(),
                self.figure
            ),
        }
    }
}

/// The workspace results directory every artifact writer routes
/// through: `$ROADS_RESULTS_DIR` when set, else `results/`. The
/// directory is not created here — writers create it on first write.
pub fn results_dir() -> PathBuf {
    PathBuf::from(std::env::var("ROADS_RESULTS_DIR").unwrap_or_else(|_| "results".to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn export_document_shape() {
        let mut fig = FigureExport::new("fig_test", "A test figure").axes("nodes", "latency (ms)");
        fig.push_series("roads", &[(10.0, 1.5), (20.0, 2.5)]);
        fig.push_reference("latency@320", 42.0, 40.0);
        fig.push_note("quick mode");
        let r = Registry::new();
        r.counter("queries").add(3);
        r.histogram("lat").record(5.0);
        fig.set_telemetry(r.snapshot());
        let json = fig.to_json().to_string();
        assert!(json.contains("\"schema_version\":1"));
        assert!(json.contains("\"figure\":\"fig_test\""));
        assert!(json.contains("\"x\":[10,20]"));
        assert!(json.contains("\"measured\":42"));
        assert!(json.contains("\"queries\":3"));
        assert!(json.contains("\"traces\":null"));
    }

    #[test]
    fn write_creates_dir_and_file() {
        let dir = std::env::temp_dir().join(format!("roads-telemetry-test-{}", std::process::id()));
        let fig = FigureExport::new("fig_unit", "t");
        let path = fig
            .write(&dir)
            .unwrap_or_else(|e| panic!("writing figure under {}: {e}", dir.display()));
        let body = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("reading back {}: {e}", path.display()));
        assert!(body.starts_with('{'));
        assert!(body.ends_with("}\n"));
        std::fs::remove_dir_all(&dir).unwrap_or_else(|e| panic!("removing {}: {e}", dir.display()));
    }

    #[test]
    fn write_creates_nested_results_dirs() {
        // ROADS_RESULTS_DIR may point several levels deep; `write` must
        // create the whole chain and report failures as io::Result, not
        // panic.
        let root =
            std::env::temp_dir().join(format!("roads-telemetry-nested-{}", std::process::id()));
        let dir = root.join("a").join("b").join("results");
        let fig = FigureExport::new("fig_nested", "t");
        let path = fig
            .write(&dir)
            .unwrap_or_else(|e| panic!("writing figure under {}: {e}", dir.display()));
        assert!(path.exists(), "missing {}", path.display());
        std::fs::remove_dir_all(&root)
            .unwrap_or_else(|e| panic!("removing {}: {e}", root.display()));
    }
}
