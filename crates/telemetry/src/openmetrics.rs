//! Prometheus / OpenMetrics text exposition for a [`Registry`].
//!
//! Three pieces:
//!
//! * [`OpenMetricsSnapshot`] — a consistent freeze of every instrument in
//!   a registry (full histogram buckets included, captured under a single
//!   lock each so concurrent writers can never tear a histogram), and
//!   [`OpenMetricsSnapshot::render`] turning it into the Prometheus text
//!   format: `# TYPE`/`# HELP` metadata, `_total`-suffixed counter
//!   samples, cumulative `_bucket{le="..."}` + `_sum` + `_count` histogram
//!   samples and a closing `# EOF`. Rendering is deterministic — families
//!   and label sets emit in sorted order — so identical snapshots render
//!   byte-identically (CI diffs and dedup caches can compare text).
//! * [`parse`] — the inverse: a small parser from exposition text back to
//!   a [`Scrape`] of families and samples, used by `roads-inspect health`
//!   to pretty-print cluster state from a scrape file and by tests to
//!   round-trip randomized snapshots.
//! * [`Sampler`] — a background thread that periodically snapshots
//!   selected counters/gauges (and histogram count/p99) into a bounded
//!   [`Timeline`] ring, unifying wall-clock runtime sampling with the
//!   simulated-time `timeline.rs` sampler: both produce the same
//!   `(time_ms, value)` series and attach to figures identically.
//!
//! ## Label convention
//!
//! Registry instrument names are flat strings; labeled series encode
//! their labels in the name with [`labeled`]:
//! `runtime.fault_events{kind="kill"}`. The renderer splits the base name
//! from the label block, sanitizes the base into a metric name
//! (`[a-zA-Z0-9_:]`, dots become underscores) and groups every labeling
//! of a base into one metric family.

use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::registry::{HistogramSnapshot, Registry};
use crate::timeline::Timeline;

/// Build a labeled registry instrument name: `base{k="v",...}` with label
/// keys sorted and values escaped, so the same label set always produces
/// the same name regardless of argument order.
pub fn labeled(base: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return base.to_string();
    }
    let mut sorted: Vec<&(&str, &str)> = labels.iter().collect();
    sorted.sort_by_key(|(k, _)| *k);
    let body: Vec<String> = sorted
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", k, escape_label(v)))
        .collect();
    format!("{}{{{}}}", base, body.join(","))
}

/// Escape a label value per the exposition format: backslash, double
/// quote and newline.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escape a `# HELP` text: backslash and newline only (quotes are legal).
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    let mut chars = v.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Sanitize a registry base name into a legal metric name: dots (the
/// registry's namespace separator) and any other illegal character become
/// underscores; a leading digit gains an underscore prefix.
fn sanitize_name(base: &str) -> String {
    let mut out = String::with_capacity(base.len());
    for c in base.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() || out.as_bytes()[0].is_ascii_digit() {
        out.insert(0, '_');
    }
    out
}

/// Split a registry instrument name into its base and parsed labels
/// (inverse of [`labeled`]). Names without a label block return an empty
/// label list; a malformed block is treated as part of the base name.
fn split_labeled(name: &str) -> (String, Vec<(String, String)>) {
    let Some(brace) = name.find('{') else {
        return (name.to_string(), Vec::new());
    };
    if !name.ends_with('}') {
        return (name.to_string(), Vec::new());
    }
    match parse_label_block(&name[brace + 1..name.len() - 1]) {
        Some(labels) => (name[..brace].to_string(), labels),
        None => (name.to_string(), Vec::new()),
    }
}

/// Parse `k="v",k2="v2"` (escapes allowed in values). `None` on syntax
/// errors.
fn parse_label_block(body: &str) -> Option<Vec<(String, String)>> {
    let mut labels = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest.find("=\"")?;
        let key = rest[..eq].trim().to_string();
        if key.is_empty() {
            return None;
        }
        rest = &rest[eq + 2..];
        // Find the closing unescaped quote.
        let mut end = None;
        let bytes = rest.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'\\' => i += 2,
                b'"' => {
                    end = Some(i);
                    break;
                }
                _ => i += 1,
            }
        }
        let end = end?;
        labels.push((key, unescape(&rest[..end])));
        rest = &rest[end + 1..];
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped;
        } else if !rest.is_empty() {
            return None;
        }
    }
    Some(labels)
}

/// Render a label set (already sorted) with an optional extra `le` label
/// appended; empty sets render as no block at all.
fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", sanitize_name(k), escape_label(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Deterministic float formatting: integral values (within exact-integer
/// f64 range) print without a fraction, everything else via Rust's
/// shortest round-trip formatting. Mirrors `json::write_num`.
fn fmt_num(v: f64) -> String {
    if !v.is_finite() {
        // The exposition format has no NaN samples we'd ever want to emit;
        // clamp silently rather than poison the scrape.
        return "0".to_string();
    }
    if v.fract() == 0.0 && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// A consistent freeze of every instrument in a [`Registry`], with full
/// histogram buckets; input to [`OpenMetricsSnapshot::render`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OpenMetricsSnapshot {
    /// Counter values by registry name (may carry a `{label}` block).
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by registry name.
    pub gauges: BTreeMap<String, i64>,
    /// Full histogram snapshots by registry name (empty ones included).
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// One metric family being rendered: kind, then samples grouped by the
/// label block they carried in the registry name.
struct Family {
    kind: &'static str,
    /// `(sorted labels, rendered sample lines)` — kept per label set so
    /// histogram bucket runs stay contiguous.
    samples: Vec<String>,
}

impl OpenMetricsSnapshot {
    /// Freeze `registry` now. Each histogram is captured under a single
    /// lock acquisition, so no individual histogram can be torn; see the
    /// crate's concurrency tests.
    pub fn from_registry(registry: &Registry) -> Self {
        OpenMetricsSnapshot {
            counters: registry.counter_values(),
            gauges: registry.gauge_values(),
            histograms: registry.histogram_snapshots(),
        }
    }

    /// Render to exposition text with no `# HELP` lines.
    pub fn render(&self) -> String {
        self.render_with_help(&[])
    }

    /// Render to exposition text. `help` maps *family* names (sanitized,
    /// e.g. `runtime_fault_events`) to their `# HELP` text. Families sort
    /// by name, samples by label set; identical snapshots render
    /// byte-identically.
    pub fn render_with_help(&self, help: &[(&str, &str)]) -> String {
        let mut families: BTreeMap<String, Family> = BTreeMap::new();
        for (name, &v) in &self.counters {
            let (base, labels) = split_labeled(name);
            let fam = family_name(&mut families, &base, "counter");
            let line = format!("{}_total{} {}", fam, render_labels(&labels, None), v);
            families
                .get_mut(&fam)
                .expect("just created")
                .samples
                .push(line);
        }
        for (name, &v) in &self.gauges {
            let (base, labels) = split_labeled(name);
            let fam = family_name(&mut families, &base, "gauge");
            let line = format!("{}{} {}", fam, render_labels(&labels, None), v);
            families
                .get_mut(&fam)
                .expect("just created")
                .samples
                .push(line);
        }
        for (name, h) in &self.histograms {
            let (base, labels) = split_labeled(name);
            let fam = family_name(&mut families, &base, "histogram");
            let f = families.get_mut(&fam).expect("just created");
            let mut cum = 0u64;
            for &(le, c) in &h.buckets {
                cum += c;
                f.samples.push(format!(
                    "{}_bucket{} {}",
                    fam,
                    render_labels(&labels, Some(&fmt_num(le))),
                    cum
                ));
            }
            f.samples.push(format!(
                "{}_bucket{} {}",
                fam,
                render_labels(&labels, Some("+Inf")),
                h.count
            ));
            f.samples.push(format!(
                "{}_sum{} {}",
                fam,
                render_labels(&labels, None),
                fmt_num(h.sum)
            ));
            f.samples.push(format!(
                "{}_count{} {}",
                fam,
                render_labels(&labels, None),
                h.count
            ));
        }

        let help: BTreeMap<&str, &str> = help.iter().copied().collect();
        let mut out = String::new();
        for (name, fam) in &families {
            if let Some(h) = help.get(name.as_str()) {
                out.push_str(&format!("# HELP {} {}\n", name, escape_help(h)));
            }
            out.push_str(&format!("# TYPE {} {}\n", name, fam.kind));
            for line in &fam.samples {
                out.push_str(line);
                out.push('\n');
            }
        }
        out.push_str("# EOF\n");
        out
    }
}

/// Resolve the family for `base`/`kind`, creating it on first use. Two
/// registry bases that sanitize to the same family name but carry
/// different kinds get a deterministic `_<kind>` suffix on the
/// later-inserted one (counters insert first, then gauges, histograms).
fn family_name(families: &mut BTreeMap<String, Family>, base: &str, kind: &'static str) -> String {
    let mut name = sanitize_name(base);
    if let Some(existing) = families.get(&name) {
        if existing.kind != kind {
            name = format!("{name}_{kind}");
        }
    }
    families.entry(name.clone()).or_insert(Family {
        kind,
        samples: Vec::new(),
    });
    name
}

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct ScrapeSample {
    /// Full sample name (`family`, `family_total`, `family_bucket`, ...).
    pub name: String,
    /// Labels in document order.
    pub labels: Vec<(String, String)>,
    /// Parsed value.
    pub value: f64,
    /// The value's original text, kept so re-rendering is byte-exact.
    pub raw: String,
}

impl ScrapeSample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// One parsed metric family: `# TYPE` kind, optional `# HELP`, samples in
/// document order.
#[derive(Debug, Clone, PartialEq)]
pub struct ScrapeFamily {
    /// Family name from the `# TYPE` line.
    pub name: String,
    /// `counter`, `gauge`, `histogram`, ...
    pub kind: String,
    /// `# HELP` text if present.
    pub help: Option<String>,
    /// Sample lines belonging to this family.
    pub samples: Vec<ScrapeSample>,
}

impl ScrapeFamily {
    /// First sample whose labels include every `(key, value)` in `want`
    /// and whose name ends with `suffix` (empty `suffix` matches any).
    pub fn sample_with(&self, suffix: &str, want: &[(&str, &str)]) -> Option<&ScrapeSample> {
        self.samples
            .iter()
            .find(|s| s.name.ends_with(suffix) && want.iter().all(|(k, v)| s.label(k) == Some(*v)))
    }
}

/// A parsed exposition document. Families keep document order (which for
/// rendered snapshots is sorted order), so [`Scrape::render`] of a parsed
/// document reproduces the original text byte-for-byte.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Scrape {
    /// Families in document order.
    pub families: Vec<ScrapeFamily>,
}

impl Scrape {
    /// The family named `name`, if present.
    pub fn family(&self, name: &str) -> Option<&ScrapeFamily> {
        self.families.iter().find(|f| f.name == name)
    }

    /// Re-render to exposition text. Parsing then rendering a document
    /// produced by [`OpenMetricsSnapshot::render`] is the identity.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.families {
            if let Some(h) = &f.help {
                out.push_str(&format!("# HELP {} {}\n", f.name, escape_help(h)));
            }
            out.push_str(&format!("# TYPE {} {}\n", f.name, f.kind));
            for s in &f.samples {
                out.push_str(&format!(
                    "{}{} {}\n",
                    s.name,
                    render_scrape_labels(&s.labels),
                    s.raw
                ));
            }
        }
        out.push_str("# EOF\n");
        out
    }
}

fn render_scrape_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", k, escape_label(v)))
        .collect();
    format!("{{{}}}", parts.join(","))
}

/// Parse exposition text into a [`Scrape`]. Strict about what this
/// crate's renderer emits (one metadata line per family, samples after
/// their `# TYPE`), line/column-free error strings on anything else.
pub fn parse(text: &str) -> Result<Scrape, String> {
    let mut scrape = Scrape::default();
    let mut pending_help: Option<(String, String)> = None;
    let mut saw_eof = false;
    for (ln, line) in text.lines().enumerate() {
        let err = |msg: &str| format!("line {}: {} ({:?})", ln + 1, msg, line);
        if line.is_empty() {
            continue;
        }
        if saw_eof {
            return Err(err("content after # EOF"));
        }
        if line == "# EOF" {
            saw_eof = true;
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest.split_once(' ').ok_or_else(|| err("malformed HELP"))?;
            if pending_help.is_some() {
                return Err(err("HELP without following TYPE"));
            }
            pending_help = Some((name.to_string(), unescape(help)));
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest.split_once(' ').ok_or_else(|| err("malformed TYPE"))?;
            if scrape.families.iter().any(|f| f.name == name) {
                return Err(err("duplicate family"));
            }
            let help = match pending_help.take() {
                Some((hname, htext)) if hname == name => Some(htext),
                Some(_) => return Err(err("HELP names a different family")),
                None => None,
            };
            scrape.families.push(ScrapeFamily {
                name: name.to_string(),
                kind: kind.to_string(),
                help,
                samples: Vec::new(),
            });
            continue;
        }
        if line.starts_with('#') {
            // Other comments are legal exposition; skip them.
            continue;
        }
        // A sample line: name[{labels}] value
        let (name_and_labels, value_text) = line
            .rsplit_once(' ')
            .ok_or_else(|| err("sample missing value"))?;
        let (name, labels) = if let Some(brace) = name_and_labels.find('{') {
            if !name_and_labels.ends_with('}') {
                return Err(err("unterminated label block"));
            }
            let body = &name_and_labels[brace + 1..name_and_labels.len() - 1];
            let labels = parse_label_block(body).ok_or_else(|| err("malformed labels"))?;
            (&name_and_labels[..brace], labels)
        } else {
            (name_and_labels, Vec::new())
        };
        let value: f64 = if value_text == "+Inf" {
            f64::INFINITY
        } else if value_text == "-Inf" {
            f64::NEG_INFINITY
        } else {
            value_text
                .parse()
                .map_err(|_| err("unparseable sample value"))?
        };
        let fam = scrape
            .families
            .iter_mut()
            .rev()
            .find(|f| name.starts_with(f.name.as_str()))
            .ok_or_else(|| err("sample before its # TYPE"))?;
        fam.samples.push(ScrapeSample {
            name: name.to_string(),
            labels,
            value,
            raw: value_text.to_string(),
        });
    }
    if !saw_eof {
        return Err("missing # EOF terminator".to_string());
    }
    Ok(scrape)
}

/// Shared state between a [`Sampler`]'s owner and its background thread.
struct SamplerShared {
    registry: Arc<Registry>,
    names: Vec<String>,
    interval: Duration,
    t0: Instant,
    state: StdMutex<SamplerState>,
    cv: Condvar,
}

struct SamplerState {
    stop: bool,
    timeline: Timeline,
}

impl SamplerShared {
    /// Take one sample of every selected instrument at elapsed time
    /// `now_ms`. Counters and gauges record their value; histograms
    /// record `<name>.count` and `<name>.p99` from one consistent
    /// single-lock snapshot.
    fn tick(&self, now_ms: f64) {
        let mut points: Vec<(String, f64)> = Vec::with_capacity(self.names.len());
        for name in &self.names {
            if let Some(c) = self.registry.find_counter(name) {
                points.push((name.clone(), c.get() as f64));
            } else if let Some(g) = self.registry.find_gauge(name) {
                points.push((name.clone(), g.get() as f64));
            } else if let Some(h) = self.registry.find_histogram(name) {
                let s = h.full_snapshot();
                points.push((format!("{name}.count"), s.count as f64));
                if s.count > 0 {
                    points.push((format!("{name}.p99"), percentile_of_snapshot(&s, 0.99)));
                }
            }
            // Names that exist in no instrument map yet are skipped; they
            // start sampling once the instrument is created.
        }
        let mut st = self.state.lock().expect("sampler state");
        for (name, v) in points {
            st.timeline.record(now_ms, &name, v);
        }
    }
}

/// Nearest-rank percentile over a frozen [`HistogramSnapshot`].
fn percentile_of_snapshot(s: &HistogramSnapshot, q: f64) -> f64 {
    if s.count == 0 {
        return 0.0;
    }
    let rank = ((s.count as f64) * q).ceil().max(1.0) as u64;
    let mut cum = 0u64;
    for &(le, c) in &s.buckets {
        cum += c;
        if cum >= rank {
            return le.clamp(s.min, s.max);
        }
    }
    s.max
}

/// A background thread that samples selected registry instruments into a
/// bounded [`Timeline`] ring at a fixed wall-clock interval.
///
/// `stop` joins the thread and returns the timeline; dropping without
/// stopping also signals and joins it. Either shutdown path takes one
/// final sample first, so instrument changes after the last scheduled
/// tick are never lost. A `scrape` mid-run clones the timeline
/// accumulated so far without disturbing the schedule.
pub struct Sampler {
    shared: Arc<SamplerShared>,
    handle: Option<JoinHandle<()>>,
}

impl Sampler {
    /// Start sampling `names` from `registry` every `interval`, keeping
    /// at most `capacity` points per series (0 = unbounded). The first
    /// sample is taken immediately.
    pub fn start(
        registry: Arc<Registry>,
        names: &[&str],
        interval: Duration,
        capacity: usize,
    ) -> Self {
        assert!(!interval.is_zero(), "sampler interval must be positive");
        let shared = Arc::new(SamplerShared {
            registry,
            names: names.iter().map(|s| s.to_string()).collect(),
            interval,
            t0: Instant::now(),
            state: StdMutex::new(SamplerState {
                stop: false,
                timeline: Timeline::with_capacity(interval.as_secs_f64() * 1e3, capacity),
            }),
            cv: Condvar::new(),
        });
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("om-sampler".into())
            .spawn(move || {
                let sh = thread_shared;
                let mut next = sh.t0;
                loop {
                    let mut st = sh.state.lock().expect("sampler state");
                    while !st.stop && Instant::now() < next {
                        let wait = next.saturating_duration_since(Instant::now());
                        let (guard, _) = sh.cv.wait_timeout(st, wait).expect("sampler state");
                        st = guard;
                    }
                    let stopping = st.stop;
                    drop(st);
                    // One final sample on shutdown: counter increments
                    // since the last scheduled tick would otherwise never
                    // reach the timeline returned by `stop`/seen at drop.
                    sh.tick(sh.t0.elapsed().as_secs_f64() * 1e3);
                    if stopping {
                        return;
                    }
                    next += sh.interval;
                }
            })
            .expect("spawn sampler thread");
        Sampler {
            shared,
            handle: Some(handle),
        }
    }

    /// Take one sample right now, outside the schedule (tests use this
    /// for deterministic sampling).
    pub fn tick_now(&self) {
        self.shared
            .tick(self.shared.t0.elapsed().as_secs_f64() * 1e3);
    }

    /// Clone the timeline accumulated so far.
    pub fn scrape(&self) -> Timeline {
        self.shared
            .state
            .lock()
            .expect("sampler state")
            .timeline
            .clone()
    }

    /// Stop the background thread and return the final timeline.
    pub fn stop(mut self) -> Timeline {
        self.shutdown();
        self.shared
            .state
            .lock()
            .expect("sampler state")
            .timeline
            .clone()
    }

    fn shutdown(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.shared.state.lock().expect("sampler state").stop = true;
            self.shared.cv.notify_all();
            let _ = handle.join();
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn labeled_sorts_and_escapes() {
        assert_eq!(labeled("a.b", &[]), "a.b");
        assert_eq!(
            labeled("a.b", &[("z", "1"), ("a", "x\"y\\z\n")]),
            "a.b{a=\"x\\\"y\\\\z\\n\",z=\"1\"}"
        );
        // Order-independent.
        assert_eq!(
            labeled("m", &[("k", "v"), ("j", "w")]),
            labeled("m", &[("j", "w"), ("k", "v")])
        );
    }

    #[test]
    fn split_labeled_inverts_labeled() {
        let name = labeled("runtime.fault_events", &[("kind", "kill")]);
        let (base, labels) = split_labeled(&name);
        assert_eq!(base, "runtime.fault_events");
        assert_eq!(labels, vec![("kind".to_string(), "kill".to_string())]);
        let (base, labels) = split_labeled("plain.name");
        assert_eq!(base, "plain.name");
        assert!(labels.is_empty());
    }

    #[test]
    fn renders_counters_gauges_histograms() {
        let r = Registry::new();
        r.counter("roads.queries").add(3);
        r.counter(&labeled("runtime.fault_events", &[("kind", "kill")]))
            .inc();
        r.gauge("runtime.inflight").set(-2);
        let h = r.histogram("runtime.dispatch_ms");
        h.record(0.5);
        h.record(3.0);
        let text = OpenMetricsSnapshot::from_registry(&r)
            .render_with_help(&[("roads_queries", "queries evaluated")]);
        assert!(text.contains("# HELP roads_queries queries evaluated\n"));
        assert!(text.contains("# TYPE roads_queries counter\n"));
        assert!(text.contains("roads_queries_total 3\n"));
        assert!(text.contains("# TYPE runtime_fault_events counter\n"));
        assert!(text.contains("runtime_fault_events_total{kind=\"kill\"} 1\n"));
        assert!(text.contains("# TYPE runtime_inflight gauge\n"));
        assert!(text.contains("runtime_inflight -2\n"));
        assert!(text.contains("# TYPE runtime_dispatch_ms histogram\n"));
        assert!(text.contains("runtime_dispatch_ms_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("runtime_dispatch_ms_sum 3.5\n"));
        assert!(text.contains("runtime_dispatch_ms_count 2\n"));
        assert!(text.ends_with("# EOF\n"));
        // Cumulative buckets: the two finite-bucket lines are increasing.
        let bucket_counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("runtime_dispatch_ms_bucket{le=\"") && !l.contains("+Inf"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert_eq!(bucket_counts, vec![1, 2]);
    }

    #[test]
    fn empty_histogram_still_exposes_family() {
        let r = Registry::new();
        r.histogram("runtime.dispatch_ms");
        let text = OpenMetricsSnapshot::from_registry(&r).render();
        assert!(text.contains("# TYPE runtime_dispatch_ms histogram\n"));
        assert!(text.contains("runtime_dispatch_ms_bucket{le=\"+Inf\"} 0\n"));
        assert!(text.contains("runtime_dispatch_ms_count 0\n"));
    }

    #[test]
    fn render_is_deterministic() {
        let r = Registry::new();
        for i in 0..8 {
            r.counter(&labeled("c.many", &[("i", &i.to_string())]))
                .add(i);
            r.histogram("h.lat").record(i as f64 * 0.7);
        }
        r.gauge("g.depth").set(4);
        let snap = OpenMetricsSnapshot::from_registry(&r);
        assert_eq!(snap.render(), snap.render());
        assert_eq!(snap, OpenMetricsSnapshot::from_registry(&r));
    }

    #[test]
    fn parse_round_trips_render() {
        let r = Registry::new();
        r.counter("a.one").add(7);
        r.counter(&labeled("a.two", &[("mode", "entry"), ("s", "0")]))
            .add(9);
        r.gauge("b.depth").set(-3);
        let h = r.histogram("c.lat_ms");
        for v in [0.2, 1.5, 1.5, 80.0] {
            h.record(v);
        }
        let text = OpenMetricsSnapshot::from_registry(&r)
            .render_with_help(&[("a_one", "with \\ backslash\nand newline")]);
        let scrape = parse(&text).expect("parses");
        assert_eq!(scrape.render(), text, "parse→render is the identity");
        let fam = scrape.family("a_two").unwrap();
        assert_eq!(fam.kind, "counter");
        let s = fam.sample_with("_total", &[("mode", "entry")]).unwrap();
        assert_eq!(s.value, 9.0);
        assert_eq!(
            scrape.family("a_one").unwrap().help.as_deref(),
            Some("with \\ backslash\nand newline")
        );
        assert_eq!(
            scrape
                .family("c_lat_ms")
                .unwrap()
                .sample_with("_count", &[])
                .unwrap()
                .value,
            4.0
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("no eof terminator\n").is_err());
        assert!(parse("orphan_sample 1\n# EOF\n").is_err());
        assert!(parse("# TYPE a counter\na_total nonnumeric\n# EOF\n").is_err());
        assert!(parse("# TYPE a counter\n# TYPE a counter\n# EOF\n").is_err());
        assert!(parse("# EOF\ntrailing 1\n").is_err());
        assert!(parse("# TYPE a counter\na_total{k=\"v} 1\n# EOF\n").is_err());
    }

    #[test]
    fn kind_collisions_disambiguate() {
        let r = Registry::new();
        r.counter("x.n").inc();
        r.gauge("x_n").set(5);
        let text = OpenMetricsSnapshot::from_registry(&r).render();
        assert!(text.contains("# TYPE x_n counter\n"));
        assert!(text.contains("# TYPE x_n_gauge gauge\n"));
        parse(&text).expect("still parseable");
    }

    #[test]
    fn sampler_collects_and_stops() {
        let r = Arc::new(Registry::new());
        r.counter("work.done").add(5);
        r.gauge("work.depth").set(2);
        r.histogram("work.lat").record(1.0);
        let sampler = Sampler::start(
            Arc::clone(&r),
            &["work.done", "work.depth", "work.lat", "absent.name"],
            Duration::from_millis(500),
            16,
        );
        sampler.tick_now();
        r.counter("work.done").add(3);
        sampler.tick_now();
        let mid = sampler.scrape();
        assert!(mid.sample_count() > 0, "mid-run scrape sees samples");
        let tl = sampler.stop();
        let series = tl.series();
        let find = |name: &str| {
            series
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("series {name} missing"))
        };
        let done = find("work.done");
        assert!(done.points.len() >= 2);
        assert_eq!(done.points.last().unwrap().1, 8.0);
        assert_eq!(find("work.depth").points.last().unwrap().1, 2.0);
        assert_eq!(find("work.lat.count").points.last().unwrap().1, 1.0);
        assert!(find("work.lat.p99").points.last().unwrap().1 >= 1.0);
        assert!(
            !tl.series().iter().any(|s| s.name.starts_with("absent")),
            "unknown names never invent series"
        );
    }

    /// Regression: shutdown (explicit `stop` or plain drop) must take one
    /// final sample, so counter increments after the last scheduled tick
    /// are not lost, and must join the thread (no leak past drop).
    #[test]
    fn sampler_shutdown_takes_final_sample_and_joins() {
        let r = Arc::new(Registry::new());
        r.counter("final.count").add(1);
        // Huge interval: after the immediate t0 tick the thread would not
        // sample again for an hour — only the shutdown path can see the
        // later increments.
        let sampler = Sampler::start(
            Arc::clone(&r),
            &["final.count"],
            Duration::from_secs(3600),
            0,
        );
        r.counter("final.count").add(41);
        let tl = sampler.stop();
        let series = tl
            .series()
            .iter()
            .find(|s| s.name == "final.count")
            .expect("series recorded")
            .clone();
        assert_eq!(
            series.points.last().unwrap().1,
            42.0,
            "final snapshot must capture post-tick increments"
        );

        // Same via Drop: the join in shutdown() makes the write visible
        // before drop returns, observable through a mid-run scrape clone
        // being strictly older than the registry's final state.
        let sampler = Sampler::start(
            Arc::clone(&r),
            &["final.count"],
            Duration::from_secs(3600),
            0,
        );
        r.counter("final.count").add(8);
        let shared = Arc::clone(&sampler.shared);
        drop(sampler);
        let st = shared.state.lock().expect("sampler state");
        assert!(
            st.timeline
                .series()
                .iter()
                .find(|s| s.name == "final.count")
                .is_some_and(|s| s.points.last().unwrap().1 == 50.0),
            "drop must flush a final sample before the thread exits"
        );
    }

    #[test]
    fn sampler_ring_stays_bounded() {
        let r = Arc::new(Registry::new());
        r.gauge("g").set(1);
        let sampler = Sampler::start(Arc::clone(&r), &["g"], Duration::from_millis(200), 4);
        for _ in 0..20 {
            sampler.tick_now();
        }
        let tl = sampler.stop();
        for s in tl.series() {
            assert!(
                s.points.len() <= 4,
                "{} overflowed: {}",
                s.name,
                s.points.len()
            );
        }
    }
}
