//! Workspace-wide telemetry for the ROADS reproduction.
//!
//! Four pieces, all dependency-light and thread-safe:
//!
//! * [`registry`] — named monotonic [`Counter`]s, [`Gauge`]s and
//!   log-bucketed latency [`Histogram`]s (fixed memory, mergeable across
//!   threads), collected into a [`Registry`] and exported as a
//!   [`MetricsSnapshot`] with p50/p90/p99 extraction.
//! * [`trace`] — per-query [`QueryTrace`]s recording every hop a discovery
//!   query takes through the federation with a [`HopReason`]
//!   (summary hit, false-positive redirect, overlay shortcut, climb to
//!   parent), plus an aggregator producing hop-count distributions,
//!   false-positive redirect rates and per-node load concentration
//!   (root-load share, Gini coefficient).
//! * [`span`] — scoped wall-clock timers feeding histograms, used by the
//!   threaded prototype runtime to attribute time to phases (local store
//!   search, channel wait, result merge).
//! * [`event`] — the causal flight recorder: a bounded ring buffer of
//!   structured events ([`Event`]) stamped with node, time and
//!   [`TraceId`]/[`SpanId`] causal parents, plus span-tree analysis
//!   (root/acyclicity validation, critical paths) and a Chrome
//!   trace-event / Perfetto exporter (`results/<figure>.trace.json`).
//! * [`timeline`] — a fixed-interval gauge sampler producing
//!   `timeline.<gauge>` time-series inside a [`FigureExport`], with an
//!   optional bounded per-series ring for long-running samplers.
//! * [`detect`] — composable online anomaly detectors over timeline
//!   series (EWMA + z-score spikes, debounced static thresholds,
//!   multi-window SLO burn-rate rules), bound to series names by a
//!   [`DetectorBank`] that stamps epoch'd [`DetectorFiring`]s with the
//!   triggering window attached.
//! * [`openmetrics`] — Prometheus/OpenMetrics text exposition of a
//!   [`Registry`] snapshot (deterministic ordering, label escaping, full
//!   histogram buckets), a parser for scrape files, and a background
//!   [`Sampler`] thread feeding a bounded [`Timeline`] ring.
//! * [`explain`] — per-query provenance: a [`QueryExplain`] record built
//!   along the query path, one hop per contact attempt with its routing
//!   decision, summary kind, outcome and latency split, folded into a
//!   query-level queue/network/compute/retry/failover [`Attribution`].
//! * [`tail`] — tail-based sampling: a bounded [`TailSampler`] reservoir
//!   retaining full explain records (+ flight-recorder traces) only for
//!   slow / failed / incomplete queries, with per-histogram-bucket
//!   exemplar trace ids linking p99 buckets to concrete queries.
//! * [`json`] / [`export`] — a small hand-rolled JSON value type (writer
//!   *and* parser) and the `results/<figure>.json` exporter used by every
//!   `fig*` binary.
//!
//! Everything is opt-in: simulation and runtime code paths accept an
//! `Option`al registry/recorder and do no work when it is absent, so the
//! instrumented build costs nothing when telemetry is not requested.

pub mod detect;
pub mod event;
pub mod explain;
pub mod export;
pub mod json;
pub mod openmetrics;
pub mod registry;
pub mod span;
pub mod stats;
pub mod tail;
pub mod timeline;
pub mod trace;

pub use detect::{
    BurnRateRule, Detector, DetectorBank, DetectorFiring, EwmaSpikeDetector, ThresholdRule, Trip,
};
pub use event::{
    chrome_trace_json, critical_path, slowest_trace, span_tree_root, trace_events, trace_ids,
    write_chrome_trace, write_chrome_trace_default, Event, EventKind, Recorder, SpanId, TraceId,
};
pub use explain::{
    Attribution, ExplainDecision, ExplainHop, HopOutcome, LatencySplit, QueryExplain, SummaryKind,
};
pub use export::{results_dir, FigureExport, ReferencePoint, Series};
pub use json::Json;
pub use openmetrics::{
    labeled, parse as parse_openmetrics, OpenMetricsSnapshot, Sampler, Scrape, ScrapeFamily,
    ScrapeSample,
};
pub use registry::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry};
pub use span::SpanTimer;
pub use stats::LatencyStats;
pub use tail::{event_from_json, RetainReason, RetainedQuery, TailConfig, TailSampler};
pub use timeline::{Timeline, TimelineSeries};
pub use trace::{aggregate_traces, gini, Hop, HopReason, QueryTrace, TraceReport};
