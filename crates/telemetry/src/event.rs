//! Causal flight recorder.
//!
//! A [`Recorder`] is a bounded, thread-safe ring buffer of structured
//! [`Event`]s: message sends and deliveries, summary publishes and merges,
//! overlay replica installs/refreshes, TTL expiries, churn joins/leaves and
//! query hops. Every event is stamped with a time (simulated microseconds
//! or wall-clock microseconds — the producer decides, one run uses one
//! clock), the node it happened on, and a ([`TraceId`], [`SpanId`],
//! parent [`SpanId`]) triple so the events of one query or update round
//! form a span tree rooted at the operation's entry point.
//!
//! Events are `Copy` and recording takes one short mutex acquisition and
//! zero allocations; when no recorder is attached the instrumented code
//! paths reduce to an `Option` check. The buffer holds the most recent
//! `capacity` events — older ones are evicted FIFO and counted in
//! [`Recorder::evicted`], which is what makes this a *flight* recorder:
//! always on, bounded memory, the tail of history available post-mortem.
//!
//! [`chrome_trace_json`] converts a recording into Chrome trace-event JSON
//! that loads directly in Perfetto or `chrome://tracing`: nodes become
//! named threads, events with a duration become complete (`"X"`) slices,
//! point events become instants, and parent→child span edges become flow
//! arrows.

use std::collections::{HashMap, HashSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::json::Json;

/// Identifies one causal chain (a query, an update round, a timer tick).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TraceId(pub u64);

impl TraceId {
    /// "No trace": events outside any causal chain.
    pub const NONE: TraceId = TraceId(0);

    /// Whether this is [`TraceId::NONE`].
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// Identifies one node of a trace's span tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SpanId(pub u64);

impl SpanId {
    /// "No span": the root's parent, or an event with no span identity.
    pub const NONE: SpanId = SpanId(0);

    /// Whether this is [`SpanId::NONE`].
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// What happened. `detail` in [`Event`] is kind-specific (bytes for
/// message events, counts for state events, matches for query hops).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A message left a node (detail: payload bytes).
    MessageSend,
    /// A message arrived at a node (detail: payload bytes).
    MessageDeliver,
    /// A protocol timer fired (detail: timer tag).
    TimerFire,
    /// A server published its branch summary upward (detail: wire bytes).
    SummaryPublish,
    /// A server merged a child's branch summary (detail: child node id).
    SummaryMerge,
    /// A replication-overlay replica was installed for the first time
    /// (detail: replicas installed).
    ReplicaInstall,
    /// An existing overlay replica was refreshed (detail: replicas
    /// refreshed).
    ReplicaRefresh,
    /// Soft-state entries expired without refresh (detail: entries
    /// expired).
    TtlExpire,
    /// A server (re)joined the hierarchy (detail: parent node id).
    ChurnJoin,
    /// A server left or was declared down (detail: departed node id).
    ChurnLeave,
    /// A query entered the system (detail: workload query id).
    QueryStart,
    /// A query visited a server (detail: local matches found there).
    QueryHop,
    /// A query's last result reached the client (detail: total matches).
    QueryComplete,
    /// A dispatched sub-query got no reply within the per-dispatch timeout,
    /// or its target's mailbox was already closed (detail: tries so far).
    DispatchTimeout,
    /// A timed-out dispatch was re-sent after backoff (detail: retry
    /// number, 1-based).
    Retry,
    /// A dead server's sub-query was re-routed to a replication-overlay
    /// stand-in (detail: the dead server's node id; `node` is the helper).
    Failover,
    /// A generic labelled span for coarse phases (detail: free-form).
    Mark,
}

impl EventKind {
    /// Stable kebab-case label used in trace exports.
    pub fn as_str(&self) -> &'static str {
        match self {
            EventKind::MessageSend => "message-send",
            EventKind::MessageDeliver => "message-deliver",
            EventKind::TimerFire => "timer-fire",
            EventKind::SummaryPublish => "summary-publish",
            EventKind::SummaryMerge => "summary-merge",
            EventKind::ReplicaInstall => "replica-install",
            EventKind::ReplicaRefresh => "replica-refresh",
            EventKind::TtlExpire => "ttl-expire",
            EventKind::ChurnJoin => "churn-join",
            EventKind::ChurnLeave => "churn-leave",
            EventKind::QueryStart => "query-start",
            EventKind::QueryHop => "query-hop",
            EventKind::QueryComplete => "query-complete",
            EventKind::DispatchTimeout => "dispatch-timeout",
            EventKind::Retry => "retry",
            EventKind::Failover => "failover",
            EventKind::Mark => "mark",
        }
    }

    /// Inverse of [`EventKind::as_str`]: parse the kebab-case label read
    /// back from an exported trace. `None` for unknown labels.
    pub fn parse(s: &str) -> Option<EventKind> {
        Some(match s {
            "message-send" => EventKind::MessageSend,
            "message-deliver" => EventKind::MessageDeliver,
            "timer-fire" => EventKind::TimerFire,
            "summary-publish" => EventKind::SummaryPublish,
            "summary-merge" => EventKind::SummaryMerge,
            "replica-install" => EventKind::ReplicaInstall,
            "replica-refresh" => EventKind::ReplicaRefresh,
            "ttl-expire" => EventKind::TtlExpire,
            "churn-join" => EventKind::ChurnJoin,
            "churn-leave" => EventKind::ChurnLeave,
            "query-start" => EventKind::QueryStart,
            "query-hop" => EventKind::QueryHop,
            "query-complete" => EventKind::QueryComplete,
            "dispatch-timeout" => EventKind::DispatchTimeout,
            "retry" => EventKind::Retry,
            "failover" => EventKind::Failover,
            "mark" => EventKind::Mark,
            _ => return None,
        })
    }
}

/// One recorded event. `Copy` so recording never allocates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Event time in microseconds (simulated or wall-clock — uniform
    /// within one recording).
    pub at_us: u64,
    /// Span duration in microseconds; 0 for point events.
    pub dur_us: u64,
    /// Node the event happened on.
    pub node: u32,
    /// Causal chain this event belongs to ([`TraceId::NONE`] if none).
    pub trace: TraceId,
    /// This event's span ([`SpanId::NONE`] for span-less events).
    pub span: SpanId,
    /// The causing span ([`SpanId::NONE`] for trace roots).
    pub parent: SpanId,
    /// What happened.
    pub kind: EventKind,
    /// Kind-specific payload (see [`EventKind`]).
    pub detail: u64,
}

/// Fixed-capacity FIFO ring of events.
struct Ring {
    buf: Vec<Event>,
    /// Index of the oldest event once the buffer has wrapped.
    start: usize,
}

/// Bounded, thread-safe flight recorder. See the module docs.
pub struct Recorder {
    ring: Mutex<Ring>,
    capacity: usize,
    evicted: AtomicU64,
    next_span: AtomicU64,
    next_trace: AtomicU64,
}

impl Recorder {
    /// A recorder keeping the most recent `capacity` events (≥ 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Recorder {
            ring: Mutex::new(Ring {
                buf: Vec::with_capacity(capacity),
                start: 0,
            }),
            capacity,
            evicted: AtomicU64::new(0),
            next_span: AtomicU64::new(1),
            next_trace: AtomicU64::new(1),
        }
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently retained events.
    pub fn len(&self) -> usize {
        self.ring.lock().buf.len()
    }

    /// Whether nothing has been recorded (or everything evicted).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted FIFO because the buffer was full.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// A fresh, never-`NONE` span id.
    pub fn next_span_id(&self) -> SpanId {
        SpanId(self.next_span.fetch_add(1, Ordering::Relaxed))
    }

    /// A fresh, never-`NONE` trace id.
    pub fn next_trace_id(&self) -> TraceId {
        TraceId(self.next_trace.fetch_add(1, Ordering::Relaxed))
    }

    /// Append one event, evicting the oldest if the buffer is full.
    pub fn record(&self, ev: Event) {
        let mut ring = self.ring.lock();
        if ring.buf.len() < self.capacity {
            ring.buf.push(ev);
        } else {
            let start = ring.start;
            ring.buf[start] = ev;
            ring.start = (start + 1) % self.capacity;
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record a new span under `parent` and return its id.
    #[allow(clippy::too_many_arguments)]
    pub fn record_span(
        &self,
        trace: TraceId,
        parent: SpanId,
        node: u32,
        kind: EventKind,
        at_us: u64,
        dur_us: u64,
        detail: u64,
    ) -> SpanId {
        let span = self.next_span_id();
        self.record(Event {
            at_us,
            dur_us,
            node,
            trace,
            span,
            parent,
            kind,
            detail,
        });
        span
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        let ring = self.ring.lock();
        let mut out = Vec::with_capacity(ring.buf.len());
        out.extend_from_slice(&ring.buf[ring.start..]);
        out.extend_from_slice(&ring.buf[..ring.start]);
        out
    }

    /// Discard all retained events (id generators keep counting).
    pub fn clear(&self) {
        let mut ring = self.ring.lock();
        ring.buf.clear();
        ring.start = 0;
    }

    /// Merge another recorder's events into this one, keeping global time
    /// order (stable sort, so same-timestamp events of one trace keep
    /// their relative order) and evicting the oldest overflow FIFO.
    pub fn merge(&self, other: &Recorder) {
        let theirs = other.events();
        if theirs.is_empty() {
            return;
        }
        let mut all = self.events();
        all.extend_from_slice(&theirs);
        all.sort_by_key(|e| e.at_us);
        let mut ring = self.ring.lock();
        let overflow = all.len().saturating_sub(self.capacity);
        if overflow > 0 {
            self.evicted.fetch_add(overflow as u64, Ordering::Relaxed);
        }
        ring.buf.clear();
        ring.buf.extend_from_slice(&all[overflow..]);
        ring.start = 0;
    }
}

/// Trace ids present in `events`, ascending, [`TraceId::NONE`] excluded.
pub fn trace_ids(events: &[Event]) -> Vec<TraceId> {
    let mut ids: Vec<TraceId> = events
        .iter()
        .map(|e| e.trace)
        .filter(|t| !t.is_none())
        .collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

/// Events of one trace, in recorded order.
pub fn trace_events(events: &[Event], trace: TraceId) -> Vec<Event> {
    events
        .iter()
        .filter(|e| e.trace == trace)
        .copied()
        .collect()
}

/// Validate that the spans of `trace` form a tree and return its root
/// span. Errors (as human-readable strings) on: no spans, multiple roots,
/// a parent referencing an unknown span, or a cycle.
pub fn span_tree_root(events: &[Event], trace: TraceId) -> Result<SpanId, String> {
    // First event that *defines* each span wins; later events on the same
    // span (e.g. a deliver completing a send) must agree on the parent.
    let mut parent_of: HashMap<SpanId, SpanId> = HashMap::new();
    for e in events.iter().filter(|e| e.trace == trace) {
        if e.span.is_none() {
            continue;
        }
        match parent_of.get(&e.span) {
            None => {
                parent_of.insert(e.span, e.parent);
            }
            Some(&p) if p != e.parent => {
                return Err(format!(
                    "span {} has conflicting parents {} and {}",
                    e.span.0, p.0, e.parent.0
                ));
            }
            Some(_) => {}
        }
    }
    if parent_of.is_empty() {
        return Err(format!("trace {} has no spans", trace.0));
    }
    let mut roots = Vec::new();
    for (&span, &parent) in &parent_of {
        if parent.is_none() {
            roots.push(span);
        } else if !parent_of.contains_key(&parent) {
            return Err(format!(
                "span {} references unknown parent {}",
                span.0, parent.0
            ));
        }
    }
    if roots.len() != 1 {
        return Err(format!(
            "trace {} has {} roots, expected exactly 1",
            trace.0,
            roots.len()
        ));
    }
    // Walk every span to the root; revisiting a span within one walk is a
    // cycle (the conflicting-parent check above makes parents unique).
    for &span in parent_of.keys() {
        let mut seen = HashSet::new();
        let mut cur = span;
        while !cur.is_none() {
            if !seen.insert(cur) {
                return Err(format!("cycle through span {}", cur.0));
            }
            cur = parent_of[&cur];
        }
    }
    Ok(roots[0])
}

/// The critical path of `trace`: the root-to-leaf span chain ending at the
/// latest finishing event, root first. Empty if the trace has no spans.
pub fn critical_path(events: &[Event], trace: TraceId) -> Vec<Event> {
    // Representative event per span: the one finishing last.
    let mut by_span: HashMap<SpanId, Event> = HashMap::new();
    for e in events.iter().filter(|e| e.trace == trace) {
        if e.span.is_none() {
            continue;
        }
        let keep = by_span
            .get(&e.span)
            .map(|old| e.at_us + e.dur_us >= old.at_us + old.dur_us)
            .unwrap_or(true);
        if keep {
            by_span.insert(e.span, *e);
        }
    }
    let Some(last) = by_span
        .values()
        .max_by_key(|e| (e.at_us + e.dur_us, e.span.0))
        .copied()
    else {
        return Vec::new();
    };
    let mut path = vec![last];
    let mut seen: HashSet<SpanId> = [last.span].into_iter().collect();
    let mut cur = last.parent;
    while !cur.is_none() && seen.insert(cur) {
        match by_span.get(&cur) {
            Some(e) => {
                path.push(*e);
                cur = e.parent;
            }
            None => break,
        }
    }
    path.reverse();
    path
}

/// The trace whose span tree finishes latest relative to its own start —
/// the slowest end-to-end operation in the recording.
pub fn slowest_trace(events: &[Event]) -> Option<TraceId> {
    let mut best: Option<(u64, TraceId)> = None;
    for trace in trace_ids(events) {
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for e in events.iter().filter(|e| e.trace == trace) {
            lo = lo.min(e.at_us);
            hi = hi.max(e.at_us + e.dur_us);
        }
        let elapsed = hi.saturating_sub(lo);
        if best.map(|(b, _)| elapsed > b).unwrap_or(true) {
            best = Some((elapsed, trace));
        }
    }
    best.map(|(_, t)| t)
}

/// Convert a recording to a Chrome trace-event document (the JSON object
/// format, `{"traceEvents": [...]}`) loadable in Perfetto and
/// `chrome://tracing`. Nodes map to threads (`tid` = node id) of one
/// process; span parent edges become flow arrows.
pub fn chrome_trace_json(events: &[Event]) -> Json {
    let mut out: Vec<Json> = Vec::with_capacity(events.len() * 2 + 8);
    out.push(meta_event(
        "process_name",
        0,
        None,
        vec![("name", Json::str("roads"))],
    ));
    let mut nodes: Vec<u32> = events.iter().map(|e| e.node).collect();
    nodes.sort_unstable();
    nodes.dedup();
    for n in &nodes {
        out.push(meta_event(
            "thread_name",
            0,
            Some(*n),
            vec![("name", Json::str(format!("server-{n}")))],
        ));
    }
    // Where each span's defining event sits, for flow-arrow endpoints.
    let mut span_site: HashMap<SpanId, (u64, u32)> = HashMap::new();
    for e in events {
        if !e.span.is_none() {
            span_site.entry(e.span).or_insert((e.at_us, e.node));
        }
    }
    for e in events {
        let args = Json::obj(vec![
            ("trace", Json::num(e.trace.0 as f64)),
            ("span", Json::num(e.span.0 as f64)),
            ("parent", Json::num(e.parent.0 as f64)),
            ("detail", Json::num(e.detail as f64)),
        ]);
        let mut fields = vec![
            ("name", Json::str(e.kind.as_str())),
            ("cat", Json::str("roads")),
            ("pid", Json::num(0.0)),
            ("tid", Json::num(e.node as f64)),
            ("ts", Json::num(e.at_us as f64)),
        ];
        if e.dur_us > 0 {
            fields.push(("ph", Json::str("X")));
            fields.push(("dur", Json::num(e.dur_us as f64)));
        } else {
            fields.push(("ph", Json::str("i")));
            fields.push(("s", Json::str("t")));
        }
        fields.push(("args", args));
        out.push(Json::obj(fields));
        // One flow arrow per span, from the parent's defining site to this
        // span's defining site.
        if !e.parent.is_none() && !e.span.is_none() {
            if let (Some(&(pts, pnode)), Some(&(sts, snode))) =
                (span_site.get(&e.parent), span_site.get(&e.span))
            {
                if span_site.get(&e.span) == Some(&(e.at_us, e.node)) {
                    out.push(flow_event("s", e.span, pts, pnode));
                    out.push(flow_event("f", e.span, sts.max(pts), snode));
                }
            }
        }
    }
    Json::obj(vec![("traceEvents", Json::Arr(out))])
}

fn meta_event(name: &str, pid: u32, tid: Option<u32>, args: Vec<(&str, Json)>) -> Json {
    let mut fields = vec![
        ("name", Json::str(name)),
        ("ph", Json::str("M")),
        ("pid", Json::num(pid as f64)),
    ];
    if let Some(tid) = tid {
        fields.push(("tid", Json::num(tid as f64)));
    }
    fields.push(("args", Json::obj(args)));
    Json::obj(fields)
}

fn flow_event(ph: &str, span: SpanId, ts: u64, node: u32) -> Json {
    let mut fields = vec![
        ("name", Json::str("causal")),
        ("cat", Json::str("flow")),
        ("ph", Json::str(ph)),
        ("id", Json::num(span.0 as f64)),
        ("pid", Json::num(0.0)),
        ("tid", Json::num(node as f64)),
        ("ts", Json::num(ts as f64)),
    ];
    if ph == "f" {
        fields.push(("bp", Json::str("e")));
    }
    Json::obj(fields)
}

/// Write `<dir>/<figure>.trace.json` (creating `dir`, nested or not) and
/// return the written path.
pub fn write_chrome_trace(
    figure: &str,
    dir: impl AsRef<Path>,
    events: &[Event],
) -> io::Result<PathBuf> {
    let dir = dir.as_ref();
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{figure}.trace.json"));
    fs::write(&path, chrome_trace_json(events).to_string_pretty())?;
    Ok(path)
}

/// Write the recording next to the figure's `.json` (honouring
/// `ROADS_RESULTS_DIR`, default `results/`) and report the path on
/// stdout. Like [`crate::FigureExport::write_default`], errors warn
/// instead of aborting a finished run.
pub fn write_chrome_trace_default(figure: &str, recorder: &Recorder) {
    let dir = crate::export::results_dir();
    match write_chrome_trace(figure, &dir, &recorder.events()) {
        Ok(path) => {
            if recorder.evicted() > 0 {
                println!(
                    "wrote {} ({} events, {} evicted)",
                    path.display(),
                    recorder.len(),
                    recorder.evicted()
                );
            } else {
                println!("wrote {} ({} events)", path.display(), recorder.len());
            }
        }
        Err(e) => eprintln!(
            "warning: could not write {}/{}.trace.json: {e}",
            dir.display(),
            figure
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_us: u64, trace: u64, span: u64, parent: u64) -> Event {
        Event {
            at_us,
            dur_us: 0,
            node: (span % 7) as u32,
            trace: TraceId(trace),
            span: SpanId(span),
            parent: SpanId(parent),
            kind: EventKind::QueryHop,
            detail: 0,
        }
    }

    #[test]
    fn ring_keeps_most_recent() {
        let rec = Recorder::new(3);
        for i in 0..5 {
            rec.record(ev(i, 1, i + 1, 0));
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.evicted(), 2);
        let ats: Vec<u64> = rec.events().iter().map(|e| e.at_us).collect();
        assert_eq!(ats, vec![2, 3, 4]);
    }

    #[test]
    fn ids_are_fresh_and_nonzero() {
        let rec = Recorder::new(4);
        let a = rec.next_span_id();
        let b = rec.next_span_id();
        assert!(!a.is_none() && !b.is_none() && a != b);
        let t = rec.next_trace_id();
        assert!(!t.is_none());
    }

    #[test]
    fn merge_orders_by_time() {
        let a = Recorder::new(16);
        let b = Recorder::new(16);
        a.record(ev(10, 1, 1, 0));
        a.record(ev(30, 1, 2, 1));
        b.record(ev(20, 2, 3, 0));
        a.merge(&b);
        let ats: Vec<u64> = a.events().iter().map(|e| e.at_us).collect();
        assert_eq!(ats, vec![10, 20, 30]);
    }

    #[test]
    fn span_tree_valid_and_rooted() {
        let events = vec![
            ev(0, 1, 1, 0),
            ev(1, 1, 2, 1),
            ev(2, 1, 3, 1),
            ev(3, 1, 4, 2),
        ];
        assert_eq!(span_tree_root(&events, TraceId(1)), Ok(SpanId(1)));
    }

    #[test]
    fn span_tree_rejects_two_roots_and_unknown_parent() {
        let two_roots = vec![ev(0, 1, 1, 0), ev(1, 1, 2, 0)];
        assert!(span_tree_root(&two_roots, TraceId(1)).is_err());
        let dangling = vec![ev(0, 1, 1, 0), ev(1, 1, 2, 99)];
        assert!(span_tree_root(&dangling, TraceId(1)).is_err());
        assert!(span_tree_root(&[], TraceId(1)).is_err());
    }

    #[test]
    fn critical_path_walks_to_root() {
        // 1 -> 2 -> 4 ends latest; 1 -> 3 is the short branch.
        let events = vec![
            ev(0, 1, 1, 0),
            ev(5, 1, 2, 1),
            ev(6, 1, 3, 1),
            ev(9, 1, 4, 2),
        ];
        let path = critical_path(&events, TraceId(1));
        let spans: Vec<u64> = path.iter().map(|e| e.span.0).collect();
        assert_eq!(spans, vec![1, 2, 4]);
    }

    #[test]
    fn slowest_trace_picks_longest_elapsed() {
        let mut events = vec![ev(0, 1, 1, 0), ev(10, 1, 2, 1)];
        events.push(ev(100, 2, 3, 0));
        let mut long = ev(130, 2, 4, 3);
        long.dur_us = 15;
        events.push(long);
        assert_eq!(slowest_trace(&events), Some(TraceId(2)));
    }

    #[test]
    fn chrome_trace_document_shape() {
        let mut complete = ev(5, 1, 2, 1);
        complete.dur_us = 7;
        let events = vec![ev(0, 1, 1, 0), complete];
        let doc = chrome_trace_json(&events).to_string();
        assert!(doc.starts_with(r#"{"traceEvents":["#));
        assert!(doc.contains(r#""ph":"M""#));
        assert!(doc.contains(r#""ph":"X""#));
        assert!(doc.contains(r#""ph":"i""#));
        assert!(doc.contains(r#""ph":"s""#));
        assert!(doc.contains(r#""dur":7"#));
        assert!(doc.contains(r#""name":"query-hop""#));
    }

    #[test]
    fn event_kind_labels_round_trip() {
        for kind in [
            EventKind::MessageSend,
            EventKind::MessageDeliver,
            EventKind::TimerFire,
            EventKind::SummaryPublish,
            EventKind::SummaryMerge,
            EventKind::ReplicaInstall,
            EventKind::ReplicaRefresh,
            EventKind::TtlExpire,
            EventKind::ChurnJoin,
            EventKind::ChurnLeave,
            EventKind::QueryStart,
            EventKind::QueryHop,
            EventKind::QueryComplete,
            EventKind::DispatchTimeout,
            EventKind::Retry,
            EventKind::Failover,
            EventKind::Mark,
        ] {
            assert_eq!(EventKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(EventKind::parse("not-a-kind"), None);
    }

    #[test]
    fn write_chrome_trace_creates_nested_dirs() {
        let dir = std::env::temp_dir()
            .join(format!("roads-event-test-{}", std::process::id()))
            .join("nested");
        let events = vec![ev(0, 1, 1, 0)];
        let path = write_chrome_trace("fig_unit", &dir, &events)
            .unwrap_or_else(|e| panic!("writing trace under {}: {e}", dir.display()));
        let body = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("reading back {}: {e}", path.display()));
        assert!(body.contains("traceEvents"));
        std::fs::remove_dir_all(dir.parent().unwrap())
            .unwrap_or_else(|e| panic!("cleaning {}: {e}", dir.display()));
    }
}
