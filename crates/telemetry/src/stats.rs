//! Exact sample-based summary statistics.
//!
//! [`LatencyStats`] is the workspace's common "latency summary" currency.
//! It originated in `roads-core::metrics` and moved here so every layer
//! (simulator, runtime, bench harness, JSON export) can share it;
//! `roads-core` re-exports it for backwards compatibility.

use crate::json::Json;

/// Summary statistics over a set of latency (or any scalar) samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 90th percentile (the paper's Fig. 11 reports avg and p90).
    pub p90: f64,
    /// 99th percentile (tail behaviour; not in the paper, tracked here).
    pub p99: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
}

impl LatencyStats {
    /// Compute from samples; `None` when empty. Percentiles use the
    /// nearest-rank method on the sorted samples.
    pub fn from_samples(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let count = sorted.len();
        let mean = sorted.iter().sum::<f64>() / count as f64;
        let pct = |q: f64| {
            let idx = ((count as f64) * q).ceil() as usize;
            sorted[idx.clamp(1, count) - 1]
        };
        Some(LatencyStats {
            count,
            mean,
            p50: pct(0.50),
            p90: pct(0.90),
            p99: pct(0.99),
            min: sorted[0],
            max: sorted[count - 1],
        })
    }

    /// JSON object with every field, for the figure exporter.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("count", Json::num(self.count as f64)),
            ("mean", Json::num(self.mean)),
            ("p50", Json::num(self.p50)),
            ("p90", Json::num(self.p90)),
            ("p99", Json::num(self.p99)),
            ("min", Json::num(self.min)),
            ("max", Json::num(self.max)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_none() {
        assert!(LatencyStats::from_samples(&[]).is_none());
    }

    #[test]
    fn single_sample() {
        let s = LatencyStats::from_samples(&[42.0]).unwrap();
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.p50, 42.0);
        assert_eq!(s.p90, 42.0);
        assert_eq!(s.p99, 42.0);
        assert_eq!(s.min, 42.0);
        assert_eq!(s.max, 42.0);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = LatencyStats::from_samples(&samples).unwrap();
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p90, 90.0);
        assert_eq!(s.p99, 99.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-12);
    }

    #[test]
    fn p99_exceeds_p90_on_skewed_tail() {
        let mut samples = vec![1.0; 989];
        samples.extend(std::iter::repeat_n(100.0, 11));
        let s = LatencyStats::from_samples(&samples).unwrap();
        assert_eq!(s.p90, 1.0);
        assert_eq!(s.p99, 100.0);
    }
}
