//! Periodic timeline sampling of gauges over (simulated) time.
//!
//! A [`Timeline`] snapshots a set of named gauges — per-server queue
//! depth, load share, live summary count, overlay replica count — at a
//! configurable interval and stores each as a `(time, value)` series.
//! The driver decides the clock: the data-plane simulation samples at
//! simulated-time boundaries, the threaded runtime could sample wall
//! time. [`Timeline::attach`] copies every series into a
//! [`FigureExport`] under `timeline.<gauge>` names so sampled runs plot
//! alongside the figure's primary series.

use crate::export::FigureExport;

/// One sampled gauge series.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineSeries {
    /// Gauge name (exported as `timeline.<name>`).
    pub name: String,
    /// `(time in ms, value)` samples in time order.
    pub points: Vec<(f64, f64)>,
}

/// A fixed-interval gauge sampler. See the module docs.
#[derive(Debug, Clone)]
pub struct Timeline {
    interval_ms: f64,
    next_due_ms: f64,
    capacity: usize,
    series: Vec<TimelineSeries>,
}

impl Timeline {
    /// A timeline sampling every `interval_ms` (> 0) milliseconds,
    /// first sample due at time 0. Unbounded; see
    /// [`Timeline::with_capacity`] for a ring that drops old samples.
    pub fn new(interval_ms: f64) -> Self {
        Self::with_capacity(interval_ms, 0)
    }

    /// Like [`Timeline::new`], but each series keeps at most `capacity`
    /// points: once full, recording drops the series' oldest point, so a
    /// long-running sampler holds a bounded sliding window instead of
    /// growing without limit. `capacity == 0` means unbounded.
    pub fn with_capacity(interval_ms: f64, capacity: usize) -> Self {
        assert!(
            interval_ms > 0.0 && interval_ms.is_finite(),
            "timeline interval must be positive, got {interval_ms}"
        );
        Timeline {
            interval_ms,
            next_due_ms: 0.0,
            capacity,
            series: Vec::new(),
        }
    }

    /// Per-series point capacity (0 = unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The sampling interval in milliseconds.
    pub fn interval_ms(&self) -> f64 {
        self.interval_ms
    }

    /// Whether a sample is due at `now_ms`.
    pub fn due(&self, now_ms: f64) -> bool {
        now_ms >= self.next_due_ms
    }

    /// Record one gauge value at `now_ms`, creating the series on first
    /// use. Does not consult the schedule — use [`Timeline::sample`] for
    /// interval-gated sampling.
    pub fn record(&mut self, now_ms: f64, name: &str, value: f64) {
        let cap = self.capacity;
        match self.series.iter_mut().find(|s| s.name == name) {
            Some(s) => {
                s.points.push((now_ms, value));
                if cap > 0 && s.points.len() > cap {
                    s.points.remove(0);
                }
            }
            None => self.series.push(TimelineSeries {
                name: name.to_string(),
                points: vec![(now_ms, value)],
            }),
        }
    }

    /// If a sample is due at `now_ms`, record every `(name, value)` gauge
    /// and advance the schedule past `now_ms`; returns whether it sampled.
    pub fn sample<'a>(
        &mut self,
        now_ms: f64,
        gauges: impl IntoIterator<Item = (&'a str, f64)>,
    ) -> bool {
        if !self.due(now_ms) {
            return false;
        }
        for (name, value) in gauges {
            self.record(now_ms, name, value);
        }
        while self.next_due_ms <= now_ms {
            self.next_due_ms += self.interval_ms;
        }
        true
    }

    /// All sampled series.
    pub fn series(&self) -> &[TimelineSeries] {
        &self.series
    }

    /// Total samples across all series.
    pub fn sample_count(&self) -> usize {
        self.series.iter().map(|s| s.points.len()).sum()
    }

    /// Copy every series into `fig` as `timeline.<name>`.
    pub fn attach(&self, fig: &mut FigureExport) {
        for s in &self.series {
            fig.push_series(format!("timeline.{}", s.name), &s.points);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_respect_interval() {
        let mut t = Timeline::new(10.0);
        assert!(t.sample(0.0, [("q", 1.0)]));
        assert!(!t.sample(5.0, [("q", 2.0)]));
        assert!(t.sample(10.0, [("q", 3.0)]));
        assert!(t.sample(35.0, [("q", 4.0)]));
        let s = &t.series()[0];
        assert_eq!(s.points, vec![(0.0, 1.0), (10.0, 3.0), (35.0, 4.0)]);
        // After sampling at 35, the next slot is the first multiple > 35.
        assert!(!t.due(39.9));
        assert!(t.due(40.0));
    }

    #[test]
    fn attach_prefixes_series_names() {
        let mut t = Timeline::new(1.0);
        t.sample(0.0, [("live_summaries", 8.0), ("replicas", 3.0)]);
        let mut fig = FigureExport::new("fig_t", "t");
        t.attach(&mut fig);
        let names: Vec<&str> = fig.series.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["timeline.live_summaries", "timeline.replicas"]);
        assert_eq!(t.sample_count(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_panics() {
        Timeline::new(0.0);
    }

    #[test]
    fn bounded_ring_drops_oldest() {
        let mut t = Timeline::with_capacity(1.0, 3);
        assert_eq!(t.capacity(), 3);
        for i in 0..6 {
            t.sample(i as f64, [("q", i as f64)]);
        }
        let s = &t.series()[0];
        assert_eq!(s.points, vec![(3.0, 3.0), (4.0, 4.0), (5.0, 5.0)]);
        // Unbounded timelines keep everything.
        assert_eq!(Timeline::new(1.0).capacity(), 0);
    }
}
