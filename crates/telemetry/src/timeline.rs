//! Periodic timeline sampling of gauges over (simulated) time.
//!
//! A [`Timeline`] snapshots a set of named gauges — per-server queue
//! depth, load share, live summary count, overlay replica count — at a
//! configurable interval and stores each as a `(time, value)` series.
//! The driver decides the clock: the data-plane simulation samples at
//! simulated-time boundaries, the threaded runtime could sample wall
//! time. [`Timeline::attach`] copies every series into a
//! [`FigureExport`] under `timeline.<gauge>` names so sampled runs plot
//! alongside the figure's primary series.
//!
//! Bounded series are stored as true rings (`VecDeque`): once a series
//! is full, recording evicts its oldest point in O(1) instead of
//! shifting the whole buffer, so long-running samplers pay constant
//! time per tick regardless of capacity.

use crate::export::FigureExport;
use std::collections::VecDeque;

/// One sampled gauge series, materialized in time order.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineSeries {
    /// Gauge name (exported as `timeline.<name>`).
    pub name: String,
    /// `(time in ms, value)` samples in time order.
    pub points: Vec<(f64, f64)>,
}

/// Internal ring storage for one series.
#[derive(Debug, Clone)]
struct SeriesRing {
    name: String,
    ring: VecDeque<(f64, f64)>,
}

/// A fixed-interval gauge sampler. See the module docs.
#[derive(Debug, Clone)]
pub struct Timeline {
    interval_ms: f64,
    next_due_ms: f64,
    capacity: usize,
    series: Vec<SeriesRing>,
}

impl Timeline {
    /// A timeline sampling every `interval_ms` (> 0) milliseconds,
    /// first sample due at time 0. Unbounded; see
    /// [`Timeline::with_capacity`] for a ring that drops old samples.
    pub fn new(interval_ms: f64) -> Self {
        Self::with_capacity(interval_ms, 0)
    }

    /// Like [`Timeline::new`], but each series keeps at most `capacity`
    /// points: once full, recording drops the series' oldest point, so a
    /// long-running sampler holds a bounded sliding window instead of
    /// growing without limit. `capacity == 0` means unbounded.
    pub fn with_capacity(interval_ms: f64, capacity: usize) -> Self {
        assert!(
            interval_ms > 0.0 && interval_ms.is_finite(),
            "timeline interval must be positive, got {interval_ms}"
        );
        Timeline {
            interval_ms,
            next_due_ms: 0.0,
            capacity,
            series: Vec::new(),
        }
    }

    /// Per-series point capacity (0 = unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The sampling interval in milliseconds.
    pub fn interval_ms(&self) -> f64 {
        self.interval_ms
    }

    /// Whether a sample is due at `now_ms`.
    pub fn due(&self, now_ms: f64) -> bool {
        now_ms >= self.next_due_ms
    }

    /// Record one gauge value at `now_ms`, creating the series on first
    /// use. O(1) even when a bounded series is full (ring eviction).
    /// Does not consult the schedule — use [`Timeline::sample`] for
    /// interval-gated sampling.
    pub fn record(&mut self, now_ms: f64, name: &str, value: f64) {
        let cap = self.capacity;
        match self.series.iter_mut().find(|s| s.name == name) {
            Some(s) => {
                if cap > 0 && s.ring.len() == cap {
                    s.ring.pop_front();
                }
                s.ring.push_back((now_ms, value));
            }
            None => {
                let mut ring = VecDeque::new();
                ring.push_back((now_ms, value));
                self.series.push(SeriesRing {
                    name: name.to_string(),
                    ring,
                });
            }
        }
    }

    /// If a sample is due at `now_ms`, record every `(name, value)` gauge
    /// and advance the schedule past `now_ms`; returns whether it sampled.
    pub fn sample<'a>(
        &mut self,
        now_ms: f64,
        gauges: impl IntoIterator<Item = (&'a str, f64)>,
    ) -> bool {
        if !self.due(now_ms) {
            return false;
        }
        for (name, value) in gauges {
            self.record(now_ms, name, value);
        }
        while self.next_due_ms <= now_ms {
            self.next_due_ms += self.interval_ms;
        }
        true
    }

    /// All sampled series, materialized in recording order with each
    /// series' points in time order (identical to the pre-ring layout).
    pub fn series(&self) -> Vec<TimelineSeries> {
        self.series
            .iter()
            .map(|s| TimelineSeries {
                name: s.name.clone(),
                points: s.ring.iter().copied().collect(),
            })
            .collect()
    }

    /// The points of one series in time order, if it exists.
    pub fn points(&self, name: &str) -> Option<Vec<(f64, f64)>> {
        self.series
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.ring.iter().copied().collect())
    }

    /// Total samples across all series.
    pub fn sample_count(&self) -> usize {
        self.series.iter().map(|s| s.ring.len()).sum()
    }

    /// Copy every series into `fig` as `timeline.<name>`.
    pub fn attach(&self, fig: &mut FigureExport) {
        for s in &self.series {
            let points: Vec<(f64, f64)> = s.ring.iter().copied().collect();
            fig.push_series(format!("timeline.{}", s.name), &points);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_respect_interval() {
        let mut t = Timeline::new(10.0);
        assert!(t.sample(0.0, [("q", 1.0)]));
        assert!(!t.sample(5.0, [("q", 2.0)]));
        assert!(t.sample(10.0, [("q", 3.0)]));
        assert!(t.sample(35.0, [("q", 4.0)]));
        let series = t.series();
        let s = &series[0];
        assert_eq!(s.points, vec![(0.0, 1.0), (10.0, 3.0), (35.0, 4.0)]);
        assert_eq!(t.points("q").unwrap(), s.points);
        // After sampling at 35, the next slot is the first multiple > 35.
        assert!(!t.due(39.9));
        assert!(t.due(40.0));
    }

    #[test]
    fn attach_prefixes_series_names() {
        let mut t = Timeline::new(1.0);
        t.sample(0.0, [("live_summaries", 8.0), ("replicas", 3.0)]);
        let mut fig = FigureExport::new("fig_t", "t");
        t.attach(&mut fig);
        let names: Vec<&str> = fig.series.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["timeline.live_summaries", "timeline.replicas"]);
        assert_eq!(t.sample_count(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_panics() {
        Timeline::new(0.0);
    }

    #[test]
    fn bounded_ring_drops_oldest() {
        let mut t = Timeline::with_capacity(1.0, 3);
        assert_eq!(t.capacity(), 3);
        for i in 0..6 {
            t.sample(i as f64, [("q", i as f64)]);
        }
        let series = t.series();
        let s = &series[0];
        assert_eq!(s.points, vec![(3.0, 3.0), (4.0, 4.0), (5.0, 5.0)]);
        // Unbounded timelines keep everything.
        assert_eq!(Timeline::new(1.0).capacity(), 0);
    }

    /// The ring must be observationally identical to the old
    /// `Vec::remove(0)` implementation: same series order, same point
    /// order, same eviction behavior, across interleaved multi-series
    /// recording with the ring both under and over capacity.
    #[test]
    fn ring_matches_shift_model() {
        // Naive reference model — exactly the pre-ring implementation.
        #[derive(Default)]
        struct Model {
            series: Vec<TimelineSeries>,
        }
        impl Model {
            fn record(&mut self, cap: usize, now_ms: f64, name: &str, value: f64) {
                match self.series.iter_mut().find(|s| s.name == name) {
                    Some(s) => {
                        s.points.push((now_ms, value));
                        if cap > 0 && s.points.len() > cap {
                            s.points.remove(0);
                        }
                    }
                    None => self.series.push(TimelineSeries {
                        name: name.to_string(),
                        points: vec![(now_ms, value)],
                    }),
                }
            }
        }

        for cap in [0usize, 1, 3, 7] {
            let mut t = Timeline::with_capacity(1.0, cap);
            let mut model = Model::default();
            // Interleaved recording across three series with different
            // creation times and rates.
            for i in 0..40 {
                let now = i as f64;
                t.record(now, "a", now * 2.0);
                model.record(cap, now, "a", now * 2.0);
                if i % 2 == 0 {
                    t.record(now, "b", -now);
                    model.record(cap, now, "b", -now);
                }
                if i >= 10 {
                    t.record(now, "c", now.sin());
                    model.record(cap, now, "c", now.sin());
                }
            }
            assert_eq!(t.series(), model.series, "capacity {cap}");
        }
    }
}
