//! A minimal JSON value type with compact and pretty writers and a
//! recursive-descent parser.
//!
//! Hand-rolled on purpose: the workspace's vendored `serde` is an inert
//! API-compatibility shim, so figure export builds its documents
//! explicitly and `roads-inspect` reads them back with [`Json::parse`].
//! Output is strict JSON: strings are escaped, non-finite numbers
//! serialize as `null`.

use std::fmt::{self, Write as _};

/// A JSON document fragment.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number; non-finite values render as `null`.
    Num(f64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A number.
    pub fn num(v: f64) -> Json {
        Json::Num(v)
    }

    /// A string.
    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// An array.
    pub fn arr(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }

    /// An object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// An array of numbers.
    pub fn nums(values: &[f64]) -> Json {
        Json::Arr(values.iter().map(|&v| Json::Num(v)).collect())
    }

    /// Parse a JSON document. Errors carry a byte offset and a short
    /// description; trailing non-whitespace after the value is an error.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos < p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Object field lookup (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str_val(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element slice, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-print with two-space indentation and a trailing newline.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k).expect("writing to String");
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => {
                write!(out, "{other}").expect("writing to String");
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut impl fmt::Write, s: &str) -> fmt::Result {
    out.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => out.write_char(c)?,
        }
    }
    out.write_char('"')
}

fn write_num(f: &mut fmt::Formatter<'_>, v: f64) -> fmt::Result {
    if !v.is_finite() {
        return f.write_str("null");
    }
    // Integral values in the exactly-representable range print without a
    // fraction; everything else uses Rust's shortest-roundtrip formatting.
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        write!(f, "{}", v as i64)
    } else {
        write!(f, "{v}")
    }
}

impl fmt::Display for Json {
    /// Compact (single-line) serialization.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(v) => write_num(f, *v),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Byte-level recursive-descent JSON parser.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected '{}' at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Combine a surrogate pair when one follows;
                            // otherwise fall back to the replacement char.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined).unwrap_or('\u{fffd}')
                                } else {
                                    '\u{fffd}'
                                }
                            } else {
                                char::from_u32(cp).unwrap_or('\u{fffd}')
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so the byte
                    // stream is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8")?;
                    let c = s.chars().next().ok_or("unexpected end of input")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let chunk = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| format!("truncated \\u escape at byte {}", self.pos))?;
        let s = std::str::from_utf8(chunk).map_err(|_| "invalid utf-8 in \\u escape")?;
        let v = u32::from_str_radix(s, 16)
            .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "invalid utf-8")?;
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_serialization() {
        let doc = Json::obj(vec![
            ("name", Json::str("fig3")),
            ("n", Json::num(320.0)),
            ("ratio", Json::num(0.5)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("xs", Json::nums(&[1.0, 2.5])),
        ]);
        assert_eq!(
            doc.to_string(),
            r#"{"name":"fig3","n":320,"ratio":0.5,"ok":true,"none":null,"xs":[1,2.5]}"#
        );
    }

    #[test]
    fn escaping() {
        let doc = Json::str("a\"b\\c\nd\te\u{1}");
        assert_eq!(doc.to_string(), r#""a\"b\\c\nd\te\u0001""#);
    }

    #[test]
    fn non_finite_numbers_are_null() {
        assert_eq!(Json::num(f64::NAN).to_string(), "null");
        assert_eq!(Json::num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn pretty_round_trips_structure() {
        let doc = Json::obj(vec![
            ("a", Json::arr(vec![Json::num(1.0), Json::str("x")])),
            ("b", Json::obj(vec![("c", Json::Null)])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        let pretty = doc.to_string_pretty();
        assert!(pretty.contains("\"a\": [\n"));
        assert!(pretty.contains("\"c\": null"));
        assert!(pretty.contains("\"empty_arr\": []"));
        assert!(pretty.ends_with("}\n"));
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let doc = Json::obj(vec![
            ("name", Json::str("fig3")),
            ("n", Json::num(320.0)),
            ("ratio", Json::num(-0.5)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("xs", Json::nums(&[1.0, 2.5e3])),
            ("nested", Json::obj(vec![("s", Json::str("a\"b\\c\nd"))])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        assert_eq!(Json::parse(&doc.to_string()), Ok(doc.clone()));
        assert_eq!(Json::parse(&doc.to_string_pretty()), Ok(doc));
    }

    #[test]
    fn parse_unicode_escapes() {
        assert_eq!(Json::parse(r#""A\u00e9""#), Ok(Json::str("A\u{e9}")));
        // Surrogate pair for U+1F600, plus raw UTF-8 pass-through.
        assert_eq!(Json::parse(r#""\ud83d\ude00""#), Ok(Json::str("\u{1f600}")));
        assert_eq!(Json::parse("\"\u{e9}\""), Ok(Json::str("\u{e9}")));
        assert!(Json::parse(r#""\u00""#).is_err());
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} extra").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn accessors() {
        let doc = Json::parse(r#"{"a":{"b":[1,"x"]}}"#).unwrap();
        let arr = doc.get("a").and_then(|a| a.get("b")).unwrap();
        assert_eq!(arr.as_arr().unwrap()[0].as_f64(), Some(1.0));
        assert_eq!(arr.as_arr().unwrap()[1].as_str_val(), Some("x"));
        assert!(doc.get("missing").is_none());
        assert!(doc.as_f64().is_none());
    }

    #[test]
    fn large_integers_stay_integral() {
        assert_eq!(Json::num(1e15).to_string(), "1000000000000000");
        // Beyond the i64-safe guard, float formatting takes over (and must
        // not panic on values that would overflow an i64 cast).
        assert_eq!(Json::num(1e19).to_string(), format!("{}", 1e19f64));
    }
}
