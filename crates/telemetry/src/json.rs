//! A minimal JSON value type with compact and pretty writers.
//!
//! Hand-rolled on purpose: the workspace's vendored `serde` is an inert
//! API-compatibility shim, so figure export builds its documents
//! explicitly. Output is strict JSON: strings are escaped, non-finite
//! numbers serialize as `null`.

use std::fmt::{self, Write as _};

/// A JSON document fragment.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number; non-finite values render as `null`.
    Num(f64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A number.
    pub fn num(v: f64) -> Json {
        Json::Num(v)
    }

    /// A string.
    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// An array.
    pub fn arr(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }

    /// An object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// An array of numbers.
    pub fn nums(values: &[f64]) -> Json {
        Json::Arr(values.iter().map(|&v| Json::Num(v)).collect())
    }

    /// Pretty-print with two-space indentation and a trailing newline.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k).expect("writing to String");
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => {
                write!(out, "{other}").expect("writing to String");
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut impl fmt::Write, s: &str) -> fmt::Result {
    out.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => out.write_char(c)?,
        }
    }
    out.write_char('"')
}

fn write_num(f: &mut fmt::Formatter<'_>, v: f64) -> fmt::Result {
    if !v.is_finite() {
        return f.write_str("null");
    }
    // Integral values in the exactly-representable range print without a
    // fraction; everything else uses Rust's shortest-roundtrip formatting.
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        write!(f, "{}", v as i64)
    } else {
        write!(f, "{v}")
    }
}

impl fmt::Display for Json {
    /// Compact (single-line) serialization.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(v) => write_num(f, *v),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_serialization() {
        let doc = Json::obj(vec![
            ("name", Json::str("fig3")),
            ("n", Json::num(320.0)),
            ("ratio", Json::num(0.5)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("xs", Json::nums(&[1.0, 2.5])),
        ]);
        assert_eq!(
            doc.to_string(),
            r#"{"name":"fig3","n":320,"ratio":0.5,"ok":true,"none":null,"xs":[1,2.5]}"#
        );
    }

    #[test]
    fn escaping() {
        let doc = Json::str("a\"b\\c\nd\te\u{1}");
        assert_eq!(doc.to_string(), r#""a\"b\\c\nd\te\u0001""#);
    }

    #[test]
    fn non_finite_numbers_are_null() {
        assert_eq!(Json::num(f64::NAN).to_string(), "null");
        assert_eq!(Json::num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn pretty_round_trips_structure() {
        let doc = Json::obj(vec![
            ("a", Json::arr(vec![Json::num(1.0), Json::str("x")])),
            ("b", Json::obj(vec![("c", Json::Null)])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        let pretty = doc.to_string_pretty();
        assert!(pretty.contains("\"a\": [\n"));
        assert!(pretty.contains("\"c\": null"));
        assert!(pretty.contains("\"empty_arr\": []"));
        assert!(pretty.ends_with("}\n"));
    }

    #[test]
    fn large_integers_stay_integral() {
        assert_eq!(Json::num(1e15).to_string(), "1000000000000000");
        // Beyond the i64-safe guard, float formatting takes over (and must
        // not panic on values that would overflow an i64 cast).
        assert_eq!(Json::num(1e19).to_string(), format!("{}", 1e19f64));
    }
}
