//! Per-query provenance: what each hop decided and where the time went.
//!
//! A [`QueryExplain`] is the structured answer to "why was *this* query
//! slow?". It is assembled along the query path — by the simulation
//! executor and by the live runtime `Driver` — one [`ExplainHop`] per
//! contact attempt, each carrying the *decision* that caused the hop
//! (summary descent, overlay shortcut, retry, failover, …) and a
//! *latency split* (queue wait / network / summary+search compute /
//! retry backoff). Query-level [`Attribution`] folds the hop splits into
//! the five components the tail-attribution figure stacks.
//!
//! The types live in `roads-telemetry` (the dependency-light base crate)
//! so both the roads simulation crate and the runtime crate can fill
//! them, and the tail sampler ([`crate::tail`]) can retain them without
//! a dependency cycle. Summary kinds are therefore a *vocabulary* enum
//! here ([`SummaryKind`]); the summary crate maps its concrete
//! per-attribute representations into it.

use crate::json::Json;

/// Which summary representation drove a hop's match/prune decision.
///
/// On a prune, the kind of the attribute summary that proved absence; on
/// a match, the *fuzziest* participating kind — the likeliest source of a
/// false positive (Bloom > multi-resolution > histogram > exact set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SummaryKind {
    /// Equi-width histogram over an ordered attribute.
    Histogram,
    /// Multi-resolution histogram pyramid.
    MultiRes,
    /// Exact enumerated value set (cannot false-positive).
    ValueSet,
    /// Bloom filter (false positives expected).
    Bloom,
}

impl SummaryKind {
    /// Stable label (used in JSON artifacts and renders).
    pub fn as_str(self) -> &'static str {
        match self {
            SummaryKind::Histogram => "histogram",
            SummaryKind::MultiRes => "multires",
            SummaryKind::ValueSet => "value-set",
            SummaryKind::Bloom => "bloom",
        }
    }

    /// Inverse of [`SummaryKind::as_str`].
    pub fn parse(s: &str) -> Option<SummaryKind> {
        Some(match s {
            "histogram" => SummaryKind::Histogram,
            "multires" => SummaryKind::MultiRes,
            "value-set" => SummaryKind::ValueSet,
            "bloom" => SummaryKind::Bloom,
            _ => return None,
        })
    }

    /// Fuzziness rank: higher means likelier to report a false positive.
    pub fn fuzziness(self) -> u8 {
        match self {
            SummaryKind::ValueSet => 0,
            SummaryKind::Histogram => 1,
            SummaryKind::MultiRes => 2,
            SummaryKind::Bloom => 3,
        }
    }
}

/// Why a hop was dispatched — the routing decision behind the contact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExplainDecision {
    /// The query's entry server (no routing decision preceded it).
    Entry,
    /// A child whose branch summary matched: normal tree descent.
    SummaryDescent,
    /// A replicated remote branch matched at the entry: overlay shortcut.
    OverlayShortcut,
    /// Local-only probe of an ancestor's attached records.
    AncestorProbe,
    /// Re-dispatch of a timed-out attempt to the same server.
    Retry,
    /// Stand-in contacted on behalf of a dead server.
    Failover,
    /// Answered from the entry's TTL'd result cache — no dispatch at all.
    CacheHit,
    /// Dispatched as part of a planner-computed batch (replica-aware
    /// set-cover source selection) instead of hop-by-hop expansion.
    Planned,
}

impl ExplainDecision {
    /// Stable label (used in JSON artifacts and renders).
    pub fn as_str(self) -> &'static str {
        match self {
            ExplainDecision::Entry => "entry",
            ExplainDecision::SummaryDescent => "summary-descent",
            ExplainDecision::OverlayShortcut => "overlay-shortcut",
            ExplainDecision::AncestorProbe => "ancestor-probe",
            ExplainDecision::Retry => "retry",
            ExplainDecision::Failover => "failover",
            ExplainDecision::CacheHit => "cache-hit",
            ExplainDecision::Planned => "planned",
        }
    }

    /// Inverse of [`ExplainDecision::as_str`].
    pub fn parse(s: &str) -> Option<ExplainDecision> {
        Some(match s {
            "entry" => ExplainDecision::Entry,
            "summary-descent" => ExplainDecision::SummaryDescent,
            "overlay-shortcut" => ExplainDecision::OverlayShortcut,
            "ancestor-probe" => ExplainDecision::AncestorProbe,
            "retry" => ExplainDecision::Retry,
            "failover" => ExplainDecision::Failover,
            "cache-hit" => ExplainDecision::CacheHit,
            "planned" => ExplainDecision::Planned,
            _ => return None,
        })
    }
}

/// How a hop ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HopOutcome {
    /// The server replied.
    Replied,
    /// The dispatch timer expired without a reply.
    TimedOut,
    /// The server's mailbox was closed (killed before pickup).
    MailboxDown,
    /// The query deadline closed the hop before it resolved.
    Abandoned,
}

impl HopOutcome {
    /// Stable label (used in JSON artifacts and renders).
    pub fn as_str(self) -> &'static str {
        match self {
            HopOutcome::Replied => "replied",
            HopOutcome::TimedOut => "timed-out",
            HopOutcome::MailboxDown => "mailbox-down",
            HopOutcome::Abandoned => "abandoned",
        }
    }

    /// Inverse of [`HopOutcome::as_str`].
    pub fn parse(s: &str) -> Option<HopOutcome> {
        Some(match s {
            "replied" => HopOutcome::Replied,
            "timed-out" => HopOutcome::TimedOut,
            "mailbox-down" => HopOutcome::MailboxDown,
            "abandoned" => HopOutcome::Abandoned,
            _ => return None,
        })
    }
}

/// Where one hop's wall-clock went, in microseconds.
///
/// The components are *measured independently* (queue and compute on the
/// server, network and backoff known to the dispatcher), so they need not
/// sum exactly to the hop duration — scheduler jitter and channel wait
/// make up the remainder.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySplit {
    /// Mailbox wait: enqueue at the server until the server picked it up.
    pub queue_us: f64,
    /// Emulated network transit (request + reply).
    pub network_us: f64,
    /// Summary evaluation + local search + emulated per-record cost.
    pub compute_us: f64,
    /// Retry backoff delay charged to this (re)dispatch.
    pub backoff_us: f64,
}

impl LatencySplit {
    fn to_json(self) -> Json {
        Json::obj(vec![
            ("queue_us", Json::num(self.queue_us)),
            ("network_us", Json::num(self.network_us)),
            ("compute_us", Json::num(self.compute_us)),
            ("backoff_us", Json::num(self.backoff_us)),
        ])
    }

    fn from_json(doc: &Json) -> LatencySplit {
        let f = |k: &str| doc.get(k).and_then(Json::as_f64).unwrap_or(0.0);
        LatencySplit {
            queue_us: f("queue_us"),
            network_us: f("network_us"),
            compute_us: f("compute_us"),
            backoff_us: f("backoff_us"),
        }
    }
}

/// One contact attempt along a query's path.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainHop {
    /// Server contacted (its raw id).
    pub server: u32,
    /// Routing decision that caused the contact.
    pub decision: ExplainDecision,
    /// Summary kind behind the decision (`None` for retries/failovers and
    /// entry hops, where no summary was consulted to route here).
    pub summary: Option<SummaryKind>,
    /// Hop reached a server whose local search found nothing and that
    /// forwarded nowhere: the summary match that routed here was a false
    /// positive.
    pub false_positive: bool,
    /// How the hop ended.
    pub outcome: HopOutcome,
    /// Dispatch time relative to query start, microseconds.
    pub at_us: f64,
    /// Dispatch-to-resolution duration, microseconds.
    pub dur_us: f64,
    /// Index (into [`QueryExplain::hops`]) of the hop whose reply caused
    /// this dispatch; `None` for the entry hop.
    pub caused_by: Option<usize>,
    /// Records the server's local search returned.
    pub local_matches: u64,
    /// Measured latency components of this hop.
    pub split: LatencySplit,
}

impl ExplainHop {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("server", Json::num(self.server as f64)),
            ("decision", Json::str(self.decision.as_str())),
        ];
        if let Some(kind) = self.summary {
            pairs.push(("summary", Json::str(kind.as_str())));
        }
        pairs.push(("false_positive", Json::Bool(self.false_positive)));
        pairs.push(("outcome", Json::str(self.outcome.as_str())));
        pairs.push(("at_us", Json::num(self.at_us)));
        pairs.push(("dur_us", Json::num(self.dur_us)));
        if let Some(c) = self.caused_by {
            pairs.push(("caused_by", Json::num(c as f64)));
        }
        pairs.push(("local_matches", Json::num(self.local_matches as f64)));
        pairs.push(("split", self.split.to_json()));
        Json::obj(pairs)
    }

    fn from_json(doc: &Json) -> Result<ExplainHop, String> {
        let f = |k: &str| doc.get(k).and_then(Json::as_f64);
        let decision = doc
            .get("decision")
            .and_then(Json::as_str_val)
            .and_then(ExplainDecision::parse)
            .ok_or("hop missing decision")?;
        let outcome = doc
            .get("outcome")
            .and_then(Json::as_str_val)
            .and_then(HopOutcome::parse)
            .ok_or("hop missing outcome")?;
        Ok(ExplainHop {
            server: f("server").ok_or("hop missing server")? as u32,
            decision,
            summary: doc
                .get("summary")
                .and_then(Json::as_str_val)
                .and_then(SummaryKind::parse),
            false_positive: matches!(doc.get("false_positive"), Some(Json::Bool(true))),
            outcome,
            at_us: f("at_us").unwrap_or(0.0),
            dur_us: f("dur_us").unwrap_or(0.0),
            caused_by: f("caused_by").map(|v| v as usize),
            local_matches: f("local_matches").unwrap_or(0.0) as u64,
            split: doc
                .get("split")
                .map(LatencySplit::from_json)
                .unwrap_or_default(),
        })
    }
}

/// Query-level latency attribution, microseconds of *work time* per
/// component (not critical-path time: concurrent hops' components add).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Attribution {
    /// Mailbox queueing across all hops.
    pub queue_us: f64,
    /// Emulated network transit across all hops.
    pub network_us: f64,
    /// Summary evaluation + search compute across all hops.
    pub compute_us: f64,
    /// Time burned on attempts that timed out, plus retry backoff.
    pub retry_us: f64,
    /// All time spent on failover hops (stand-in contacts for dead
    /// servers), including their queue/network/compute.
    pub failover_us: f64,
}

impl Attribution {
    /// Sum of all components.
    pub fn total_us(&self) -> f64 {
        self.queue_us + self.network_us + self.compute_us + self.retry_us + self.failover_us
    }

    /// Serialize for figure data / SLOW_QUERIES artifacts.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("queue_us", Json::num(self.queue_us)),
            ("network_us", Json::num(self.network_us)),
            ("compute_us", Json::num(self.compute_us)),
            ("retry_us", Json::num(self.retry_us)),
            ("failover_us", Json::num(self.failover_us)),
        ])
    }
}

/// The provenance record of one executed query.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryExplain {
    /// The query's id.
    pub query_id: u64,
    /// Flight-recorder trace id of the same execution (0 = no recorder).
    pub trace_id: u64,
    /// Entry server.
    pub entry: u32,
    /// End-to-end response time, microseconds.
    pub response_us: f64,
    /// Every branch-summary-matching server was reached.
    pub complete: bool,
    /// The query deadline fired before all hops resolved.
    pub deadline_hit: bool,
    /// Matching records returned.
    pub records: u64,
    /// Contact attempts in dispatch order.
    pub hops: Vec<ExplainHop>,
}

impl QueryExplain {
    /// Distinct servers that replied (the live runtime's
    /// `servers_contacted` accounting).
    pub fn distinct_responders(&self) -> usize {
        let mut seen: Vec<u32> = self
            .hops
            .iter()
            .filter(|h| h.outcome == HopOutcome::Replied)
            .map(|h| h.server)
            .collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Number of retry dispatches.
    pub fn retry_count(&self) -> u64 {
        self.hops
            .iter()
            .filter(|h| h.decision == ExplainDecision::Retry)
            .count() as u64
    }

    /// Hops whose summary match proved to be a false positive.
    pub fn false_positive_count(&self) -> u64 {
        self.hops.iter().filter(|h| h.false_positive).count() as u64
    }

    /// Fold the per-hop splits into query-level components.
    ///
    /// Work-time attribution: failover hops contribute *wholly* to
    /// `failover_us`; timed-out attempts contribute their full duration
    /// (plus any backoff) to `retry_us`; everything else splits into
    /// queue/network/compute.
    pub fn attribution(&self) -> Attribution {
        let mut a = Attribution::default();
        for h in &self.hops {
            if h.decision == ExplainDecision::Failover {
                a.failover_us += if h.outcome == HopOutcome::Replied {
                    h.split.queue_us + h.split.network_us + h.split.compute_us
                } else {
                    h.dur_us
                } + h.split.backoff_us;
                continue;
            }
            match h.outcome {
                HopOutcome::Replied => {
                    a.queue_us += h.split.queue_us;
                    a.network_us += h.split.network_us;
                    a.compute_us += h.split.compute_us;
                    a.retry_us += h.split.backoff_us;
                }
                // A hop that never produced a useful reply: its whole
                // duration is waste charged to the retry/abandonment
                // component.
                HopOutcome::TimedOut | HopOutcome::MailboxDown | HopOutcome::Abandoned => {
                    a.retry_us += h.dur_us + h.split.backoff_us;
                }
            }
        }
        a
    }

    /// Serialize the full record.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("query_id", Json::num(self.query_id as f64)),
            ("trace_id", Json::num(self.trace_id as f64)),
            ("entry", Json::num(self.entry as f64)),
            ("response_us", Json::num(self.response_us)),
            ("complete", Json::Bool(self.complete)),
            ("deadline_hit", Json::Bool(self.deadline_hit)),
            ("records", Json::num(self.records as f64)),
            ("attribution", self.attribution().to_json()),
            (
                "hops",
                Json::arr(self.hops.iter().map(ExplainHop::to_json).collect()),
            ),
        ])
    }

    /// Inverse of [`QueryExplain::to_json`]. The serialized `attribution`
    /// object is derived data and is recomputed, not read back.
    pub fn from_json(doc: &Json) -> Result<QueryExplain, String> {
        let f = |k: &str| doc.get(k).and_then(Json::as_f64);
        let b = |k: &str| matches!(doc.get(k), Some(Json::Bool(true)));
        let hops = doc
            .get("hops")
            .and_then(Json::as_arr)
            .ok_or("explain missing hops array")?
            .iter()
            .map(ExplainHop::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(QueryExplain {
            query_id: f("query_id").ok_or("explain missing query_id")? as u64,
            trace_id: f("trace_id").unwrap_or(0.0) as u64,
            entry: f("entry").unwrap_or(0.0) as u32,
            response_us: f("response_us").unwrap_or(0.0),
            complete: b("complete"),
            deadline_hit: b("deadline_hit"),
            records: f("records").unwrap_or(0.0) as u64,
            hops,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_explain() -> QueryExplain {
        QueryExplain {
            query_id: 7,
            trace_id: 3,
            entry: 0,
            response_us: 5_000.0,
            complete: true,
            deadline_hit: false,
            records: 2,
            hops: vec![
                ExplainHop {
                    server: 0,
                    decision: ExplainDecision::Entry,
                    summary: None,
                    false_positive: false,
                    outcome: HopOutcome::Replied,
                    at_us: 0.0,
                    dur_us: 900.0,
                    caused_by: None,
                    local_matches: 1,
                    split: LatencySplit {
                        queue_us: 50.0,
                        network_us: 400.0,
                        compute_us: 300.0,
                        backoff_us: 0.0,
                    },
                },
                ExplainHop {
                    server: 4,
                    decision: ExplainDecision::OverlayShortcut,
                    summary: Some(SummaryKind::Bloom),
                    false_positive: true,
                    outcome: HopOutcome::TimedOut,
                    at_us: 900.0,
                    dur_us: 2_000.0,
                    caused_by: Some(0),
                    local_matches: 0,
                    split: LatencySplit::default(),
                },
                ExplainHop {
                    server: 4,
                    decision: ExplainDecision::Retry,
                    summary: None,
                    false_positive: false,
                    outcome: HopOutcome::Replied,
                    at_us: 2_900.0,
                    dur_us: 1_000.0,
                    caused_by: Some(1),
                    local_matches: 1,
                    split: LatencySplit {
                        queue_us: 20.0,
                        network_us: 500.0,
                        compute_us: 200.0,
                        backoff_us: 100.0,
                    },
                },
                ExplainHop {
                    server: 9,
                    decision: ExplainDecision::Failover,
                    summary: None,
                    false_positive: false,
                    outcome: HopOutcome::Replied,
                    at_us: 3_000.0,
                    dur_us: 800.0,
                    caused_by: Some(0),
                    local_matches: 0,
                    split: LatencySplit {
                        queue_us: 10.0,
                        network_us: 600.0,
                        compute_us: 100.0,
                        backoff_us: 0.0,
                    },
                },
            ],
        }
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let e = sample_explain();
        let text = e.to_json().to_string_pretty();
        let back = QueryExplain::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(e, back);
    }

    #[test]
    fn attribution_charges_components_correctly() {
        let e = sample_explain();
        let a = e.attribution();
        // Replied non-failover hops split normally.
        assert_eq!(a.queue_us, 50.0 + 20.0);
        assert_eq!(a.network_us, 400.0 + 500.0);
        assert_eq!(a.compute_us, 300.0 + 200.0);
        // Timed-out duration + retry backoff land in retry_us.
        assert_eq!(a.retry_us, 2_000.0 + 100.0);
        // The failover hop folds wholly into failover_us.
        assert_eq!(a.failover_us, 10.0 + 600.0 + 100.0);
        assert!(
            (a.total_us()
                - (a.queue_us + a.network_us + a.compute_us + a.retry_us + a.failover_us))
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn responder_and_retry_accounting() {
        let e = sample_explain();
        // Server 4 replied once (after a retry), servers 0 and 9 once.
        assert_eq!(e.distinct_responders(), 3);
        assert_eq!(e.retry_count(), 1);
        assert_eq!(e.false_positive_count(), 1);
    }

    #[test]
    fn labels_round_trip() {
        for d in [
            ExplainDecision::Entry,
            ExplainDecision::SummaryDescent,
            ExplainDecision::OverlayShortcut,
            ExplainDecision::AncestorProbe,
            ExplainDecision::Retry,
            ExplainDecision::Failover,
            ExplainDecision::CacheHit,
            ExplainDecision::Planned,
        ] {
            assert_eq!(ExplainDecision::parse(d.as_str()), Some(d));
        }
        for o in [
            HopOutcome::Replied,
            HopOutcome::TimedOut,
            HopOutcome::MailboxDown,
            HopOutcome::Abandoned,
        ] {
            assert_eq!(HopOutcome::parse(o.as_str()), Some(o));
        }
        for k in [
            SummaryKind::Histogram,
            SummaryKind::MultiRes,
            SummaryKind::ValueSet,
            SummaryKind::Bloom,
        ] {
            assert_eq!(SummaryKind::parse(k.as_str()), Some(k));
        }
        assert!(SummaryKind::Bloom.fuzziness() > SummaryKind::MultiRes.fuzziness());
        assert!(SummaryKind::MultiRes.fuzziness() > SummaryKind::Histogram.fuzziness());
        assert!(SummaryKind::Histogram.fuzziness() > SummaryKind::ValueSet.fuzziness());
    }

    #[test]
    fn from_json_rejects_malformed() {
        assert!(QueryExplain::from_json(&Json::parse("{}").unwrap()).is_err());
        let no_outcome = r#"{"query_id":1,"hops":[{"server":1,"decision":"entry"}]}"#;
        assert!(QueryExplain::from_json(&Json::parse(no_outcome).unwrap()).is_err());
    }
}
