//! Named metrics: counters, gauges and log-bucketed histograms.
//!
//! A [`Registry`] hands out `Arc`-shared instruments keyed by name, so any
//! layer of the stack (simulator, protocol engine, runtime threads, bench
//! harness) can record into the same instrument concurrently. A
//! [`MetricsSnapshot`] freezes every instrument for reporting/export.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::json::Json;
use crate::stats::LatencyStats;

/// A monotonic counter. There is deliberately no decrement operation.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that may move in either direction.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrite the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Shift the value by `delta`.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets. With [`SUB_BUCKETS`] buckets per doubling
/// this spans `LOWEST * 2^(BUCKETS/SUB_BUCKETS)` ≈ 19 orders of magnitude
/// above [`LOWEST`] — every duration this workspace measures fits.
const BUCKETS: usize = 512;
/// Buckets per octave (value doubling); bounds relative precision at
/// `2^(1/8) − 1` ≈ 9%.
const SUB_BUCKETS: f64 = 8.0;
/// Lower edge of bucket 1; smaller samples land in bucket 0.
const LOWEST: f64 = 1e-3;

/// Shared mutable histogram state, guarded by one `parking_lot` mutex.
#[derive(Debug, Clone)]
struct HistInner {
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl HistInner {
    fn empty() -> Self {
        HistInner {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

/// A fixed-memory, log-bucketed (HDR-style) latency histogram.
///
/// Values map to geometrically spaced buckets ([`SUB_BUCKETS`] per
/// doubling), so percentile estimates carry a bounded ~9% relative error
/// while memory stays constant regardless of sample count. Histograms with
/// the same layout (always true here — the layout is compile-time fixed)
/// merge by bucket-wise addition, making per-thread recording plus
/// end-of-run aggregation cheap and exact: merging two histograms is
/// indistinguishable from recording the union of their samples.
#[derive(Debug)]
pub struct Histogram {
    inner: Mutex<HistInner>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            inner: Mutex::new(HistInner::empty()),
        }
    }

    /// Bucket index for a value (negative/NaN values clamp to bucket 0).
    fn index(v: f64) -> usize {
        // NaN intentionally lands in bucket 0 with everything <= LOWEST.
        if v.partial_cmp(&LOWEST) != Some(std::cmp::Ordering::Greater) {
            return 0;
        }
        // Clamp in f64 before the cast: `v / LOWEST` can overflow to
        // infinity for huge inputs, and `inf as usize` saturates.
        let i = ((v / LOWEST).log2() * SUB_BUCKETS).floor() + 1.0;
        i.min((BUCKETS - 1) as f64) as usize
    }

    /// Upper edge of a bucket — used as its representative value so
    /// percentile estimates are conservative (never under-report).
    fn bucket_value(i: usize) -> f64 {
        if i == 0 {
            LOWEST
        } else {
            LOWEST * ((i as f64) / SUB_BUCKETS).exp2()
        }
    }

    /// Upper edge of the bucket `v` falls into — the canonical key for
    /// associating out-of-band data (e.g. exemplar trace ids) with a
    /// histogram bucket. Two values land in the same bucket iff their
    /// edges are equal, and the edge matches the representative value
    /// reported by [`Histogram::full_snapshot`] for that bucket.
    pub fn bucket_edge(v: f64) -> f64 {
        Self::bucket_value(Self::index(v))
    }

    /// Record one sample.
    pub fn record(&self, v: f64) {
        let mut g = self.inner.lock();
        g.buckets[Self::index(v)] += 1;
        g.count += 1;
        g.sum += v;
        g.min = g.min.min(v);
        g.max = g.max.max(v);
    }

    /// Fold `other` into `self`; equivalent to having recorded the union
    /// of both sample sets.
    pub fn merge(&self, other: &Histogram) {
        // Clone the source first: taking both locks in callers' arbitrary
        // orders could deadlock.
        let src = other.inner.lock().clone();
        let mut dst = self.inner.lock();
        for (d, s) in dst.buckets.iter_mut().zip(&src.buckets) {
            *d += s;
        }
        dst.count += src.count;
        dst.sum += src.sum;
        dst.min = dst.min.min(src.min);
        dst.max = dst.max.max(src.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.inner.lock().count
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> f64 {
        self.inner.lock().sum
    }

    /// Nearest-rank percentile estimate (`q` in `[0, 1]`); `None` when
    /// empty. Exact min/max are tracked separately and bound the result.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        let g = self.inner.lock();
        Self::percentile_of(&g, q)
    }

    /// [`Histogram::percentile`] over an already-locked view, so a caller
    /// holding the guard can take several percentiles from one consistent
    /// state.
    fn percentile_of(g: &HistInner, q: f64) -> Option<f64> {
        if g.count == 0 {
            return None;
        }
        let rank = ((g.count as f64) * q).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in g.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Some(Self::bucket_value(i).clamp(g.min, g.max));
            }
        }
        Some(g.max)
    }

    /// Snapshot of the raw bucket counts (for tests and merge auditing).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.inner.lock().buckets.clone()
    }

    /// Freeze the full bucketed state under one lock acquisition, so the
    /// result is a consistent point-in-time view even under concurrent
    /// writers (same invariant as [`Histogram::summary`], but keeping the
    /// buckets for exposition formats that need them).
    pub fn full_snapshot(&self) -> HistogramSnapshot {
        let g = self.inner.lock();
        HistogramSnapshot {
            count: g.count,
            sum: g.sum,
            min: if g.count == 0 { 0.0 } else { g.min },
            max: if g.count == 0 { 0.0 } else { g.max },
            buckets: g
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| (Self::bucket_value(i), c))
                .collect(),
        }
    }

    /// Freeze into a [`LatencyStats`]; `None` when empty. Mean/min/max are
    /// exact; percentiles carry the bucket quantization error.
    ///
    /// The whole summary comes from one lock acquisition, so it is a
    /// consistent point-in-time view even while other threads record:
    /// releasing the guard between the count/sum reads and the percentile
    /// scans would let interleaved `record` calls tear the snapshot
    /// (e.g. a p50 computed over more samples than `count` claims, or a
    /// percentile exceeding `max`).
    pub fn summary(&self) -> Option<LatencyStats> {
        let g = self.inner.lock();
        if g.count == 0 {
            return None;
        }
        Some(LatencyStats {
            count: g.count as usize,
            mean: g.sum / g.count as f64,
            p50: Self::percentile_of(&g, 0.50).expect("non-empty"),
            p90: Self::percentile_of(&g, 0.90).expect("non-empty"),
            p99: Self::percentile_of(&g, 0.99).expect("non-empty"),
            min: g.min,
            max: g.max,
        })
    }
}

/// A name-keyed collection of instruments shared across threads.
///
/// `counter`/`gauge`/`histogram` get-or-create, so call sites never need
/// registration order coordination; the returned `Arc` can be cached.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Arc::clone(
            self.counters
                .lock()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Arc::clone(
            self.gauges
                .lock()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        Arc::clone(
            self.histograms
                .lock()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// The counter named `name` if it already exists (no creation) —
    /// lookup for scrapers that must not invent series.
    pub fn find_counter(&self, name: &str) -> Option<Arc<Counter>> {
        self.counters.lock().get(name).map(Arc::clone)
    }

    /// The gauge named `name` if it already exists (no creation).
    pub fn find_gauge(&self, name: &str) -> Option<Arc<Gauge>> {
        self.gauges.lock().get(name).map(Arc::clone)
    }

    /// The histogram named `name` if it already exists (no creation).
    pub fn find_histogram(&self, name: &str) -> Option<Arc<Histogram>> {
        self.histograms.lock().get(name).map(Arc::clone)
    }

    /// Current value of every counter, by name.
    pub fn counter_values(&self) -> BTreeMap<String, u64> {
        self.counters
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Current value of every gauge, by name.
    pub fn gauge_values(&self) -> BTreeMap<String, i64> {
        self.gauges
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Full bucketed snapshot of every histogram, by name. Unlike
    /// [`Registry::snapshot`] this keeps empty histograms (count 0), so a
    /// scrape exposes every declared family even before traffic arrives.
    pub fn histogram_snapshots(&self) -> BTreeMap<String, HistogramSnapshot> {
        self.histograms
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.full_snapshot()))
            .collect()
    }

    /// Freeze every instrument. Empty histograms are omitted (they carry
    /// no information and would serialize as nulls).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .iter()
                .filter_map(|(k, v)| v.summary().map(|s| (k.clone(), s)))
                .collect(),
        }
    }
}

/// A consistent point-in-time copy of one histogram's full bucketed
/// state, captured under a single lock acquisition (no torn reads).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Exact sum of recorded samples.
    pub sum: f64,
    /// Exact minimum (0 when empty).
    pub min: f64,
    /// Exact maximum (0 when empty).
    pub max: f64,
    /// Non-empty buckets as `(upper edge, count)`, edges increasing.
    pub buckets: Vec<(f64, u64)>,
}

/// A point-in-time copy of every instrument in a [`Registry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Summaries of the non-empty histograms by name.
    pub histograms: BTreeMap<String, LatencyStats>,
}

impl MetricsSnapshot {
    /// JSON object: `{"counters": {...}, "gauges": {...},
    /// "histograms": {name: {count, mean, p50, p90, p99, min, max}}}`.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, &v)| (k.clone(), Json::num(v as f64)))
                        .collect(),
                ),
            ),
            (
                "gauges",
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(k, &v)| (k.clone(), Json::num(v as f64)))
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let r = Registry::new();
        r.counter("q").inc();
        r.counter("q").add(4);
        assert_eq!(r.counter("q").get(), 5);
        assert_eq!(r.counter("other").get(), 0);
    }

    #[test]
    fn gauges_move_both_ways() {
        let g = Gauge::new();
        g.set(10);
        g.add(-25);
        assert_eq!(g.get(), -15);
    }

    #[test]
    fn histogram_percentiles_bounded_error() {
        let h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64);
        }
        let s = h.summary().unwrap();
        assert_eq!(s.count, 1000);
        assert!((s.mean - 500.5).abs() < 1e-9);
        // Log-bucketing guarantees <= ~9% relative error, upward-biased.
        assert!(s.p50 >= 500.0 && s.p50 <= 500.0 * 1.1, "p50 {}", s.p50);
        assert!(s.p90 >= 900.0 && s.p90 <= 900.0 * 1.1, "p90 {}", s.p90);
        assert!(s.p99 >= 990.0 && s.p99 <= 990.0 * 1.1, "p99 {}", s.p99);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 1000.0);
    }

    #[test]
    fn histogram_extreme_values_clamp() {
        let h = Histogram::new();
        h.record(0.0);
        h.record(-3.0);
        h.record(f64::MAX);
        assert_eq!(h.count(), 3);
        let s = h.summary().unwrap();
        assert_eq!(s.min, -3.0);
        assert_eq!(s.max, f64::MAX);
    }

    #[test]
    fn merge_equals_union() {
        let (a, b, u) = (Histogram::new(), Histogram::new(), Histogram::new());
        for i in 0..100 {
            let v = (i * 37 % 91) as f64 + 0.5;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            u.record(v);
        }
        a.merge(&b);
        assert_eq!(a.bucket_counts(), u.bucket_counts());
        assert_eq!(a.summary(), u.summary());
    }

    #[test]
    fn concurrent_recording() {
        let h = Arc::new(Histogram::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        h.record((t * 1000 + i) as f64);
                    }
                })
            })
            .collect();
        for j in handles {
            j.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
    }

    #[test]
    fn summary_is_consistent_under_concurrent_writers() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let h = Arc::new(Histogram::new());
        let stop = Arc::new(AtomicBool::new(false));
        // Writers push ever-growing values: a summary torn across lock
        // acquisitions computes its percentiles against a later, larger
        // population and can report p99 above its own max (or ordering
        // inversions between quantiles).
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut v = 1.0 + t as f64;
                    while !stop.load(Ordering::Relaxed) {
                        h.record(v);
                        v *= 1.01;
                    }
                })
            })
            .collect();
        for _ in 0..2_000 {
            if let Some(s) = h.summary() {
                assert!(s.min <= s.mean && s.mean <= s.max, "mean in range: {s:?}");
                assert!(s.min <= s.p50, "p50 under min: {s:?}");
                assert!(s.p50 <= s.p90 && s.p90 <= s.p99, "quantile order: {s:?}");
                assert!(s.p99 <= s.max, "p99 above max: {s:?}");
            }
        }
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
    }

    #[test]
    fn full_snapshot_keeps_buckets() {
        let h = Histogram::new();
        assert_eq!(h.full_snapshot().count, 0);
        assert!(h.full_snapshot().buckets.is_empty());
        h.record(0.5);
        h.record(2.0);
        h.record(2.0);
        let s = h.full_snapshot();
        assert_eq!(s.count, 3);
        assert!((s.sum - 4.5).abs() < 1e-12);
        assert_eq!(s.min, 0.5);
        assert_eq!(s.max, 2.0);
        // Two distinct buckets, edges increasing, counts totaling `count`.
        assert_eq!(s.buckets.len(), 2);
        assert!(s.buckets[0].0 < s.buckets[1].0);
        assert_eq!(s.buckets.iter().map(|&(_, c)| c).sum::<u64>(), 3);
        // Upper edges are conservative: each sample's bucket edge >= sample.
        assert!(s.buckets[1].0 >= 2.0);
    }

    #[test]
    fn registry_find_does_not_create() {
        let r = Registry::new();
        assert!(r.find_counter("nope").is_none());
        assert!(r.find_gauge("nope").is_none());
        r.counter("c").inc();
        r.gauge("g").set(7);
        assert_eq!(r.find_counter("c").unwrap().get(), 1);
        assert_eq!(r.find_gauge("g").unwrap().get(), 7);
        assert_eq!(r.counter_values()["c"], 1);
        assert_eq!(r.gauge_values()["g"], 7);
        r.histogram("h");
        assert_eq!(r.histogram_snapshots()["h"].count, 0);
    }

    #[test]
    fn snapshot_skips_empty_histograms() {
        let r = Registry::new();
        r.histogram("empty");
        r.histogram("full").record(1.0);
        r.counter("c").inc();
        let snap = r.snapshot();
        assert!(!snap.histograms.contains_key("empty"));
        assert!(snap.histograms.contains_key("full"));
        assert_eq!(snap.counters["c"], 1);
        let json = snap.to_json().to_string();
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"p99\""));
    }
}
