//! Query-path tracing and aggregation.
//!
//! A [`QueryTrace`] records every server a discovery query touched and
//! *why* it was touched — the [`HopReason`]. Reasons map onto the ROADS
//! mechanisms: a child summary claiming a match (summary hit), that claim
//! turning out hollow (false-positive redirect, the cost of lossy
//! summaries), a replication-overlay entry shortcut, and the climb towards
//! ancestors that guarantees completeness.
//!
//! [`aggregate_traces`] folds a batch of traces into a [`TraceReport`]:
//! hop-count distribution, false-positive redirect rate, and per-node load
//! concentration (root-load share and Gini coefficient) — the quantities
//! behind the paper's load-balance and bucket-count ablations.

use std::collections::BTreeMap;

use crate::json::Json;

/// Why a query visited a server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HopReason {
    /// The query's entry server (client attachment point).
    Entry,
    /// A child branch summary claimed a possible match.
    SummaryHit,
    /// A summary hit that produced no matches anywhere below it — the
    /// price of lossy (histogram/bloom) summaries.
    FalsePositiveRedirect,
    /// Reached directly from the entry via the replication overlay,
    /// skipping the climb through common ancestors.
    OverlayShortcut,
    /// Climbing towards an ancestor to widen the search scope.
    ClimbToParent,
}

impl HopReason {
    /// Stable kebab-case label used in JSON exports.
    pub fn as_str(&self) -> &'static str {
        match self {
            HopReason::Entry => "entry",
            HopReason::SummaryHit => "summary-hit",
            HopReason::FalsePositiveRedirect => "false-positive-redirect",
            HopReason::OverlayShortcut => "overlay-shortcut",
            HopReason::ClimbToParent => "climb-to-parent",
        }
    }
}

/// One server visit within a query's execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hop {
    /// The visited server.
    pub node: u32,
    /// Why the query went there.
    pub reason: HopReason,
    /// Cumulative simulated time when the query arrived, in ms.
    pub at_ms: f64,
    /// Matching records found in the server's local store.
    pub local_matches: usize,
}

/// The full path one query took through the federation.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTrace {
    /// Workload query id.
    pub query_id: u64,
    /// Entry server.
    pub entry: u32,
    /// Visits in arrival-time order (the entry hop first).
    pub hops: Vec<Hop>,
    /// Simulated time when the last result reached the client, in ms.
    pub completed_ms: f64,
}

impl QueryTrace {
    /// Number of server visits (including the entry).
    pub fn hop_count(&self) -> usize {
        self.hops.len()
    }

    /// Whether `node` appears anywhere on the path.
    pub fn visits(&self, node: u32) -> bool {
        self.hops.iter().any(|h| h.node == node)
    }

    /// Number of hops with the given reason.
    pub fn count_reason(&self, reason: HopReason) -> usize {
        self.hops.iter().filter(|h| h.reason == reason).count()
    }

    /// JSON object with the full hop list.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("query_id", Json::num(self.query_id as f64)),
            ("entry", Json::num(self.entry as f64)),
            ("completed_ms", Json::num(self.completed_ms)),
            (
                "hops",
                Json::Arr(
                    self.hops
                        .iter()
                        .map(|h| {
                            Json::obj(vec![
                                ("node", Json::num(h.node as f64)),
                                ("reason", Json::str(h.reason.as_str())),
                                ("at_ms", Json::num(h.at_ms)),
                                ("local_matches", Json::num(h.local_matches as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Aggregate statistics over a batch of [`QueryTrace`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceReport {
    /// Number of traces aggregated.
    pub queries: usize,
    /// hop-count → number of queries with that many hops.
    pub hop_histogram: BTreeMap<usize, usize>,
    /// Mean hops per query.
    pub mean_hops: f64,
    /// Largest hop count observed.
    pub max_hops: usize,
    /// Total non-entry hops across all traces.
    pub probe_hops: usize,
    /// Hops classified [`HopReason::FalsePositiveRedirect`].
    pub fp_redirects: usize,
    /// `fp_redirects / probe_hops` (0 when no probes).
    pub fp_redirect_rate: f64,
    /// Hops classified [`HopReason::OverlayShortcut`].
    pub overlay_shortcuts: usize,
    /// Hops classified [`HopReason::ClimbToParent`].
    pub climb_hops: usize,
    /// Visits landing on the hierarchy root.
    pub root_visits: usize,
    /// `root_visits / total visits` — how concentrated load is on the root.
    pub root_load_share: f64,
    /// Gini coefficient of per-node visit counts over all `nodes` servers
    /// (0 = perfectly even, → 1 = all load on one server).
    pub gini: f64,
}

impl TraceReport {
    /// JSON object mirroring every field; the hop histogram becomes an
    /// array of `[hops, queries]` pairs.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("queries", Json::num(self.queries as f64)),
            (
                "hop_histogram",
                Json::Arr(
                    self.hop_histogram
                        .iter()
                        .map(|(&h, &n)| Json::Arr(vec![Json::num(h as f64), Json::num(n as f64)]))
                        .collect(),
                ),
            ),
            ("mean_hops", Json::num(self.mean_hops)),
            ("max_hops", Json::num(self.max_hops as f64)),
            ("probe_hops", Json::num(self.probe_hops as f64)),
            ("fp_redirects", Json::num(self.fp_redirects as f64)),
            ("fp_redirect_rate", Json::num(self.fp_redirect_rate)),
            (
                "overlay_shortcuts",
                Json::num(self.overlay_shortcuts as f64),
            ),
            ("climb_hops", Json::num(self.climb_hops as f64)),
            ("root_visits", Json::num(self.root_visits as f64)),
            ("root_load_share", Json::num(self.root_load_share)),
            ("gini", Json::num(self.gini)),
        ])
    }
}

/// Gini coefficient of a load distribution; 0 for empty/uniform input.
pub fn gini(counts: &[u64]) -> f64 {
    let n = counts.len();
    let total: u64 = counts.iter().sum();
    if n == 0 || total == 0 {
        return 0.0;
    }
    let mut sorted: Vec<u64> = counts.to_vec();
    sorted.sort_unstable();
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x as f64)
        .sum();
    let n = n as f64;
    (2.0 * weighted) / (n * total as f64) - (n + 1.0) / n
}

/// Fold traces into a [`TraceReport`]. `root` is the hierarchy root server
/// and `nodes` the federation size (zero-visit servers count towards the
/// Gini denominator — an idle server *is* imbalance).
pub fn aggregate_traces(traces: &[QueryTrace], root: u32, nodes: usize) -> TraceReport {
    let mut hop_histogram = BTreeMap::new();
    let mut visits_per_node = vec![0u64; nodes];
    let mut total_hops = 0usize;
    let mut max_hops = 0usize;
    let mut probe_hops = 0usize;
    let mut fp_redirects = 0usize;
    let mut overlay_shortcuts = 0usize;
    let mut climb_hops = 0usize;
    let mut root_visits = 0usize;

    for t in traces {
        let hops = t.hop_count();
        *hop_histogram.entry(hops).or_insert(0) += 1;
        total_hops += hops;
        max_hops = max_hops.max(hops);
        for h in &t.hops {
            if let Some(slot) = visits_per_node.get_mut(h.node as usize) {
                *slot += 1;
            }
            if h.node == root {
                root_visits += 1;
            }
            match h.reason {
                HopReason::Entry => {}
                HopReason::FalsePositiveRedirect => {
                    probe_hops += 1;
                    fp_redirects += 1;
                }
                HopReason::OverlayShortcut => {
                    probe_hops += 1;
                    overlay_shortcuts += 1;
                }
                HopReason::ClimbToParent => {
                    probe_hops += 1;
                    climb_hops += 1;
                }
                HopReason::SummaryHit => {
                    probe_hops += 1;
                }
            }
        }
    }

    let queries = traces.len();
    TraceReport {
        queries,
        hop_histogram,
        mean_hops: if queries == 0 {
            0.0
        } else {
            total_hops as f64 / queries as f64
        },
        max_hops,
        probe_hops,
        fp_redirects,
        fp_redirect_rate: if probe_hops == 0 {
            0.0
        } else {
            fp_redirects as f64 / probe_hops as f64
        },
        overlay_shortcuts,
        climb_hops,
        root_visits,
        root_load_share: if total_hops == 0 {
            0.0
        } else {
            root_visits as f64 / total_hops as f64
        },
        gini: gini(&visits_per_node),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hop(node: u32, reason: HopReason) -> Hop {
        Hop {
            node,
            reason,
            at_ms: 0.0,
            local_matches: 0,
        }
    }

    fn trace(entry: u32, hops: Vec<Hop>) -> QueryTrace {
        QueryTrace {
            query_id: 0,
            entry,
            hops,
            completed_ms: 1.0,
        }
    }

    #[test]
    fn gini_uniform_is_zero() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[5, 5, 5, 5]), 0.0);
    }

    #[test]
    fn gini_concentrated_approaches_one() {
        let g = gini(&[0, 0, 0, 0, 0, 0, 0, 0, 0, 100]);
        assert!(g > 0.85, "gini {g}");
        assert!(g <= 1.0);
    }

    #[test]
    fn gini_orders_by_inequality() {
        let even = gini(&[3, 3, 3, 3]);
        let mild = gini(&[1, 2, 4, 5]);
        let harsh = gini(&[0, 0, 1, 11]);
        assert!(even < mild && mild < harsh);
    }

    #[test]
    fn aggregate_counts_reasons_and_rates() {
        let traces = vec![
            trace(
                1,
                vec![
                    hop(1, HopReason::Entry),
                    hop(0, HopReason::ClimbToParent),
                    hop(2, HopReason::SummaryHit),
                    hop(3, HopReason::FalsePositiveRedirect),
                ],
            ),
            trace(
                2,
                vec![hop(2, HopReason::Entry), hop(3, HopReason::OverlayShortcut)],
            ),
        ];
        let r = aggregate_traces(&traces, 0, 4);
        assert_eq!(r.queries, 2);
        assert_eq!(r.probe_hops, 4);
        assert_eq!(r.fp_redirects, 1);
        assert!((r.fp_redirect_rate - 0.25).abs() < 1e-12);
        assert_eq!(r.overlay_shortcuts, 1);
        assert_eq!(r.climb_hops, 1);
        assert_eq!(r.root_visits, 1);
        assert!((r.root_load_share - 1.0 / 6.0).abs() < 1e-12);
        assert_eq!(r.hop_histogram[&4], 1);
        assert_eq!(r.hop_histogram[&2], 1);
        assert!((r.mean_hops - 3.0).abs() < 1e-12);
        assert_eq!(r.max_hops, 4);
    }

    #[test]
    fn empty_aggregate_is_all_zero() {
        let r = aggregate_traces(&[], 0, 8);
        assert_eq!(r.queries, 0);
        assert_eq!(r.fp_redirect_rate, 0.0);
        assert_eq!(r.gini, 0.0);
        assert_eq!(r.root_load_share, 0.0);
    }

    #[test]
    fn trace_helpers() {
        let t = trace(
            5,
            vec![hop(5, HopReason::Entry), hop(0, HopReason::ClimbToParent)],
        );
        assert_eq!(t.hop_count(), 2);
        assert!(t.visits(0));
        assert!(!t.visits(9));
        assert_eq!(t.count_reason(HopReason::ClimbToParent), 1);
        let json = t.to_json().to_string();
        assert!(json.contains("climb-to-parent"));
    }
}
