//! Scoped wall-clock timers feeding histograms.
//!
//! Used by the threaded prototype runtime to attribute real elapsed time
//! to phases (local store search, channel wait, result merge). A
//! [`SpanTimer`] records the elapsed microseconds into its histogram when
//! dropped, so instrumented code stays shaped like ordinary RAII Rust.

use std::sync::Arc;
use std::time::Instant;

use crate::registry::Histogram;

/// Records elapsed wall-clock microseconds into a histogram on drop.
#[derive(Debug)]
pub struct SpanTimer {
    hist: Arc<Histogram>,
    start: Instant,
}

impl SpanTimer {
    /// Start timing into `hist`.
    pub fn start(hist: Arc<Histogram>) -> Self {
        SpanTimer {
            hist,
            start: Instant::now(),
        }
    }

    /// Stop early and record; equivalent to dropping.
    pub fn finish(self) {}
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        let us = self.start.elapsed().as_secs_f64() * 1e6;
        self.hist.record(us);
    }
}

/// Time a closure into `hist` (microseconds), passing through its result.
pub fn timed<R>(hist: &Arc<Histogram>, f: impl FnOnce() -> R) -> R {
    let _span = SpanTimer::start(Arc::clone(hist));
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_on_drop() {
        let h = Arc::new(Histogram::new());
        {
            let _t = SpanTimer::start(Arc::clone(&h));
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(h.count(), 1);
        assert!(h.sum() >= 1000.0, "recorded {}us", h.sum());
    }

    #[test]
    fn timed_passes_value_through() {
        let h = Arc::new(Histogram::new());
        let v = timed(&h, || 7 * 6);
        assert_eq!(v, 42);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn finish_records_once() {
        let h = Arc::new(Histogram::new());
        let t = SpanTimer::start(Arc::clone(&h));
        t.finish();
        assert_eq!(h.count(), 1);
    }
}
