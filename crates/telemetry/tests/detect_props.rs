//! Property tests for the detector math behind the watchdog plane.
//!
//! Three contracts are pinned down over randomized inputs:
//!
//! * *quiet on quiet series* — a constant series, or any series whose
//!   per-sample increments stay under `alpha × sigma × noise_floor`
//!   (slow drift, bounded random walks), never trips the EWMA spike
//!   detector: the steady-state EWMA lag of such a series is bounded by
//!   `increment / alpha`, which the generator keeps strictly inside the
//!   firing band;
//! * *loud on steps* — after a constant warmup the variance estimate is
//!   zero, so any step of at least `sigma × noise_floor` must fire, and
//!   must *keep* firing while the shift persists (the baseline is not
//!   learned from anomalous samples);
//! * *jitter insensitivity* — EWMA and threshold verdicts ignore
//!   timestamps entirely, and the burn-rate rule's two-window verdict
//!   survives ±20% sampling jitter for series that are uniformly above
//!   or uniformly below the burn threshold.

use proptest::prelude::*;
use roads_telemetry::{BurnRateRule, Detector, EwmaSpikeDetector, ThresholdRule};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A perfectly constant series never fires, no matter the level.
    #[test]
    fn ewma_is_silent_on_constant_series(
        value in -1e6f64..1e6,
        alpha in 0.05f64..1.0,
        sigma in 1.0f64..6.0,
        floor in 0.1f64..10.0,
        n in 4usize..200,
    ) {
        let mut d = EwmaSpikeDetector::new("spike", alpha, sigma, floor);
        for k in 0..n {
            prop_assert!(
                d.observe(k as f64, value).is_none(),
                "constant series fired at sample {k}"
            );
        }
    }

    /// Any series whose per-sample increments stay under
    /// `alpha × sigma × noise_floor` — linear drift, random walks —
    /// never fires: the EWMA lag `|value − mean|` is bounded by
    /// `max_increment / alpha`, strictly inside the firing band.
    #[test]
    fn ewma_is_silent_on_slow_drift(
        start in -1e4f64..1e4,
        alpha in 0.05f64..1.0,
        sigma in 1.0f64..6.0,
        floor in 0.1f64..10.0,
        steps in prop::collection::vec(-1.0f64..1.0, 1..200),
    ) {
        let mut d = EwmaSpikeDetector::new("spike", alpha, sigma, floor);
        // Keep every increment strictly under the lag bound's budget.
        let scale = 0.85 * alpha * sigma * floor;
        let mut x = start;
        for (k, u) in steps.iter().enumerate() {
            x += u * scale;
            prop_assert!(
                d.observe(k as f64, x).is_none(),
                "drift of {:.3}/sample fired at sample {k} (bound {:.3})",
                u * scale,
                alpha * sigma * floor
            );
        }
    }

    /// After a constant warmup (variance zero, so the noise floor is the
    /// denominator) a step of at least `sigma × noise_floor` fires on
    /// the very sample that steps — and keeps firing while the shifted
    /// level persists, because anomalies are not learned into the
    /// baseline.
    #[test]
    fn ewma_always_fires_on_step(
        base in -1e4f64..1e4,
        (alpha, sigma, floor) in (0.05f64..1.0, 1.0f64..6.0, 0.1f64..10.0),
        warmup in 3usize..40,
        excess in 0.0f64..10.0,
        up in any::<bool>(),
        hold in 1usize..20,
    ) {
        let mut d = EwmaSpikeDetector::new("spike", alpha, sigma, floor);
        for k in 0..warmup {
            prop_assert!(d.observe(k as f64, base).is_none());
        }
        let jump = sigma * floor * (1.0 + excess) * if up { 1.0 } else { -1.0 };
        for k in 0..hold {
            prop_assert!(
                d.observe((warmup + k) as f64, base + jump).is_some(),
                "step of {jump:.3} (≥ sigma × floor = {:.3}) did not fire \
                 at shifted sample {k}",
                sigma * floor
            );
        }
    }

    /// EWMA and threshold verdicts are timestamp-free: replaying the
    /// same values under ±20% sampling jitter reproduces the exact
    /// verdict sequence.
    #[test]
    fn ewma_and_threshold_ignore_sampling_jitter(
        values in prop::collection::vec(-1e4f64..1e4, 1..100),
        jitter in prop::collection::vec(0.8f64..1.2, 1..100),
        interval in 1.0f64..1000.0,
        level in -1e3f64..1e3,
        debounce in 1usize..4,
    ) {
        let mut nominal: Vec<Box<dyn Detector>> = vec![
            Box::new(EwmaSpikeDetector::new("spike", 0.3, 4.0, 5.0)),
            Box::new(ThresholdRule::above("ceiling", level, debounce)),
            Box::new(ThresholdRule::below("floor", level, debounce)),
        ];
        let mut jittered: Vec<Box<dyn Detector>> = vec![
            Box::new(EwmaSpikeDetector::new("spike", 0.3, 4.0, 5.0)),
            Box::new(ThresholdRule::above("ceiling", level, debounce)),
            Box::new(ThresholdRule::below("floor", level, debounce)),
        ];
        let mut t_jit = 0.0;
        for (k, &v) in values.iter().enumerate() {
            let t_nom = k as f64 * interval;
            t_jit += interval * jitter[k % jitter.len()];
            for (a, b) in nominal.iter_mut().zip(jittered.iter_mut()) {
                prop_assert_eq!(
                    a.observe(t_nom, v).is_some(),
                    b.observe(t_jit, v).is_some(),
                    "detector {} diverged under jitter at sample {k}",
                    a.name()
                );
            }
        }
    }

    /// A series that never reaches the burn threshold never fires, for
    /// any monotone (jittered or not) timestamp sequence.
    #[test]
    fn burn_rate_is_silent_below_budget(
        budget in 0.01f64..0.5,
        factor in 1.0f64..4.0,
        interval in 10.0f64..1000.0,
        fractions in prop::collection::vec(0.0f64..0.99, 1..100),
        jitter in prop::collection::vec(0.8f64..1.2, 1..100),
    ) {
        let mut rule = BurnRateRule::new(
            "burn", budget, factor, 2.0 * interval, 8.0 * interval,
        );
        let level = rule.burn_threshold();
        let mut t = 0.0;
        for (k, &f) in fractions.iter().enumerate() {
            t += interval * jitter[k % jitter.len()];
            prop_assert!(
                rule.observe(t, f * level).is_none(),
                "sub-budget burn fired at sample {k}"
            );
        }
    }

    /// A sustained burn — every sample at or above the threshold —
    /// fires at every sample once the warmup count is reached, under
    /// ±20% sampling jitter: with every sample above the level, every
    /// window mean is above it too, so window membership churn cannot
    /// change the verdict.
    #[test]
    fn burn_rate_fires_on_sustained_burn_despite_jitter(
        budget in 0.01f64..0.5,
        factor in 1.0f64..4.0,
        interval in 10.0f64..1000.0,
        overshoots in prop::collection::vec(1.0f64..10.0, 3..100),
        jitter in prop::collection::vec(0.8f64..1.2, 3..100),
    ) {
        let mut rule = BurnRateRule::new(
            "burn", budget, factor, 2.0 * interval, 8.0 * interval,
        );
        let level = rule.burn_threshold();
        let mut t = 0.0;
        for (k, &m) in overshoots.iter().enumerate() {
            t += interval * jitter[k % jitter.len()];
            let fired = rule.observe(t, m * level).is_some();
            // Default warmup: three samples inside the long window.
            prop_assert_eq!(
                fired,
                k >= 2,
                "sustained burn verdict wrong at sample {k}"
            );
        }
    }

    /// The threshold debounce matches a straightforward reference: fire
    /// exactly when the trailing `debounce` samples all breach.
    #[test]
    fn threshold_debounce_matches_reference(
        values in prop::collection::vec(-10.0f64..10.0, 1..200),
        level in -5.0f64..5.0,
        debounce in 1usize..6,
    ) {
        let mut rule = ThresholdRule::above("ceiling", level, debounce);
        let mut run = 0usize;
        for (k, &v) in values.iter().enumerate() {
            run = if v >= level { run + 1 } else { 0 };
            prop_assert_eq!(
                rule.observe(k as f64, v).is_some(),
                run >= debounce,
                "debounce verdict wrong at sample {k}"
            );
        }
    }
}
