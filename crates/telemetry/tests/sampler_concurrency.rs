//! Concurrency tests for the OpenMetrics exposition path: a scrape taken
//! while many writer threads hammer the same histograms must never
//! observe a torn snapshot. Extends the single-lock `Histogram::summary`
//! fix (PR 4) to the full-bucket capture that exposition relies on, and
//! covers the watchdog plane's detection core: a [`DetectorBank`]
//! evaluated over live sampler scrapes while writers mutate the
//! instruments and the exposition renderer runs.

use roads_telemetry::{
    parse_openmetrics, DetectorBank, OpenMetricsSnapshot, Registry, Sampler, ThresholdRule,
};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Every internal invariant a consistent histogram capture satisfies;
/// torn captures (count read under one lock acquisition, buckets under
/// another) violate at least one under sustained concurrent writes.
fn assert_scrape_consistent(snap: &OpenMetricsSnapshot) {
    for (name, h) in &snap.histograms {
        let bucket_total: u64 = h.buckets.iter().map(|&(_, c)| c).sum();
        assert_eq!(
            bucket_total, h.count,
            "{name}: bucket counts must sum to count"
        );
        if h.count > 0 {
            assert!(h.min <= h.max, "{name}: min {} > max {}", h.min, h.max);
            let eps = 1e-9 * h.sum.abs().max(1.0);
            assert!(
                h.sum >= h.count as f64 * h.min - eps,
                "{name}: sum {} below count*min",
                h.sum
            );
            assert!(
                h.sum <= h.count as f64 * h.max + eps,
                "{name}: sum {} above count*max",
                h.sum
            );
        }
        assert!(
            h.buckets.windows(2).all(|w| w[0].0 < w[1].0),
            "{name}: bucket edges must strictly increase"
        );
    }
}

#[test]
fn scrape_under_multi_writer_updates_never_tears() {
    let reg = Arc::new(Registry::new());
    let stop = Arc::new(AtomicBool::new(false));
    const WRITERS: usize = 4;

    // Writers push ever-growing values into two shared histograms and a
    // counter; growth makes torn captures visible (a late bucket paired
    // with an early count breaks the bucket-sum invariant).
    let writers: Vec<_> = (0..WRITERS)
        .map(|t| {
            let reg = Arc::clone(&reg);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let h1 = reg.histogram("torn.lat_ms");
                let h2 = reg.histogram("torn.dispatch_ms");
                let c = reg.counter("torn.writes");
                let mut v = 1.0 + t as f64;
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    h1.record(v);
                    h2.record(v * 0.5);
                    c.inc();
                    v = if v > 1e12 { 1.0 } else { v * 1.01 };
                    n += 1;
                }
                n
            })
        })
        .collect();

    // A background sampler scrapes the same instruments concurrently.
    let sampler = Sampler::start(
        Arc::clone(&reg),
        &["torn.writes", "torn.lat_ms"],
        Duration::from_millis(1),
        1024,
    );

    // The main thread takes full exposition snapshots as fast as it can.
    for i in 0..500 {
        let snap = OpenMetricsSnapshot::from_registry(&reg);
        assert_scrape_consistent(&snap);
        if i % 100 == 0 {
            // The rendered text must also stay parseable mid-flight.
            parse_openmetrics(&snap.render()).expect("render parses while writers run");
        }
    }

    stop.store(true, Ordering::Relaxed);
    let total: u64 = writers.into_iter().map(|w| w.join().unwrap()).sum();
    let tl = sampler.stop();

    // Final state: nothing lost, sampler saw monotone counter values.
    let final_snap = OpenMetricsSnapshot::from_registry(&reg);
    assert_scrape_consistent(&final_snap);
    assert_eq!(final_snap.counters["torn.writes"], total);
    assert_eq!(final_snap.histograms["torn.lat_ms"].count, total);
    let series = tl.series();
    let writes = series
        .iter()
        .find(|s| s.name == "torn.writes")
        .expect("sampler recorded the counter");
    assert!(
        writes.points.windows(2).all(|w| w[0].1 <= w[1].1),
        "sampled counter must be monotone"
    );
}

/// The watchdog plane's core loop under contention: writer threads
/// mutate a gauge, the background sampler feeds its timeline, and the
/// main thread repeatedly evaluates a [`DetectorBank`] over live
/// scrapes while also rendering exposition text. The bank must dedup
/// samples across overlapping scrape clones (firing timestamps stay
/// strictly increasing), stay silent while the gauge is healthy, and
/// fire once the writers push it past the threshold.
#[test]
fn detector_bank_evaluates_over_live_scrapes_without_tearing() {
    let reg = Arc::new(Registry::new());
    let stop = Arc::new(AtomicBool::new(false));
    let level = Arc::new(AtomicI64::new(2));
    const WRITERS: usize = 3;

    // Writers hammer the same gauge with values around a shared level;
    // the main thread raises the level mid-run to trip the detector.
    let writers: Vec<_> = (0..WRITERS)
        .map(|t| {
            let reg = Arc::clone(&reg);
            let stop = Arc::clone(&stop);
            let level = Arc::clone(&level);
            std::thread::spawn(move || {
                let g = reg.gauge("wd.queue_depth");
                let c = reg.counter("wd.writes");
                while !stop.load(Ordering::Relaxed) {
                    g.set(level.load(Ordering::Relaxed) + (t as i64 % 2));
                    c.inc();
                }
            })
        })
        .collect();

    let sampler = Sampler::start(
        Arc::clone(&reg),
        &["wd.queue_depth", "wd.writes"],
        Duration::from_millis(1),
        1024,
    );
    let mut bank = DetectorBank::new();
    bank.bind(
        "wd.queue_depth",
        ThresholdRule::above("deep-queue", 10.0, 1),
    );

    // Healthy phase: evaluate over overlapping live scrapes while the
    // exposition renderer runs; nothing may fire below the threshold.
    let mut firings = Vec::new();
    for i in 0..200 {
        bank.advance_epoch();
        firings.extend(bank.observe_timeline(&sampler.scrape()));
        if i % 50 == 0 {
            parse_openmetrics(&OpenMetricsSnapshot::from_registry(&reg).render())
                .expect("render parses while writers and sampler run");
        }
    }
    assert!(
        firings.is_empty(),
        "healthy gauge tripped the threshold: {firings:?}"
    );

    // Outage phase: push the level past the threshold and keep
    // evaluating until the bank sees it (sampler runs on wall time).
    level.store(50, Ordering::Relaxed);
    for _ in 0..2_000 {
        sampler.tick_now();
        bank.advance_epoch();
        firings.extend(bank.observe_timeline(&sampler.scrape()));
        if !firings.is_empty() {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    stop.store(true, Ordering::Relaxed);
    for w in writers {
        w.join().unwrap();
    }
    drop(sampler);

    assert!(!firings.is_empty(), "raised gauge never tripped the bank");
    for f in &firings {
        assert_eq!(f.detector, "deep-queue");
        assert_eq!(f.series, "wd.queue_depth");
        assert!(f.value >= 10.0, "sub-threshold firing: {f:?}");
        assert!(!f.window.is_empty(), "firing lost its window");
    }
    // Overlapping scrape clones re-deliver old points; the bank's
    // monotone dedup means firing timestamps strictly increase.
    assert!(
        firings.windows(2).all(|w| w[0].at_ms < w[1].at_ms),
        "duplicate or reordered samples reached the detector"
    );
}
