//! Property tests for the metrics registry primitives, the flight
//! recorder's bounded event ring, and the OpenMetrics exposition
//! renderer/parser pair.

use proptest::prelude::*;
use roads_telemetry::{
    labeled, parse_openmetrics, Event, EventKind, Histogram, LatencyStats, OpenMetricsSnapshot,
    Recorder, Registry, SpanId, TraceId,
};

/// A minimal event for ring-buffer tests: `detail` doubles as a sequence
/// number so ordering assertions can follow each event through evictions
/// and merges.
fn ev(at_us: u64, trace: u64, seq: u64) -> Event {
    Event {
        at_us,
        dur_us: 0,
        node: 0,
        trace: TraceId(trace),
        span: SpanId(seq + 1),
        parent: SpanId::NONE,
        kind: EventKind::Mark,
        detail: seq,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A counter only ever moves up, and ends at the sum of its increments.
    #[test]
    fn counter_is_monotone(increments in prop::collection::vec(0u64..1_000_000, 0..64)) {
        let reg = Registry::new();
        let ctr = reg.counter("prop.counter");
        let mut prev = ctr.get();
        let mut total = 0u64;
        for &n in &increments {
            ctr.add(n);
            total += n;
            let now = ctr.get();
            prop_assert!(now >= prev, "counter went backwards: {prev} -> {now}");
            prev = now;
        }
        prop_assert_eq!(ctr.get(), total);
    }

    /// Merging histograms commutes: a+b and b+a agree bucket by bucket.
    #[test]
    fn histogram_merge_commutes(
        xs in prop::collection::vec(0.0f64..1e6, 0..64),
        ys in prop::collection::vec(0.0f64..1e6, 0..64),
    ) {
        let (a1, b1) = (Histogram::new(), Histogram::new());
        let (a2, b2) = (Histogram::new(), Histogram::new());
        for &x in &xs {
            a1.record(x);
            a2.record(x);
        }
        for &y in &ys {
            b1.record(y);
            b2.record(y);
        }
        a1.merge(&b1); // a+b
        b2.merge(&a2); // b+a
        prop_assert_eq!(a1.bucket_counts(), b2.bucket_counts());
        prop_assert_eq!(a1.count(), b2.count());
        prop_assert!((a1.sum() - b2.sum()).abs() <= 1e-9 * a1.sum().abs().max(1.0));
    }

    /// Merging two histograms is indistinguishable from recording the
    /// union of their samples into one histogram.
    #[test]
    fn histogram_merge_is_sample_union(
        xs in prop::collection::vec(1e-9f64..1e9, 0..64),
        ys in prop::collection::vec(1e-9f64..1e9, 0..64),
    ) {
        let left = Histogram::new();
        let right = Histogram::new();
        let union = Histogram::new();
        for &x in &xs {
            left.record(x);
            union.record(x);
        }
        for &y in &ys {
            right.record(y);
            union.record(y);
        }
        left.merge(&right);
        prop_assert_eq!(left.bucket_counts(), union.bucket_counts());
        prop_assert_eq!(left.count(), union.count());
        for q in [0.5, 0.9, 0.99] {
            prop_assert_eq!(left.percentile(q), union.percentile(q));
        }
    }

    /// Histogram percentiles are monotone in the quantile, and the summary
    /// sits inside the recorded range (up to one bucket of quantization).
    #[test]
    fn histogram_percentiles_are_ordered(
        samples in prop::collection::vec(1e-6f64..1e6, 1..128),
    ) {
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let p50 = h.percentile(0.5).expect("non-empty");
        let p90 = h.percentile(0.9).expect("non-empty");
        let p99 = h.percentile(0.99).expect("non-empty");
        prop_assert!(p50 <= p90 && p90 <= p99, "p50={p50} p90={p90} p99={p99}");
        let stats = h.summary().expect("non-empty");
        prop_assert_eq!(stats.count as u64, samples.len() as u64);
        prop_assert!(stats.min <= stats.max);
    }

    /// Exact-sample stats keep min <= p50 <= p90 <= p99 <= max.
    #[test]
    fn latency_stats_ordered(samples in prop::collection::vec(0.0f64..1e9, 1..256)) {
        let s = LatencyStats::from_samples(&samples).expect("non-empty");
        prop_assert!(s.min <= s.p50);
        prop_assert!(s.p50 <= s.p90);
        prop_assert!(s.p90 <= s.p99);
        prop_assert!(s.p99 <= s.max);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
    }

    /// The recorder never retains more than `capacity` events, and the
    /// eviction counter accounts for every overflow exactly.
    #[test]
    fn recorder_memory_is_bounded(capacity in 1usize..64, n in 0usize..256) {
        let rec = Recorder::new(capacity);
        for i in 0..n {
            rec.record(ev(i as u64, 1, i as u64));
        }
        prop_assert!(rec.len() <= rec.capacity());
        prop_assert_eq!(rec.len(), n.min(capacity));
        prop_assert_eq!(rec.evicted(), n.saturating_sub(capacity) as u64);
        prop_assert_eq!(rec.events().len(), rec.len());
    }

    /// A full ring evicts strictly FIFO: after `n` appends the survivors
    /// are exactly the most recent `capacity` events, still in insertion
    /// order.
    #[test]
    fn recorder_evicts_oldest_first(capacity in 1usize..32, n in 0usize..128) {
        let rec = Recorder::new(capacity);
        for i in 0..n {
            rec.record(ev(i as u64, 1, i as u64));
        }
        let got: Vec<u64> = rec.events().iter().map(|e| e.detail).collect();
        let expect: Vec<u64> = (n.saturating_sub(capacity) as u64..n as u64).collect();
        prop_assert_eq!(got, expect);
    }

    /// A randomized registry renders to exposition text that parses back,
    /// and re-rendering the parse reproduces the text byte-for-byte.
    #[test]
    fn openmetrics_parse_round_trips(
        counters in prop::collection::vec(
            (
                "[a-z.]{1,8}",
                prop::collection::vec(("[a-z]{1,3}", "[a-d \"\\\\]{0,5}"), 0..3),
                0u64..1_000_000,
            ),
            0..6,
        ),
        gauges in prop::collection::vec(("[a-z._]{1,8}", -1_000i64..1_000), 0..4),
        hist_samples in prop::collection::vec(0.0f64..1e6, 0..32),
    ) {
        let reg = Registry::new();
        for (base, labels, v) in &counters {
            let refs: Vec<(&str, &str)> =
                labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
            reg.counter(&labeled(base, &refs)).add(*v);
        }
        for (name, v) in &gauges {
            reg.gauge(name).set(*v);
        }
        let h = reg.histogram("h.lat");
        for &s in &hist_samples {
            h.record(s);
        }
        let snap = OpenMetricsSnapshot::from_registry(&reg);
        let text = snap.render();
        // Determinism: identical snapshots render byte-identically.
        prop_assert_eq!(&text, &OpenMetricsSnapshot::from_registry(&reg).render());
        let scrape = parse_openmetrics(&text)
            .map_err(|e| TestCaseError::fail(format!("parse failed: {e}\n{text}")))?;
        prop_assert_eq!(scrape.render(), text, "parse→render must be the identity");
        // The histogram's _count sample recovers the sample count and the
        // +Inf bucket agrees with it.
        let fam = scrape.family("h_lat").expect("histogram family");
        prop_assert_eq!(
            fam.sample_with("_count", &[]).expect("_count").value,
            hist_samples.len() as f64
        );
        prop_assert_eq!(
            fam.sample_with("_bucket", &[("le", "+Inf")]).expect("+Inf").value,
            hist_samples.len() as f64
        );
    }

    /// Label values survive the full labeled → render → parse trip even
    /// with quotes, backslashes and newlines in them.
    #[test]
    fn openmetrics_label_escaping_round_trips(
        raw in "[a-f \"\\\\]{0,10}",
        nl in 0usize..3,
    ) {
        // Splice newlines in (the charclass strategy can't emit them).
        let mut value = raw;
        for _ in 0..nl {
            let at = value.len() / 2;
            value.insert(at, '\n');
        }
        let reg = Registry::new();
        reg.counter(&labeled("esc.test", &[("v", &value)])).inc();
        let text = OpenMetricsSnapshot::from_registry(&reg).render();
        let scrape = parse_openmetrics(&text)
            .map_err(|e| TestCaseError::fail(format!("parse failed: {e}\n{text}")))?;
        let fam = scrape.family("esc_test").expect("family");
        let got = fam.samples[0].label("v").expect("label v");
        prop_assert_eq!(got, value.as_str());
    }

    /// Rendering is insertion-order independent: feeding the same
    /// instruments in a rotated order produces identical text.
    #[test]
    fn openmetrics_order_independent(
        names in prop::collection::vec("[a-z.]{1,8}", 1..8),
        rot in 0usize..8,
    ) {
        let build = |ordered: &[String]| {
            let reg = Registry::new();
            // Value = name length, so duplicates accumulate identically
            // in every insertion order.
            for n in ordered {
                reg.counter(n).add(n.len() as u64);
            }
            OpenMetricsSnapshot::from_registry(&reg).render()
        };
        let mut rotated = names.clone();
        rotated.rotate_left(rot % names.len().max(1));
        prop_assert_eq!(build(&names), build(&rotated));
    }

    /// Merging one node's recorder into another yields a globally
    /// time-ordered ring in which each trace's own events keep their
    /// relative (causal) order.
    #[test]
    fn recorder_merge_preserves_per_trace_order(
        ta in prop::collection::vec(0u64..1_000, 0..64),
        tb in prop::collection::vec(0u64..1_000, 0..64),
    ) {
        let a = Recorder::new(256);
        let b = Recorder::new(256);
        let mut ta = ta;
        let mut tb = tb;
        ta.sort_unstable();
        tb.sort_unstable();
        for (i, &t) in ta.iter().enumerate() {
            a.record(ev(t, 1, i as u64));
        }
        for (i, &t) in tb.iter().enumerate() {
            b.record(ev(t, 2, i as u64));
        }
        a.merge(&b);
        let all = a.events();
        prop_assert_eq!(all.len(), ta.len() + tb.len());
        prop_assert!(all.windows(2).all(|w| w[0].at_us <= w[1].at_us));
        for trace in [1u64, 2] {
            let seqs: Vec<u64> = all
                .iter()
                .filter(|e| e.trace.0 == trace)
                .map(|e| e.detail)
                .collect();
            let expect: Vec<u64> = (0..seqs.len() as u64).collect();
            prop_assert_eq!(seqs, expect);
        }
    }
}
