//! Hop-count latency model for ROADS and SWORD queries.
//!
//! The paper explains Fig. 3 qualitatively: ROADS "can search multiple
//! branches in parallel and the latency is determined by the number of
//! levels in the hierarchy", while SWORD "sequentially traverses nodes in
//! the matching segment, the size of which is proportional to the total
//! number of nodes for a fixed query selectivity". This module turns those
//! statements into formulas the harness can overlay on measured curves,
//! plus a solver for the node count beyond which ROADS always wins.

/// Parameters of the latency model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// Mean one-way network delay between two random servers (ms).
    pub mean_delay_ms: f64,
    /// ROADS hierarchy degree `k`.
    pub degree: usize,
    /// Number of attribute rings `r` in SWORD.
    pub rings: usize,
    /// Per-dimension range length of the query (the paper's `α = 0.25`).
    pub alpha: f64,
}

impl LatencyModel {
    /// The paper's defaults: degree 8, 16 rings, α = 0.25, with the
    /// synthesized delay space's ~45 ms median one-way delay.
    pub fn paper_default() -> Self {
        LatencyModel {
            mean_delay_ms: 45.0,
            degree: 8,
            rings: 16,
            alpha: 0.25,
        }
    }
}

/// Levels of a full `k`-ary hierarchy over `n` servers (the paper's `L+1`).
pub fn hierarchy_levels(n: usize, k: usize) -> usize {
    if n <= 1 {
        return 1;
    }
    let k = k.max(2);
    let mut capacity = 1usize;
    let mut width = 1usize;
    let mut levels = 1usize;
    while capacity < n {
        width = width.saturating_mul(k);
        capacity = capacity.saturating_add(width);
        levels += 1;
    }
    levels
}

/// Predicted ROADS query latency: with server-forwarding, the critical
/// path is one hop out of the entry (to the topmost matching ancestor
/// sibling) plus a descent of up to `levels − 1` hops — every branch in
/// parallel.
pub fn roads_latency_ms(n: usize, m: &LatencyModel) -> f64 {
    let levels = hierarchy_levels(n, m.degree);
    m.mean_delay_ms * levels as f64
}

/// Predicted SWORD query latency: `log₂ n` finger hops into the ring, then
/// a sequential sweep of the matching segment — `α · n / r` servers.
pub fn sword_latency_ms(n: usize, m: &LatencyModel) -> f64 {
    let route = (n.max(2) as f64).log2();
    let sweep = m.alpha * n as f64 / m.rings as f64;
    m.mean_delay_ms * (route + sweep)
}

/// Smallest node count at which ROADS' predicted latency drops below
/// SWORD's and stays below through `limit`. Returns `None` when SWORD
/// stays competitive through the whole range (e.g. α ≈ 0 makes segments
/// trivial).
pub fn sword_crossover_nodes(m: &LatencyModel, limit: usize) -> Option<usize> {
    let mut crossover = None;
    for n in 2..=limit {
        if roads_latency_ms(n, m) < sword_latency_ms(n, m) {
            crossover.get_or_insert(n);
        } else {
            crossover = None; // must stay below through the limit
        }
    }
    crossover
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_match_known_trees() {
        assert_eq!(hierarchy_levels(1, 8), 1);
        assert_eq!(hierarchy_levels(9, 8), 2);
        assert_eq!(hierarchy_levels(73, 8), 3);
        assert_eq!(hierarchy_levels(585, 8), 4);
        assert_eq!(hierarchy_levels(586, 8), 5);
        // §IV example: 156 servers fill a 4-level 5-ary tree.
        assert_eq!(hierarchy_levels(156, 5), 4);
    }

    #[test]
    fn roads_grows_logarithmically() {
        let m = LatencyModel::paper_default();
        let l64 = roads_latency_ms(64, &m);
        let l640 = roads_latency_ms(640, &m);
        // 10x nodes adds at most two levels.
        assert!(l640 / l64 <= 2.0, "{l64} -> {l640}");
    }

    #[test]
    fn sword_grows_linearly() {
        let m = LatencyModel::paper_default();
        let l64 = sword_latency_ms(64, &m);
        let l640 = sword_latency_ms(640, &m);
        assert!(l640 / l64 > 2.5, "{l64} -> {l640}");
        // The sweep component itself is exactly linear: subtract routing.
        let sweep = |n: usize| sword_latency_ms(n, &m) - m.mean_delay_ms * (n as f64).log2();
        assert!((sweep(640) / sweep(64) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn paper_regime_has_early_crossover() {
        // With the paper's parameters ROADS wins before a few hundred
        // nodes — consistent with Fig. 3 showing ROADS below SWORD across
        // the whole 64–640 range.
        let m = LatencyModel::paper_default();
        let x = sword_crossover_nodes(&m, 2_000).expect("crossover exists");
        assert!(x <= 200, "crossover at {x}");
    }

    #[test]
    fn tiny_alpha_defers_crossover() {
        // Near-point queries make SWORD segments trivial; its log routing
        // then rivals the hierarchy descent for much longer.
        let m = LatencyModel {
            alpha: 0.001,
            ..LatencyModel::paper_default()
        };
        let with_alpha = sword_crossover_nodes(&LatencyModel::paper_default(), 5_000);
        let tiny = sword_crossover_nodes(&m, 5_000);
        match (with_alpha, tiny) {
            (Some(a), Some(b)) => assert!(b >= a),
            (Some(_), None) => {} // SWORD never loses in range — fine
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn degree_flattens_roads() {
        let m4 = LatencyModel {
            degree: 4,
            ..LatencyModel::paper_default()
        };
        let m12 = LatencyModel {
            degree: 12,
            ..LatencyModel::paper_default()
        };
        assert!(roads_latency_ms(320, &m12) <= roads_latency_ms(320, &m4));
    }
}
