//! Closed-form analytic model of §IV.
//!
//! Notation (§IV-A): `N` resource owners × `K` records each; `r` numeric
//! attributes per record (attribute value size 1, record size `r`);
//! summaries are histograms of `m` buckets per attribute (constant size
//! `m·r`); records change every `tr` seconds, summaries every `ts` seconds
//! (`ts ≫ tr` would be backwards — the paper means summaries change an
//! order of magnitude *slower*, `tr/ts = 0.1` in the worked example);
//! queries have `q` attributes of range length `α`; `n` servers form a
//! balanced `L+1`-level hierarchy of degree `k`.
//!
//! All results are in the paper's abstract units (attribute values, not
//! bytes), so they can be compared directly against Eq. (1)–(4) and
//! Table I.

/// Model parameters, defaulting to the §IV-B worked example.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelParams {
    /// Resource owners.
    pub n_owners: f64,
    /// Records per owner.
    pub k_records: f64,
    /// Attributes per record.
    pub r_attrs: f64,
    /// Histogram buckets per attribute.
    pub m_buckets: f64,
    /// Servers in the hierarchy.
    pub n_servers: f64,
    /// Hierarchy degree.
    pub k_degree: f64,
    /// Hierarchy levels minus one (root at level 0).
    pub l_levels: f64,
    /// Record refresh period (seconds).
    pub tr_secs: f64,
    /// Summary refresh period (seconds).
    pub ts_secs: f64,
}

impl ModelParams {
    /// The §IV-B worked example: r=25, m=100, k=5, L=4 (156 servers),
    /// tr/ts = 0.1, N=10³ owners, K=10⁴ records.
    pub fn paper_example() -> Self {
        ModelParams {
            n_owners: 1e3,
            k_records: 1e4,
            r_attrs: 25.0,
            m_buckets: 100.0,
            n_servers: 156.0,
            k_degree: 5.0,
            l_levels: 4.0,
            tr_secs: 60.0,
            ts_secs: 600.0,
        }
    }

    fn log_n(&self) -> f64 {
        self.n_servers.max(2.0).ln() / self.k_degree.max(2.0).ln()
    }
}

/// Per-second update overhead of each design (Eq. (1)–(3)), in attribute
/// values per second.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateOverhead {
    /// Eq. (1): `r·m·(N + k·n·log n) / ts`.
    pub roads: f64,
    /// Eq. (2): `r²·K·N·log n / tr`.
    pub sword: f64,
    /// Eq. (3): `r·K·N / tr`.
    pub central: f64,
}

/// Evaluate Eq. (1)–(3).
pub fn update_overhead(p: &ModelParams) -> UpdateOverhead {
    let log_n = p.log_n();
    UpdateOverhead {
        roads: p.r_attrs * p.m_buckets * (p.n_owners + p.k_degree * p.n_servers * log_n)
            / p.ts_secs,
        sword: p.r_attrs * p.r_attrs * p.k_records * p.n_owners * log_n / p.tr_secs,
        central: p.r_attrs * p.k_records * p.n_owners / p.tr_secs,
    }
}

/// Eq. (4): worst-case per-node summary-maintenance overhead,
/// `O(k²·log n) / ts` messages per second. Returns (messages per `ts`
/// period, messages per second).
pub fn maintenance_overhead(p: &ModelParams) -> (f64, f64) {
    let per_period = p.k_degree * p.k_degree * p.log_n();
    (per_period, per_period / p.ts_secs)
}

/// Table I storage overheads, in attribute values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageOverhead {
    /// ROADS worst case (leaf at level `i = L`): `r·m·k·(i + 1)`.
    pub roads: f64,
    /// SWORD per server: `r²·K·N / n`.
    pub sword: f64,
    /// Central repository: `r·K·N`.
    pub central: f64,
}

/// Evaluate the Table I expressions.
pub fn storage_overhead(p: &ModelParams) -> StorageOverhead {
    StorageOverhead {
        roads: p.r_attrs * p.m_buckets * p.k_degree * (p.l_levels + 1.0),
        sword: p.r_attrs * p.r_attrs * p.k_records * p.n_owners / p.n_servers,
        central: p.r_attrs * p.k_records * p.n_owners,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_storage_values() {
        // Table I prints ROADS 2×10⁵, SWORD 6.4×10⁸, Central 10⁹. Our exact
        // expressions give r·m·k·(L+1) = 25·100·5·5 = 62,500 (same order as
        // the table's rounded 2×10⁵) and r·K·N = 2.5×10⁸ (the table rounds
        // to 10⁹, consistent with O() constants). What the paper *uses* the
        // table for — ROADS orders of magnitude below both baselines, and
        // SWORD below Central — must hold exactly.
        let s = storage_overhead(&ModelParams::paper_example());
        assert!((s.roads - 62_500.0).abs() < 1.0);
        assert_eq!(s.central, 25.0 * 1e4 * 1e3);
        assert!(s.sword / s.roads > 500.0, "ROADS ≪ SWORD (≈640× here)");
        assert!(s.central / s.sword > 1.0, "SWORD < Central");
    }

    #[test]
    fn update_overhead_orders_of_magnitude() {
        // §IV-B: "ROADS has about 1-2 orders of magnitudes less overhead
        // than SWORD" under the worked example.
        let u = update_overhead(&ModelParams::paper_example());
        let ratio = u.sword / u.roads;
        assert!(
            (10.0..1e5).contains(&ratio),
            "SWORD/ROADS ratio {ratio} should be ≫ 10"
        );
        // SWORD is r·log n times the central repository.
        let expected = 25.0 * ModelParams::paper_example().log_n();
        let actual = u.sword / u.central;
        assert!((actual - expected).abs() < 1e-6);
    }

    #[test]
    fn maintenance_small_per_second() {
        // §IV-B: for L = 7, k = 5 the largest per-node overhead is ~150
        // summaries per ts — "each node only sends a few summaries per
        // second".
        let p = ModelParams {
            n_servers: 97_656.0, // full 7-level 5-ary tree: (5^7-1)/4
            l_levels: 7.0,
            ..ModelParams::paper_example()
        };
        let (per_period, per_second) = maintenance_overhead(&p);
        assert!(
            (100.0..250.0).contains(&per_period),
            "per-period {per_period} should be ≈150"
        );
        assert!(per_second < 5.0);
    }

    #[test]
    fn roads_update_constant_in_record_count() {
        let base = ModelParams::paper_example();
        let more = ModelParams {
            k_records: base.k_records * 10.0,
            ..base
        };
        let (u1, u2) = (update_overhead(&base), update_overhead(&more));
        assert_eq!(u1.roads, u2.roads, "summaries are record-count independent");
        assert!((u2.sword / u1.sword - 10.0).abs() < 1e-9);
        assert!((u2.central / u1.central - 10.0).abs() < 1e-9);
    }

    #[test]
    fn roads_update_scales_with_buckets() {
        let base = ModelParams::paper_example();
        let fine = ModelParams {
            m_buckets: base.m_buckets * 10.0,
            ..base
        };
        let (u1, u2) = (update_overhead(&base), update_overhead(&fine));
        assert!((u2.roads / u1.roads - 10.0).abs() < 1e-9);
        assert_eq!(u1.sword, u2.sword);
    }
}
