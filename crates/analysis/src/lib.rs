//! Closed-form analytic models of the ROADS paper.
//!
//! * [`model`] — §IV's update/maintenance/storage overhead expressions
//!   (Eq. (1)–(4), Table I).
//! * [`latency`] — a hop-count latency model for ROADS and SWORD queries
//!   predicting the Fig. 3/6/10 curve shapes and their crossover points.

pub mod latency;
pub mod model;

pub use latency::{
    hierarchy_levels, roads_latency_ms, sword_crossover_nodes, sword_latency_ms, LatencyModel,
};
pub use model::{
    maintenance_overhead, storage_overhead, update_overhead, ModelParams, StorageOverhead,
    UpdateOverhead,
};
