//! Property tests: delay-space metric properties and engine determinism.

use proptest::prelude::*;
use roads_netsim::{
    Ctx, DelaySpace, DelaySpaceConfig, NodeId, Protocol, SimTime, Simulator, TimerTag,
    TrafficClass, TrafficStats,
};

/// Strategy item: one `record()` call (class index, byte count).
fn record_stream() -> impl Strategy<Value = Vec<(usize, usize)>> {
    prop::collection::vec((0usize..4, 0usize..100_000), 0..64)
}

/// Replay a stream of `(class, bytes)` records into a fresh stats object.
fn replay(stream: &[(usize, usize)]) -> TrafficStats {
    let mut s = TrafficStats::default();
    for &(class, bytes) in stream {
        s.record(TrafficClass::ALL[class], bytes);
    }
    s
}

/// Class-by-class equality (TrafficStats hides its arrays).
fn assert_stats_eq(a: &TrafficStats, b: &TrafficStats) -> Result<(), TestCaseError> {
    for class in TrafficClass::ALL {
        prop_assert_eq!(
            a.bytes(class),
            b.bytes(class),
            "bytes mismatch for {}",
            class
        );
        prop_assert_eq!(
            a.messages(class),
            b.messages(class),
            "messages mismatch for {}",
            class
        );
    }
    Ok(())
}

/// Relay chain: each node forwards the token to `next` until hops run out,
/// recording the path.
struct Relay {
    next: NodeId,
    log: Vec<(u64, u32)>,
}

#[derive(Clone)]
struct Token {
    hops: u32,
}

impl Protocol for Relay {
    type Msg = Token;
    fn on_message(&mut self, ctx: &mut Ctx<'_, Token>, _from: NodeId, msg: Token) {
        self.log.push((ctx.now().as_micros(), msg.hops));
        if msg.hops > 0 {
            ctx.send(
                self.next,
                Token { hops: msg.hops - 1 },
                32,
                TrafficClass::Query,
            );
        }
    }
    fn on_timer(&mut self, _ctx: &mut Ctx<'_, Token>, _tag: TimerTag) {}
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn delay_space_is_symmetric_with_floor(
        n in 2usize..80,
        seed in any::<u64>(),
        a in any::<u32>(),
        b in any::<u32>(),
    ) {
        let d = DelaySpace::paper(n, seed);
        let (a, b) = (a as usize % n, b as usize % n);
        prop_assert!((d.delay_ms(a, b) - d.delay_ms(b, a)).abs() < 1e-12);
        prop_assert_eq!(d.delay_ms(a, a), 0.0);
        if a != b {
            prop_assert!(d.delay_ms(a, b) >= DelaySpaceConfig::paper_default().base_ms);
            prop_assert!(d.delay_ms(a, b).is_finite());
        }
    }

    #[test]
    fn same_seed_same_space(n in 2usize..60, seed in any::<u64>()) {
        let d1 = DelaySpace::paper(n, seed);
        let d2 = DelaySpace::paper(n, seed);
        for i in 0..n {
            prop_assert_eq!(d1.coords(i), d2.coords(i));
        }
    }

    #[test]
    fn relay_chain_is_deterministic_and_time_monotone(
        n in 2usize..20,
        hops in 1u32..30,
        seed in any::<u64>(),
    ) {
        let run = || {
            let nodes: Vec<Relay> = (0..n)
                .map(|i| Relay {
                    next: NodeId(((i + 1) % n) as u32),
                    log: Vec::new(),
                })
                .collect();
            let mut sim = Simulator::new(nodes, DelaySpace::paper(n, seed));
            sim.inject(
                SimTime::ZERO,
                NodeId(0),
                NodeId(0),
                Token { hops },
                32,
                TrafficClass::Query,
            );
            sim.run_to_completion();
            let logs: Vec<Vec<(u64, u32)>> =
                sim.nodes().map(|(_, r)| r.log.clone()).collect();
            (logs, sim.stats().clone(), sim.now())
        };
        let (l1, s1, t1) = run();
        let (l2, s2, t2) = run();
        prop_assert_eq!(&l1, &l2, "replay must be bit-identical");
        prop_assert_eq!(s1.total_bytes(), s2.total_bytes());
        prop_assert_eq!(t1, t2);
        // hops+1 deliveries, each 32 bytes.
        prop_assert_eq!(s1.total_messages(), hops as u64 + 1);
        prop_assert_eq!(s1.total_bytes(), (hops as u64 + 1) * 32);
        // Per-node logs are time-monotone.
        for log in &l1 {
            for w in log.windows(2) {
                prop_assert!(w[0].0 <= w[1].0);
            }
        }
    }

    #[test]
    fn traffic_merge_commutes(xs in record_stream(), ys in record_stream()) {
        let mut ab = replay(&xs);
        ab.merge(&replay(&ys));
        let mut ba = replay(&ys);
        ba.merge(&replay(&xs));
        assert_stats_eq(&ab, &ba)?;
    }

    #[test]
    fn traffic_merge_is_stream_union(xs in record_stream(), ys in record_stream()) {
        let mut merged = replay(&xs);
        merged.merge(&replay(&ys));
        let concat: Vec<(usize, usize)> =
            xs.iter().chain(ys.iter()).copied().collect();
        assert_stats_eq(&merged, &replay(&concat))?;
    }
}
