//! Virtual time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Microsecond-resolution virtual time.
///
/// Microseconds give headroom for sub-millisecond processing delays while a
/// `u64` still covers ~585k years of simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// From whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// From whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// From fractional milliseconds (delay-space output), rounded to the
    /// nearest microsecond and clamped at zero.
    pub fn from_millis_f64(ms: f64) -> Self {
        SimTime((ms.max(0.0) * 1_000.0).round() as u64)
    }

    /// Whole microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating difference.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimTime::from_secs(2).as_millis_f64(), 2_000.0);
        assert_eq!(SimTime::from_millis_f64(1.5).as_micros(), 1_500);
        assert_eq!(SimTime::from_millis_f64(-3.0), SimTime::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(4);
        assert_eq!((a + b).as_millis_f64(), 14.0);
        assert_eq!((a - b).as_millis_f64(), 6.0);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_millis_f64(12.345).to_string(), "12.345ms");
    }
}
