//! Synthesized Internet delay space.
//!
//! Reproduction of the paper's latency substrate: "We use the 5-dimensional
//! synthesized coordinate system in \[12\] to simulate the network latency
//! between any given pair of nodes over the Internet." Zhang et al.'s model
//! embeds hosts in a low-dimensional Euclidean space whose distances
//! reproduce measured one-way Internet delays: clustered (continents/ISPs),
//! right-skewed, with a minimum propagation floor.
//!
//! We synthesize that structure directly: cluster centers are placed
//! uniformly in a 5-D box, each node is a Gaussian perturbation of a center,
//! and the one-way delay between two nodes is
//! `base + scale · ‖c_a − c_b‖` — intra-cluster pairs land near `base`
//! (a few ms), inter-cluster pairs spread up to a few hundred ms, matching
//! the regime in which the paper's query latencies (650–1000 ms over 3–5
//! hierarchy hops, i.e. several round trips) were reported.

use crate::time::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Dimensionality of the synthesized coordinate space (per \[12\]).
pub const DIMS: usize = 5;

/// Parameters of the synthesized delay space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelaySpaceConfig {
    /// Number of clusters (autonomous-system groups).
    pub clusters: usize,
    /// Standard deviation of intra-cluster coordinate spread.
    pub cluster_sigma: f64,
    /// Side length of the box cluster centers are drawn from.
    pub box_side: f64,
    /// Milliseconds of one-way delay per unit of Euclidean distance.
    pub ms_per_unit: f64,
    /// One-way propagation floor in milliseconds.
    pub base_ms: f64,
}

impl DelaySpaceConfig {
    /// Calibration used by the figure harness: produces a median one-way
    /// delay near 90 ms with a long tail past 400 ms, which puts the
    /// default ROADS configuration in the paper's ~700-800 ms query-latency
    /// regime (Fig. 3 at 320 nodes) and SWORD's 640-node latency near the
    /// paper's ~2300 ms.
    pub fn paper_default() -> Self {
        DelaySpaceConfig {
            clusters: 12,
            cluster_sigma: 0.08,
            box_side: 1.0,
            ms_per_unit: 200.0,
            base_ms: 4.0,
        }
    }
}

impl Default for DelaySpaceConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Seeded synthesized delay space over `n` nodes.
///
/// Delays are symmetric one-way latencies; the engine applies one per
/// message hop. All randomness flows from the seed, so simulations replay
/// bit-identically.
#[derive(Debug, Clone)]
pub struct DelaySpace {
    coords: Vec<[f64; DIMS]>,
    config: DelaySpaceConfig,
}

impl DelaySpace {
    /// Synthesize coordinates for `n` nodes.
    pub fn synthesize(n: usize, config: DelaySpaceConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let clusters = config.clusters.max(1);
        let centers: Vec<[f64; DIMS]> = (0..clusters)
            .map(|_| std::array::from_fn(|_| rng.gen::<f64>() * config.box_side))
            .collect();
        let coords = (0..n)
            .map(|_| {
                let c = centers[rng.gen_range(0..clusters)];
                std::array::from_fn(|d| c[d] + gaussian(&mut rng) * config.cluster_sigma)
            })
            .collect();
        DelaySpace { coords, config }
    }

    /// Synthesize with the paper-default configuration.
    pub fn paper(n: usize, seed: u64) -> Self {
        Self::synthesize(n, DelaySpaceConfig::paper_default(), seed)
    }

    /// Number of embedded nodes.
    pub fn len(&self) -> usize {
        self.coords.len()
    }

    /// True when no nodes are embedded.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Node coordinates.
    pub fn coords(&self, node: usize) -> [f64; DIMS] {
        self.coords[node]
    }

    /// One-way delay between two nodes in milliseconds. `delay(a, a) == 0`
    /// (loopback is modeled as free; local processing costs are charged by
    /// protocols, not the network).
    pub fn delay_ms(&self, a: usize, b: usize) -> f64 {
        if a == b {
            return 0.0;
        }
        let (ca, cb) = (&self.coords[a], &self.coords[b]);
        let d2: f64 = (0..DIMS).map(|i| (ca[i] - cb[i]).powi(2)).sum();
        self.config.base_ms + self.config.ms_per_unit * d2.sqrt()
    }

    /// One-way delay as virtual time.
    pub fn delay(&self, a: usize, b: usize) -> SimTime {
        SimTime::from_millis_f64(self.delay_ms(a, b))
    }

    /// Summary statistics (min, median, p90, max) over all distinct pairs;
    /// used by calibration tests and the harness banner.
    pub fn pairwise_stats_ms(&self) -> (f64, f64, f64, f64) {
        let n = self.coords.len();
        if n < 2 {
            return (0.0, 0.0, 0.0, 0.0); // no distinct pairs
        }
        let mut delays = Vec::with_capacity(n * (n - 1) / 2);
        for a in 0..n {
            for b in (a + 1)..n {
                delays.push(self.delay_ms(a, b));
            }
        }
        delays.sort_by(|x, y| x.partial_cmp(y).expect("finite delays"));
        let pick = |q: f64| delays[((delays.len() - 1) as f64 * q) as usize];
        (pick(0.0), pick(0.5), pick(0.9), pick(1.0))
    }
}

/// Standard normal via Box–Muller.
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let a = DelaySpace::paper(50, 7);
        let b = DelaySpace::paper(50, 7);
        for i in 0..50 {
            assert_eq!(a.coords(i), b.coords(i));
        }
        let c = DelaySpace::paper(50, 8);
        assert_ne!(a.coords(0), c.coords(0));
    }

    #[test]
    fn symmetric_and_zero_diagonal() {
        let d = DelaySpace::paper(20, 1);
        assert_eq!(d.delay_ms(3, 3), 0.0);
        assert!((d.delay_ms(2, 9) - d.delay_ms(9, 2)).abs() < 1e-12);
    }

    #[test]
    fn floor_respected() {
        let d = DelaySpace::paper(20, 1);
        for a in 0..20 {
            for b in 0..20 {
                if a != b {
                    assert!(d.delay_ms(a, b) >= 2.0);
                }
            }
        }
    }

    #[test]
    fn clustered_structure_gives_spread() {
        let d = DelaySpace::paper(320, 42);
        let (min, median, p90, max) = d.pairwise_stats_ms();
        // Intra-cluster pairs sit near the floor; inter-cluster spread well
        // beyond it — the right-skewed shape the paper's substrate has.
        assert!(min < 50.0, "min={min}");
        assert!(median > 40.0 && median < 240.0, "median={median}");
        assert!(p90 > median, "p90={p90} median={median}");
        assert!(max < 2000.0, "max={max}");
    }

    #[test]
    fn delay_as_simtime() {
        let d = DelaySpace::paper(4, 3);
        let t = d.delay(0, 1);
        assert!((t.as_millis_f64() - d.delay_ms(0, 1)).abs() < 0.001);
    }
}
