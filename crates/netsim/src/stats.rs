//! Traffic accounting by class.
//!
//! The paper's overhead metrics are *per class*: "resource update overhead,
//! defined as the total number of bytes sent for updating the resource
//! records or summaries; and query message overhead, defined as the total
//! number of bytes sent for forwarding the queries" (§V). Every message the
//! engine delivers is tagged with a [`TrafficClass`] and accumulated here.

use std::fmt;

/// Category of a simulated message, matching the paper's metric split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// Resource updates: record exports, summary exports, bottom-up
    /// aggregation, top-down replication.
    Update,
    /// Query forwarding and redirection.
    Query,
    /// Hierarchy/overlay upkeep: heartbeats, join probes, rejoin traffic.
    Maintenance,
    /// Returned resource records (result traffic, measured only by the
    /// prototype benchmark, Fig. 11).
    Data,
}

impl TrafficClass {
    /// All classes, for iteration in reports.
    pub const ALL: [TrafficClass; 4] = [
        TrafficClass::Update,
        TrafficClass::Query,
        TrafficClass::Maintenance,
        TrafficClass::Data,
    ];

    fn index(self) -> usize {
        match self {
            TrafficClass::Update => 0,
            TrafficClass::Query => 1,
            TrafficClass::Maintenance => 2,
            TrafficClass::Data => 3,
        }
    }
}

impl fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TrafficClass::Update => "update",
            TrafficClass::Query => "query",
            TrafficClass::Maintenance => "maintenance",
            TrafficClass::Data => "data",
        };
        f.write_str(s)
    }
}

/// Byte and message counters per [`TrafficClass`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrafficStats {
    bytes: [u64; 4],
    messages: [u64; 4],
}

impl TrafficStats {
    /// Zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sent message.
    pub fn record(&mut self, class: TrafficClass, bytes: usize) {
        let i = class.index();
        self.bytes[i] += bytes as u64;
        self.messages[i] += 1;
    }

    /// Total bytes in one class.
    pub fn bytes(&self, class: TrafficClass) -> u64 {
        self.bytes[class.index()]
    }

    /// Total messages in one class.
    pub fn messages(&self, class: TrafficClass) -> u64 {
        self.messages[class.index()]
    }

    /// Bytes across all classes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Messages across all classes.
    pub fn total_messages(&self) -> u64 {
        self.messages.iter().sum()
    }

    /// Merge counters from another run (e.g. per-trial accumulation).
    pub fn absorb(&mut self, other: &TrafficStats) {
        for i in 0..4 {
            self.bytes[i] += other.bytes[i];
            self.messages[i] += other.messages[i];
        }
    }

    /// Fold `other` into `self` — the workspace's canonical merge name,
    /// matching `roads_telemetry::Histogram::merge`. Equivalent to
    /// [`TrafficStats::absorb`], which remains for existing callers.
    pub fn merge(&mut self, other: &TrafficStats) {
        self.absorb(other);
    }

    /// Export the counters into a telemetry registry as
    /// `<prefix>.bytes.<class>` / `<prefix>.messages.<class>` (additive:
    /// repeated calls accumulate, mirroring [`TrafficStats::merge`]).
    pub fn record_into(&self, reg: &roads_telemetry::Registry, prefix: &str) {
        for class in TrafficClass::ALL {
            reg.counter(&format!("{prefix}.bytes.{class}"))
                .add(self.bytes(class));
            reg.counter(&format!("{prefix}.messages.{class}"))
                .add(self.messages(class));
        }
    }

    /// Reset all counters.
    pub fn clear(&mut self) {
        *self = Self::default();
    }
}

impl fmt::Display for TrafficStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for class in TrafficClass::ALL {
            writeln!(
                f,
                "{class:<12} {:>12} bytes {:>9} msgs",
                self.bytes(class),
                self.messages(class)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_read() {
        let mut s = TrafficStats::new();
        s.record(TrafficClass::Update, 100);
        s.record(TrafficClass::Update, 50);
        s.record(TrafficClass::Query, 10);
        assert_eq!(s.bytes(TrafficClass::Update), 150);
        assert_eq!(s.messages(TrafficClass::Update), 2);
        assert_eq!(s.bytes(TrafficClass::Query), 10);
        assert_eq!(s.total_bytes(), 160);
        assert_eq!(s.total_messages(), 3);
    }

    #[test]
    fn absorb_sums() {
        let mut a = TrafficStats::new();
        a.record(TrafficClass::Data, 5);
        let mut b = TrafficStats::new();
        b.record(TrafficClass::Data, 7);
        b.record(TrafficClass::Maintenance, 1);
        a.absorb(&b);
        assert_eq!(a.bytes(TrafficClass::Data), 12);
        assert_eq!(a.messages(TrafficClass::Maintenance), 1);
    }

    #[test]
    fn merge_is_absorb() {
        let mut a = TrafficStats::new();
        a.record(TrafficClass::Query, 3);
        let mut b = TrafficStats::new();
        b.record(TrafficClass::Query, 4);
        a.merge(&b);
        assert_eq!(a.bytes(TrafficClass::Query), 7);
        assert_eq!(a.messages(TrafficClass::Query), 2);
    }

    #[test]
    fn record_into_registry() {
        let mut s = TrafficStats::new();
        s.record(TrafficClass::Update, 100);
        s.record(TrafficClass::Query, 10);
        let reg = roads_telemetry::Registry::new();
        s.record_into(&reg, "netsim");
        s.record_into(&reg, "netsim"); // additive
        let snap = reg.snapshot();
        assert_eq!(snap.counters["netsim.bytes.update"], 200);
        assert_eq!(snap.counters["netsim.messages.query"], 2);
        assert_eq!(snap.counters["netsim.bytes.data"], 0);
    }

    #[test]
    fn clear_zeroes() {
        let mut a = TrafficStats::new();
        a.record(TrafficClass::Query, 5);
        a.clear();
        assert_eq!(a.total_bytes(), 0);
    }

    #[test]
    fn display_contains_classes() {
        let s = TrafficStats::new();
        let out = s.to_string();
        for c in ["update", "query", "maintenance", "data"] {
            assert!(out.contains(c));
        }
    }
}
