//! Discrete-event network simulator used by the ROADS evaluation (§V).
//!
//! The paper simulates up to 640 wide-area nodes whose pairwise latencies
//! come from "the 5-dimensional synthesized coordinate system in \[12\]"
//! (Zhang et al., *Measurement-based analysis, modeling, and synthesis of
//! the Internet delay space*, IMC 2006). This crate provides:
//!
//! * [`SimTime`] — microsecond-resolution virtual time.
//! * [`DelaySpace`] — a seeded synthesized delay space: nodes get 5-D
//!   coordinates drawn from a clustered mixture model and pairwise delay is
//!   the scaled Euclidean distance, reproducing the heavy-tailed,
//!   triangle-inequality-mostly-holding structure of measured Internet RTTs.
//! * [`Simulator`] / [`Protocol`] — a deterministic event engine: nodes
//!   exchange typed messages, set timers, and the engine accounts every byte
//!   by [`TrafficClass`], which is exactly how the paper reports "update
//!   overhead" vs "query overhead".

pub mod delay;
pub mod sim;
pub mod stats;
pub mod time;

pub use delay::{DelaySpace, DelaySpaceConfig};
pub use sim::{Ctx, NodeId, Protocol, Simulator, TimerTag};
pub use stats::{TrafficClass, TrafficStats};
pub use time::SimTime;
