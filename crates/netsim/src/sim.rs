//! Deterministic discrete-event engine.
//!
//! Nodes implement [`Protocol`]; the engine delivers typed messages after
//! the delay-space latency, fires timers, and accounts every byte by
//! [`TrafficClass`]. Determinism: events are totally ordered by
//! `(time, sequence number)`, and all randomness lives inside protocols
//! (which should use seeded RNGs).
//!
//! ## Causal tracing
//!
//! Every message envelope carries a ([`TraceId`], [`SpanId`], parent
//! [`SpanId`]) triple. When a flight [`Recorder`] is attached via
//! [`Simulator::set_recorder`], each send allocates a child span of the
//! handler's current span and records `message-send` / `message-deliver`
//! events, so one injected request's entire causal fan-out forms a span
//! tree; timer firings start fresh traces (a periodic tick is its own
//! causal root). Protocol code can add domain events with [`Ctx::record`].
//! Without a recorder the triple is three copied zeros and every hook is
//! one `Option` check — no allocation, no locking.

use crate::delay::DelaySpace;
use crate::stats::{TrafficClass, TrafficStats};
use crate::time::SimTime;
use roads_telemetry::{Event, EventKind, Recorder, SpanId, TraceId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;
use std::sync::Arc;

/// Index of a node in the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Usize view for indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Opaque timer discriminator chosen by the protocol.
pub type TimerTag = u64;

/// Behaviour of one simulated node.
pub trait Protocol {
    /// Message type exchanged by nodes of this protocol.
    type Msg;

    /// Handle a delivered message.
    fn on_message(&mut self, ctx: &mut Ctx<'_, Self::Msg>, from: NodeId, msg: Self::Msg);

    /// Handle an expired timer. Default: ignore.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Msg>, tag: TimerTag) {
        let _ = (ctx, tag);
    }
}

/// Side effects a node may request while handling an event.
enum Action<M> {
    Send {
        to: NodeId,
        msg: M,
        bytes: usize,
        class: TrafficClass,
    },
    Timer {
        delay: SimTime,
        tag: TimerTag,
    },
}

/// Per-event context handed to protocol callbacks.
pub struct Ctx<'a, M> {
    now: SimTime,
    self_id: NodeId,
    trace: TraceId,
    span: SpanId,
    parent: SpanId,
    recorder: Option<&'a Recorder>,
    actions: &'a mut Vec<Action<M>>,
}

impl<M> Ctx<'_, M> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The node handling this event.
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    /// The causal trace this event belongs to ([`TraceId::NONE`] when the
    /// triggering message was untraced).
    pub fn trace(&self) -> TraceId {
        self.trace
    }

    /// The current span ([`SpanId::NONE`] without a recorder).
    pub fn span(&self) -> SpanId {
        self.span
    }

    /// The attached flight recorder, if any.
    pub fn recorder(&self) -> Option<&Recorder> {
        self.recorder
    }

    /// Record a domain event (summary merge, TTL expiry, …) on this node
    /// under the current span. A no-op without a recorder.
    pub fn record(&self, kind: EventKind, detail: u64) {
        if let Some(rec) = self.recorder {
            rec.record(Event {
                at_us: self.now.as_micros(),
                dur_us: 0,
                node: self.self_id.0,
                trace: self.trace,
                span: self.span,
                parent: self.parent,
                kind,
                detail,
            });
        }
    }

    /// Send `msg` to `to`; it arrives after the delay-space latency.
    /// `bytes` is the full on-wire size (payload + envelope) and is
    /// accounted under `class`.
    pub fn send(&mut self, to: NodeId, msg: M, bytes: usize, class: TrafficClass) {
        self.actions.push(Action::Send {
            to,
            msg,
            bytes,
            class,
        });
    }

    /// Fire `on_timer(tag)` on this node after `delay`.
    pub fn set_timer(&mut self, delay: SimTime, tag: TimerTag) {
        self.actions.push(Action::Timer { delay, tag });
    }
}

enum Payload<M> {
    Deliver { from: NodeId, msg: M, bytes: usize },
    Timer { tag: TimerTag },
}

struct QueuedEvent<M> {
    at: SimTime,
    seq: u64,
    to: NodeId,
    payload: Payload<M>,
    /// Causal envelope: the trace the message belongs to, its span, and
    /// the sender's span. All zero when untraced.
    trace: TraceId,
    span: SpanId,
    parent: SpanId,
}

impl<M> PartialEq for QueuedEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for QueuedEvent<M> {}
impl<M> PartialOrd for QueuedEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for QueuedEvent<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first ordering.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The event engine: owns the nodes, the delay space, the queue and the
/// traffic counters.
pub struct Simulator<P: Protocol> {
    nodes: Vec<P>,
    delays: DelaySpace,
    queue: BinaryHeap<QueuedEvent<P::Msg>>,
    scratch: Vec<Action<P::Msg>>,
    now: SimTime,
    seq: u64,
    stats: TrafficStats,
    events_processed: u64,
    /// Message-loss model: probability each sent message is silently
    /// dropped, driven by a deterministic counter-hash (seeded).
    loss_probability: f64,
    loss_seed: u64,
    messages_dropped: u64,
    /// Optional link bandwidth: when set, each message additionally incurs
    /// a serialization delay of `bytes × 8 / bandwidth`.
    bandwidth_mbps: Option<f64>,
    /// Optional delivery hooks into a telemetry registry; `None` keeps the
    /// hot path to a single branch per event.
    telemetry: Option<SimTelemetry>,
    /// Optional causal flight recorder; `None` keeps envelope handling to
    /// copying three zeroed ids.
    recorder: Option<Arc<Recorder>>,
    /// Per-node delivery counts (timeline load-share gauge).
    deliveries: Vec<u64>,
    /// Per-node straggler multipliers (1.0 = healthy): a message's
    /// propagation delay is scaled by the slower endpoint's factor.
    slow_factors: Vec<f64>,
}

/// Pre-resolved telemetry instruments for the event loop (cached `Arc`s so
/// delivery never takes the registry lock).
struct SimTelemetry {
    delivered: std::sync::Arc<roads_telemetry::Counter>,
    timers: std::sync::Arc<roads_telemetry::Counter>,
    dropped: std::sync::Arc<roads_telemetry::Counter>,
}

impl<P: Protocol> Simulator<P> {
    /// Build a simulation over `nodes` with pairwise latencies from
    /// `delays`.
    ///
    /// # Panics
    /// If the node count differs from the delay space's.
    pub fn new(nodes: Vec<P>, delays: DelaySpace) -> Self {
        assert_eq!(
            nodes.len(),
            delays.len(),
            "one delay-space coordinate per node"
        );
        let n = nodes.len();
        Simulator {
            nodes,
            delays,
            queue: BinaryHeap::new(),
            scratch: Vec::new(),
            now: SimTime::ZERO,
            seq: 0,
            stats: TrafficStats::new(),
            events_processed: 0,
            loss_probability: 0.0,
            loss_seed: 0,
            messages_dropped: 0,
            bandwidth_mbps: None,
            telemetry: None,
            recorder: None,
            deliveries: vec![0; n],
            slow_factors: vec![1.0; n],
        }
    }

    /// Attach a causal flight recorder: every send/deliver/timer event is
    /// recorded with trace and span ids, and protocol callbacks can add
    /// domain events via [`Ctx::record`]. Without one, the event loop
    /// pays only an `Option` check.
    pub fn set_recorder(&mut self, rec: Arc<Recorder>) {
        self.recorder = Some(rec);
    }

    /// The attached flight recorder, if any.
    pub fn recorder(&self) -> Option<&Arc<Recorder>> {
        self.recorder.as_ref()
    }

    /// Per-node delivered-message counts since construction.
    pub fn deliveries(&self) -> &[u64] {
        &self.deliveries
    }

    /// Count every delivery, timer firing, and loss-model drop into `reg`
    /// (`netsim.messages_delivered`, `netsim.timers_fired`,
    /// `netsim.messages_dropped`). Without a registry the event loop pays
    /// only a `None` check.
    pub fn set_telemetry(&mut self, reg: &roads_telemetry::Registry) {
        self.telemetry = Some(SimTelemetry {
            delivered: reg.counter("netsim.messages_delivered"),
            timers: reg.counter("netsim.timers_fired"),
            dropped: reg.counter("netsim.messages_dropped"),
        });
    }

    /// Model finite link bandwidth: every message's delivery is delayed by
    /// its serialization time (`bytes × 8 / bandwidth`) on top of the
    /// delay-space propagation latency. The paper's simulation ignores
    /// this (messages are small); it matters when experimenting with large
    /// summaries or record transfers.
    pub fn set_bandwidth_mbps(&mut self, mbps: f64) {
        assert!(mbps > 0.0, "bandwidth must be positive");
        self.bandwidth_mbps = Some(mbps);
    }

    fn serialization_delay(&self, bytes: usize) -> SimTime {
        match self.bandwidth_mbps {
            // Round to the nearest microsecond so sub-microsecond costs
            // accumulate instead of truncating to zero.
            Some(mbps) => SimTime((bytes as f64 * 8.0 / mbps).round() as u64),
            None => SimTime::ZERO,
        }
    }

    /// Enable the message-loss model: every node-to-node message is
    /// dropped with probability `p`, deterministically derived from `seed`
    /// and the message sequence number (replays stay bit-identical).
    /// Injected messages and timers are never dropped.
    pub fn set_message_loss(&mut self, p: f64, seed: u64) {
        self.loss_probability = p.clamp(0.0, 1.0);
        self.loss_seed = seed;
    }

    /// Messages dropped by the loss model so far.
    pub fn messages_dropped(&self) -> u64 {
        self.messages_dropped
    }

    /// Inject a straggler: every node-to-node message to or from `node`
    /// has its propagation delay multiplied by `factor` (≥ 1). The node
    /// stays alive and keeps processing — this models a slow link or an
    /// overloaded host, not a death. Undo with
    /// [`Simulator::restore_node`]. Messages already in flight keep
    /// their original delivery time.
    pub fn slow_node(&mut self, node: NodeId, factor: f64) {
        assert!(
            factor >= 1.0 && factor.is_finite(),
            "straggler factor must be >= 1, got {factor}"
        );
        self.slow_factors[node.index()] = factor;
    }

    /// Restore a straggler to full speed (factor 1.0).
    pub fn restore_node(&mut self, node: NodeId) {
        self.slow_factors[node.index()] = 1.0;
    }

    /// The current straggler factor of `node` (1.0 = healthy).
    pub fn slow_factor(&self, node: NodeId) -> f64 {
        self.slow_factors[node.index()]
    }

    /// Propagation delay between two nodes with straggler scaling: the
    /// slower endpoint's factor applies to the whole hop.
    fn link_delay(&self, from: usize, to: usize) -> SimTime {
        let d = self.delays.delay(from, to);
        let f = self.slow_factors[from].max(self.slow_factors[to]);
        if f > 1.0 {
            SimTime((d.as_micros() as f64 * f).round() as u64)
        } else {
            d
        }
    }

    /// Deterministic per-message loss decision (splitmix64 of seed ⊕ seq).
    fn drops(&mut self) -> bool {
        if self.loss_probability <= 0.0 {
            return false;
        }
        let mut z = self.loss_seed ^ self.seq.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z as f64 / u64::MAX as f64) < self.loss_probability
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the simulation has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Immutable access to a node.
    pub fn node(&self, id: NodeId) -> &P {
        &self.nodes[id.index()]
    }

    /// Mutable access to a node (setup only; during a run use messages).
    pub fn node_mut(&mut self, id: NodeId) -> &mut P {
        &mut self.nodes[id.index()]
    }

    /// Iterate all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &P)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Accumulated traffic counters.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Reset traffic counters (e.g. after warm-up).
    pub fn clear_stats(&mut self) {
        self.stats.clear();
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// The delay space (for protocols that need topology awareness during
    /// setup, e.g. proximity-based parent selection).
    pub fn delays(&self) -> &DelaySpace {
        &self.delays
    }

    fn push(
        &mut self,
        at: SimTime,
        to: NodeId,
        payload: Payload<P::Msg>,
        trace: TraceId,
        span: SpanId,
        parent: SpanId,
    ) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(QueuedEvent {
            // Virtual time never runs backwards: an event injected with an
            // absolute time already in the past (e.g. after run_until
            // advanced the clock past a drained queue) is delivered "now".
            at: at.max(self.now),
            seq,
            to,
            payload,
            trace,
            span,
            parent,
        });
    }

    /// Inject a message from outside the simulation (e.g. a client request
    /// arriving at a server), delivered at absolute time `at` and accounted
    /// under `class`.
    pub fn inject(
        &mut self,
        at: SimTime,
        from: NodeId,
        to: NodeId,
        msg: P::Msg,
        bytes: usize,
        class: TrafficClass,
    ) {
        self.inject_traced(at, from, to, msg, bytes, class, TraceId::NONE);
    }

    /// Like [`Simulator::inject`], but the message (and its whole causal
    /// fan-out) belongs to `trace`. With a recorder attached the message
    /// gets a root span — returned so callers can hang more events off it.
    #[allow(clippy::too_many_arguments)]
    pub fn inject_traced(
        &mut self,
        at: SimTime,
        from: NodeId,
        to: NodeId,
        msg: P::Msg,
        bytes: usize,
        class: TrafficClass,
        trace: TraceId,
    ) -> SpanId {
        self.stats.record(class, bytes);
        let span = if let Some(rec) = &self.recorder {
            let span = rec.next_span_id();
            rec.record(Event {
                at_us: at.max(self.now).as_micros(),
                dur_us: 0,
                node: from.0,
                trace,
                span,
                parent: SpanId::NONE,
                kind: EventKind::MessageSend,
                detail: bytes as u64,
            });
            span
        } else {
            SpanId::NONE
        };
        self.push(
            at,
            to,
            Payload::Deliver { from, msg, bytes },
            trace,
            span,
            SpanId::NONE,
        );
        span
    }

    /// Schedule a timer on `node` at absolute time `at`.
    pub fn schedule_timer(&mut self, at: SimTime, node: NodeId, tag: TimerTag) {
        self.push(
            at,
            node,
            Payload::Timer { tag },
            TraceId::NONE,
            SpanId::NONE,
            SpanId::NONE,
        );
    }

    /// Process a single event; returns false when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.now, "time must not run backwards");
        self.now = ev.at;
        self.events_processed += 1;

        // A delivery handler runs under the envelope's (trace, span); a
        // timer tick starts a fresh trace when a recorder is attached.
        let (cur_trace, cur_span, cur_parent) = match (&ev.payload, &self.recorder) {
            (Payload::Timer { .. }, Some(rec)) => {
                (rec.next_trace_id(), rec.next_span_id(), SpanId::NONE)
            }
            _ => (ev.trace, ev.span, ev.parent),
        };
        let mut actions = std::mem::take(&mut self.scratch);
        {
            let mut ctx = Ctx {
                now: self.now,
                self_id: ev.to,
                trace: cur_trace,
                span: cur_span,
                parent: cur_parent,
                recorder: self.recorder.as_deref(),
                actions: &mut actions,
            };
            let node = &mut self.nodes[ev.to.index()];
            match ev.payload {
                Payload::Deliver { from, msg, bytes } => {
                    if let Some(t) = &self.telemetry {
                        t.delivered.inc();
                    }
                    self.deliveries[ev.to.index()] += 1;
                    if let Some(rec) = &self.recorder {
                        rec.record(Event {
                            at_us: self.now.as_micros(),
                            dur_us: 0,
                            node: ev.to.0,
                            trace: cur_trace,
                            span: cur_span,
                            parent: cur_parent,
                            kind: EventKind::MessageDeliver,
                            detail: bytes as u64,
                        });
                    }
                    node.on_message(&mut ctx, from, msg)
                }
                Payload::Timer { tag } => {
                    if let Some(t) = &self.telemetry {
                        t.timers.inc();
                    }
                    if let Some(rec) = &self.recorder {
                        rec.record(Event {
                            at_us: self.now.as_micros(),
                            dur_us: 0,
                            node: ev.to.0,
                            trace: cur_trace,
                            span: cur_span,
                            parent: cur_parent,
                            kind: EventKind::TimerFire,
                            detail: tag,
                        });
                    }
                    node.on_timer(&mut ctx, tag)
                }
            }
        }
        for action in actions.drain(..) {
            match action {
                Action::Send {
                    to,
                    msg,
                    bytes,
                    class,
                } => {
                    // Bytes are charged even for lost messages — the sender
                    // still put them on the wire.
                    self.stats.record(class, bytes);
                    if self.drops() {
                        self.seq += 1; // consume a loss-lottery ticket
                        self.messages_dropped += 1;
                        if let Some(t) = &self.telemetry {
                            t.dropped.inc();
                        }
                        continue;
                    }
                    let at = self.now
                        + self.link_delay(ev.to.index(), to.index())
                        + self.serialization_delay(bytes);
                    // Each send becomes a child span of the handler's span,
                    // spanning the message's flight (delay + serialization)
                    // so exported traces show it as a complete slice.
                    let (span, parent) = if let Some(rec) = &self.recorder {
                        let child = rec.next_span_id();
                        rec.record(Event {
                            at_us: self.now.as_micros(),
                            dur_us: (at - self.now).as_micros(),
                            node: ev.to.0,
                            trace: cur_trace,
                            span: child,
                            parent: cur_span,
                            kind: EventKind::MessageSend,
                            detail: bytes as u64,
                        });
                        (child, cur_span)
                    } else {
                        (SpanId::NONE, SpanId::NONE)
                    };
                    self.push(
                        at,
                        to,
                        Payload::Deliver {
                            from: ev.to,
                            msg,
                            bytes,
                        },
                        cur_trace,
                        span,
                        parent,
                    );
                }
                Action::Timer { delay, tag } => {
                    let at = self.now + delay;
                    self.push(
                        at,
                        ev.to,
                        Payload::Timer { tag },
                        TraceId::NONE,
                        SpanId::NONE,
                        SpanId::NONE,
                    );
                }
            }
        }
        self.scratch = actions;
        true
    }

    /// Run until the queue drains or `limit` events have been processed.
    /// Returns the number of events processed by this call.
    pub fn run(&mut self, limit: u64) -> u64 {
        let mut n = 0;
        while n < limit && self.step() {
            n += 1;
        }
        n
    }

    /// Run until the queue drains or virtual time would pass `until`.
    /// Events scheduled after `until` stay queued.
    pub fn run_until(&mut self, until: SimTime) -> u64 {
        let mut n = 0;
        while let Some(head) = self.queue.peek() {
            if head.at > until {
                break;
            }
            self.step();
            n += 1;
        }
        self.now = self.now.max(until);
        n
    }

    /// Run until the event queue is completely empty.
    pub fn run_to_completion(&mut self) -> u64 {
        self.run(u64::MAX)
    }

    /// Consume the simulator, returning the nodes and final statistics.
    pub fn into_parts(self) -> (Vec<P>, TrafficStats) {
        (self.nodes, self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::{DelaySpace, DelaySpaceConfig};

    /// Ping-pong protocol: counts received pings, replies until TTL runs
    /// out, and records arrival times.
    struct PingPong {
        received: u32,
        arrivals: Vec<SimTime>,
        timer_fired: Vec<TimerTag>,
    }

    impl PingPong {
        fn new() -> Self {
            PingPong {
                received: 0,
                arrivals: Vec::new(),
                timer_fired: Vec::new(),
            }
        }
    }

    #[derive(Clone)]
    struct Ping {
        ttl: u32,
    }

    impl Protocol for PingPong {
        type Msg = Ping;
        fn on_message(&mut self, ctx: &mut Ctx<'_, Ping>, from: NodeId, msg: Ping) {
            self.received += 1;
            self.arrivals.push(ctx.now());
            if msg.ttl > 0 {
                ctx.send(from, Ping { ttl: msg.ttl - 1 }, 64, TrafficClass::Query);
            }
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_, Ping>, tag: TimerTag) {
            self.timer_fired.push(tag);
        }
    }

    fn sim(n: usize) -> Simulator<PingPong> {
        let nodes = (0..n).map(|_| PingPong::new()).collect();
        Simulator::new(nodes, DelaySpace::paper(n, 99))
    }

    #[test]
    fn ping_pong_round_trip() {
        let mut s = sim(2);
        s.inject(
            SimTime::ZERO,
            NodeId(1),
            NodeId(0),
            Ping { ttl: 3 },
            64,
            TrafficClass::Query,
        );
        s.run_to_completion();
        // ttl 3: n0 gets initial + 1 reply-of-reply = 2, n1 gets 2.
        assert_eq!(s.node(NodeId(0)).received, 2);
        assert_eq!(s.node(NodeId(1)).received, 2);
        // 4 messages of 64 bytes accounted.
        assert_eq!(s.stats().bytes(TrafficClass::Query), 4 * 64);
    }

    #[test]
    fn delivery_time_matches_delay_space() {
        let mut s = sim(2);
        let d = s.delays().delay(0, 1);
        s.inject(
            SimTime::ZERO,
            NodeId(0),
            NodeId(1),
            Ping { ttl: 0 },
            10,
            TrafficClass::Query,
        );
        s.run_to_completion();
        // Injection arrives at the given absolute time (ZERO); the reply
        // path is not exercised (ttl 0), so exactly one arrival at t=0.
        assert_eq!(s.node(NodeId(1)).arrivals, vec![SimTime::ZERO]);

        // Now a node-to-node hop takes the delay-space latency.
        let mut s = sim(2);
        s.inject(
            SimTime::ZERO,
            NodeId(1),
            NodeId(0),
            Ping { ttl: 1 },
            10,
            TrafficClass::Query,
        );
        s.run_to_completion();
        assert_eq!(s.node(NodeId(1)).arrivals, vec![d]);
    }

    #[test]
    fn slow_node_scales_delivery_and_restores() {
        // A 4x straggler on either endpoint quadruples the hop latency;
        // restore_node returns it to the delay-space baseline.
        let d = sim(2).delays().delay(0, 1);
        for victim in [NodeId(0), NodeId(1)] {
            let mut s = sim(2);
            assert_eq!(s.slow_factor(victim), 1.0);
            s.slow_node(victim, 4.0);
            assert_eq!(s.slow_factor(victim), 4.0);
            s.inject(
                SimTime::ZERO,
                NodeId(1),
                NodeId(0),
                Ping { ttl: 1 },
                10,
                TrafficClass::Query,
            );
            s.run_to_completion();
            let expect = SimTime((d.as_micros() as f64 * 4.0).round() as u64);
            assert_eq!(s.node(NodeId(1)).arrivals, vec![expect], "{victim:?}");

            s.restore_node(victim);
            s.inject(
                s.now(),
                NodeId(1),
                NodeId(0),
                Ping { ttl: 1 },
                10,
                TrafficClass::Query,
            );
            let t0 = s.now();
            s.run_to_completion();
            assert_eq!(s.now() - t0, d, "restored hop back to baseline");
        }
    }

    #[test]
    #[should_panic(expected = "factor must be >= 1")]
    fn slow_node_rejects_speedups() {
        sim(2).slow_node(NodeId(0), 0.5);
    }

    #[test]
    fn timers_fire_in_order() {
        let mut s = sim(1);
        s.schedule_timer(SimTime::from_millis(10), NodeId(0), 2);
        s.schedule_timer(SimTime::from_millis(5), NodeId(0), 1);
        s.run_to_completion();
        assert_eq!(s.node(NodeId(0)).timer_fired, vec![1, 2]);
        assert_eq!(s.now(), SimTime::from_millis(10));
    }

    #[test]
    fn run_until_leaves_future_events() {
        let mut s = sim(1);
        s.schedule_timer(SimTime::from_millis(5), NodeId(0), 1);
        s.schedule_timer(SimTime::from_millis(50), NodeId(0), 2);
        let n = s.run_until(SimTime::from_millis(10));
        assert_eq!(n, 1);
        assert_eq!(s.node(NodeId(0)).timer_fired, vec![1]);
        assert_eq!(s.now(), SimTime::from_millis(10));
        s.run_to_completion();
        assert_eq!(s.node(NodeId(0)).timer_fired, vec![1, 2]);
    }

    #[test]
    fn deterministic_tie_break_by_sequence() {
        let mut s = sim(1);
        for tag in 0..10 {
            s.schedule_timer(SimTime::from_millis(7), NodeId(0), tag);
        }
        s.run_to_completion();
        assert_eq!(
            s.node(NodeId(0)).timer_fired,
            (0..10).collect::<Vec<TimerTag>>()
        );
    }

    #[test]
    fn step_limit_respected() {
        let mut s = sim(1);
        for tag in 0..10 {
            s.schedule_timer(SimTime::from_millis(tag), NodeId(0), tag);
        }
        assert_eq!(s.run(3), 3);
        assert_eq!(s.events_processed(), 3);
    }

    #[test]
    fn bandwidth_adds_serialization_delay() {
        let run = |mbps: Option<f64>| {
            let mut s = sim(2);
            if let Some(b) = mbps {
                s.set_bandwidth_mbps(b);
            }
            s.inject(
                SimTime::ZERO,
                NodeId(1),
                NodeId(0),
                Ping { ttl: 1 },
                10_000, // 10 kB reply
                TrafficClass::Query,
            );
            s.run_to_completion();
            s.node(NodeId(1)).arrivals[0]
        };
        let fast = run(None);
        let slow = run(Some(8.0)); // 8 Mbps = 1 byte/µs
                                   // The injected request is not serialized (it enters at an absolute
                                   // time); the measured arrival is node 0's 64-byte reply, which
                                   // picks up exactly 64 µs.
        assert_eq!(slow.as_micros() - fast.as_micros(), 64);
    }

    #[test]
    fn message_loss_drops_deterministically() {
        let run = |p: f64| {
            let mut s = sim(2);
            s.set_message_loss(p, 77);
            // A long ping-pong chain: each hop is a loss opportunity.
            s.inject(
                SimTime::ZERO,
                NodeId(1),
                NodeId(0),
                Ping { ttl: 200 },
                64,
                TrafficClass::Query,
            );
            s.run_to_completion();
            (
                s.messages_dropped(),
                s.node(NodeId(0)).received + s.node(NodeId(1)).received,
            )
        };
        let (drop0, recv0) = run(0.0);
        assert_eq!(drop0, 0);
        assert_eq!(recv0, 201, "lossless chain completes");
        let (drop_half, recv_half) = run(0.5);
        assert!(drop_half >= 1, "a lossy chain dies quickly");
        assert!(recv_half < recv0);
        // Determinism: same parameters, same outcome.
        assert_eq!(run(0.5), (drop_half, recv_half));
    }

    #[test]
    fn lost_messages_still_billed() {
        let mut s = sim(2);
        s.set_message_loss(1.0, 1);
        s.inject(
            SimTime::ZERO,
            NodeId(1),
            NodeId(0),
            Ping { ttl: 5 },
            64,
            TrafficClass::Query,
        );
        s.run_to_completion();
        // The injected message arrives (never dropped); node 0's reply is
        // sent (billed) but dropped.
        assert_eq!(s.node(NodeId(0)).received, 1);
        assert_eq!(s.node(NodeId(1)).received, 0);
        assert_eq!(s.stats().bytes(TrafficClass::Query), 2 * 64);
        assert_eq!(s.messages_dropped(), 1);
    }

    #[test]
    fn telemetry_hooks_count_events() {
        let reg = roads_telemetry::Registry::new();
        let mut s = sim(2);
        s.set_telemetry(&reg);
        s.schedule_timer(SimTime::from_millis(1), NodeId(0), 7);
        s.inject(
            SimTime::ZERO,
            NodeId(1),
            NodeId(0),
            Ping { ttl: 3 },
            64,
            TrafficClass::Query,
        );
        s.run_to_completion();
        let snap = reg.snapshot();
        assert_eq!(snap.counters["netsim.messages_delivered"], 4);
        assert_eq!(snap.counters["netsim.timers_fired"], 1);
        assert_eq!(snap.counters["netsim.messages_dropped"], 0);

        // Drops are counted too.
        let reg = roads_telemetry::Registry::new();
        let mut s = sim(2);
        s.set_telemetry(&reg);
        s.set_message_loss(1.0, 1);
        s.inject(
            SimTime::ZERO,
            NodeId(1),
            NodeId(0),
            Ping { ttl: 5 },
            64,
            TrafficClass::Query,
        );
        s.run_to_completion();
        assert_eq!(reg.snapshot().counters["netsim.messages_dropped"], 1);
    }

    #[test]
    fn recorder_builds_span_tree_for_injected_trace() {
        use roads_telemetry::{span_tree_root, trace_events, EventKind, Recorder};

        let rec = Arc::new(Recorder::new(1024));
        let mut s = sim(2);
        s.set_recorder(rec.clone());
        let trace = rec.next_trace_id();
        let root = s.inject_traced(
            SimTime::ZERO,
            NodeId(1),
            NodeId(0),
            Ping { ttl: 3 },
            64,
            TrafficClass::Query,
            trace,
        );
        assert!(!root.is_none());
        s.run_to_completion();

        let events = rec.events();
        let mine = trace_events(&events, trace);
        // 4 sends + 4 delivers, all on one trace rooted at the injection.
        assert_eq!(
            mine.iter()
                .filter(|e| e.kind == EventKind::MessageSend)
                .count(),
            4
        );
        assert_eq!(
            mine.iter()
                .filter(|e| e.kind == EventKind::MessageDeliver)
                .count(),
            4
        );
        assert_eq!(span_tree_root(&events, trace), Ok(root));
        assert_eq!(s.deliveries(), &[2, 2]);
    }

    #[test]
    fn timer_fires_start_fresh_traces() {
        use roads_telemetry::{EventKind, Recorder};

        let rec = Arc::new(Recorder::new(64));
        let mut s = sim(1);
        s.set_recorder(rec.clone());
        s.schedule_timer(SimTime::from_millis(1), NodeId(0), 7);
        s.schedule_timer(SimTime::from_millis(2), NodeId(0), 8);
        s.run_to_completion();
        let events = rec.events();
        let fires: Vec<_> = events
            .iter()
            .filter(|e| e.kind == EventKind::TimerFire)
            .collect();
        assert_eq!(fires.len(), 2);
        assert!(!fires[0].trace.is_none());
        assert_ne!(fires[0].trace, fires[1].trace);
    }

    #[test]
    fn no_recorder_means_no_span_ids() {
        let mut s = sim(2);
        s.inject(
            SimTime::ZERO,
            NodeId(1),
            NodeId(0),
            Ping { ttl: 1 },
            64,
            TrafficClass::Query,
        );
        s.run_to_completion();
        assert!(s.recorder().is_none());
        assert_eq!(s.deliveries(), &[1, 1]);
    }

    #[test]
    #[should_panic(expected = "one delay-space coordinate per node")]
    fn mismatched_delay_space_rejected() {
        let nodes = vec![PingPong::new()];
        let _ = Simulator::new(
            nodes,
            DelaySpace::synthesize(2, DelaySpaceConfig::default(), 0),
        );
    }
}
