//! Central-repository baseline (§IV).
//!
//! "With a central repository, all resource owners export their resource
//! records to the repository, which answers queries by searching these
//! records locally." One round trip per query; every record re-exported
//! every `tr`; all storage concentrated on one server.

use roads_netsim::DelaySpace;
use roads_records::{wire::MSG_HEADER_BYTES, Query, Record, WireSize};

/// Update-round accounting for the central repository (Eq. (3):
/// `O(r·K·N / tr)`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CentralUpdateStats {
    /// Bytes sent exporting records.
    pub bytes: u64,
    /// Export messages (one per owner per round; owners batch their K
    /// records into one message).
    pub messages: u64,
}

impl CentralUpdateStats {
    /// Per-second byte rate given the record refresh period `tr`.
    pub fn bytes_per_second(&self, tr_ms: u64) -> f64 {
        self.bytes as f64 / (tr_ms as f64 / 1000.0)
    }
}

/// Outcome of one query against the repository.
#[derive(Debug, Clone, PartialEq)]
pub struct CentralQueryOutcome {
    /// One-way latency until the query reaches the repository (ms) — the
    /// same "reaching the last server" definition as ROADS/SWORD.
    pub latency_ms: f64,
    /// Query bytes (the single query message).
    pub query_bytes: u64,
    /// Matching records.
    pub matching_records: usize,
}

/// The central repository: one server holding everyone's records.
#[derive(Debug, Clone)]
pub struct CentralRepository {
    /// Index of the repository server in the delay space.
    repo: usize,
    /// Per-owner record sets (kept per owner for export accounting).
    records: Vec<Vec<Record>>,
}

impl CentralRepository {
    /// Build a repository at delay-space index `repo` holding
    /// `records_per_owner`.
    pub fn build(repo: usize, records_per_owner: Vec<Vec<Record>>) -> Self {
        CentralRepository {
            repo,
            records: records_per_owner,
        }
    }

    /// The repository's delay-space index.
    pub fn repo_index(&self) -> usize {
        self.repo
    }

    /// Total records stored.
    pub fn len(&self) -> usize {
        self.records.iter().map(Vec::len).sum()
    }

    /// True when no records are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Storage at the repository in bytes (Table I's `r·K·N`).
    pub fn storage_bytes(&self) -> usize {
        self.records.iter().flatten().map(WireSize::wire_size).sum()
    }

    /// Account one export round: every owner ships all its records to the
    /// repository in one batched message.
    pub fn update_round(&self) -> CentralUpdateStats {
        let mut stats = CentralUpdateStats::default();
        for owner_records in &self.records {
            if owner_records.is_empty() {
                continue;
            }
            let payload: usize = owner_records.iter().map(WireSize::wire_size).sum();
            stats.bytes += (payload + MSG_HEADER_BYTES) as u64;
            stats.messages += 1;
        }
        stats
    }

    /// Execute a query from the client at delay-space index `start`.
    pub fn execute_query(
        &self,
        delays: &DelaySpace,
        query: &Query,
        start: usize,
    ) -> CentralQueryOutcome {
        let latency_ms = delays.delay_ms(start, self.repo);
        let matching_records = self
            .records
            .iter()
            .flatten()
            .filter(|r| query.matches(r))
            .count();
        CentralQueryOutcome {
            latency_ms,
            query_bytes: (query.wire_size() + MSG_HEADER_BYTES) as u64,
            matching_records,
        }
    }

    /// [`execute_query`](Self::execute_query) that additionally records
    /// the two-hop client→repository trace into the flight recorder: an
    /// entry `QueryHop` span at the client, a nested `QueryHop` span at
    /// the repository (detail = matches), and `QueryStart`/`QueryComplete`
    /// instants on the entry span.
    pub fn execute_query_recorded(
        &self,
        delays: &DelaySpace,
        query: &Query,
        start: usize,
        rec: Option<&roads_telemetry::Recorder>,
    ) -> CentralQueryOutcome {
        let out = self.execute_query(delays, query, start);
        if let Some(r) = rec {
            use roads_telemetry::{Event, EventKind, SpanId};
            let trace = r.next_trace_id();
            let end_us = ((out.latency_ms * 1000.0).round().max(0.0) as u64).max(1);
            let entry = r.record_span(
                trace,
                SpanId::NONE,
                start as u32,
                EventKind::QueryHop,
                0,
                end_us,
                0,
            );
            r.record(Event {
                at_us: 0,
                dur_us: 0,
                node: start as u32,
                trace,
                span: entry,
                parent: SpanId::NONE,
                kind: EventKind::QueryStart,
                detail: trace.0,
            });
            r.record_span(
                trace,
                entry,
                self.repo as u32,
                EventKind::QueryHop,
                end_us.saturating_sub(1),
                1,
                out.matching_records as u64,
            );
            r.record(Event {
                at_us: end_us,
                dur_us: 0,
                node: start as u32,
                trace,
                span: entry,
                parent: SpanId::NONE,
                kind: EventKind::QueryComplete,
                detail: out.matching_records as u64,
            });
        }
        out
    }
}

/// Record one central-repository query outcome into `reg` under the
/// `central.*` namespace, comparable with the `roads.*`/`sword.*` series.
pub fn record_query_outcome(reg: &roads_telemetry::Registry, out: &CentralQueryOutcome) {
    reg.counter("central.queries").inc();
    reg.counter("central.query_bytes").add(out.query_bytes);
    reg.counter("central.matching_records")
        .add(out.matching_records as u64);
    reg.histogram("central.query_latency_ms")
        .record(out.latency_ms);
}

#[cfg(test)]
mod tests {
    use super::*;
    use roads_records::{OwnerId, QueryBuilder, QueryId, RecordId, Schema, Value};

    fn repo(n_owners: usize, per_owner: usize) -> (CentralRepository, Schema) {
        let schema = Schema::unit_numeric(2);
        let records = (0..n_owners)
            .map(|o| {
                (0..per_owner)
                    .map(|i| {
                        Record::new_unchecked(
                            RecordId((o * per_owner + i) as u64),
                            OwnerId(o as u32),
                            vec![
                                Value::Float((o as f64) / n_owners as f64),
                                Value::Float((i as f64) / per_owner as f64),
                            ],
                        )
                    })
                    .collect()
            })
            .collect();
        (CentralRepository::build(0, records), schema)
    }

    #[test]
    fn recorded_query_is_a_two_hop_span_tree() {
        use roads_telemetry::{span_tree_root, trace_events, EventKind, Recorder, TraceId};
        let (r, schema) = repo(10, 4);
        let delays = DelaySpace::paper(10, 4);
        let q = QueryBuilder::new(&schema, QueryId(1))
            .range("x0", 0.0, 1.0)
            .build();
        let rec = Recorder::new(64);
        let out = r.execute_query_recorded(&delays, &q, 7, Some(&rec));
        assert_eq!(out.matching_records, 40);
        let events = rec.events();
        let tev = trace_events(&events, TraceId(1));
        let root = span_tree_root(&tev, TraceId(1)).expect("valid span tree");
        let hops: Vec<_> = tev
            .iter()
            .filter(|e| e.kind == EventKind::QueryHop)
            .collect();
        assert_eq!(hops.len(), 2, "client hop + repository hop");
        assert_eq!(
            tev.iter().find(|e| e.span == root).unwrap().node,
            7,
            "rooted at the client"
        );
        assert!(hops
            .iter()
            .any(|e| e.node == r.repo_index() as u32 && e.detail == 40));
    }

    #[test]
    fn stores_everything() {
        let (r, _) = repo(10, 20);
        assert_eq!(r.len(), 200);
        assert!(r.storage_bytes() > 200 * 20);
    }

    #[test]
    fn update_round_one_message_per_owner() {
        let (r, _) = repo(10, 20);
        let u = r.update_round();
        assert_eq!(u.messages, 10);
        // Bytes ≳ all record bytes.
        assert!(u.bytes as usize >= r.storage_bytes());
    }

    #[test]
    fn query_single_round_trip() {
        let (r, schema) = repo(10, 20);
        let delays = DelaySpace::paper(10, 4);
        let q = QueryBuilder::new(&schema, QueryId(1))
            .range("x0", 0.0, 0.15)
            .build();
        let out = r.execute_query(&delays, &q, 7);
        assert_eq!(out.latency_ms, delays.delay_ms(7, 0));
        assert_eq!(out.matching_records, 2 * 20, "owners 0 and 1 match");
    }

    #[test]
    fn query_from_repo_itself_is_free() {
        let (r, schema) = repo(4, 5);
        let delays = DelaySpace::paper(4, 4);
        let q = QueryBuilder::new(&schema, QueryId(2))
            .range("x0", 0.0, 1.0)
            .build();
        let out = r.execute_query(&delays, &q, 0);
        assert_eq!(out.latency_ms, 0.0);
        assert_eq!(out.matching_records, 20);
    }

    #[test]
    fn bytes_per_second_inverse_in_tr() {
        let (r, _) = repo(4, 5);
        let u = r.update_round();
        assert!(u.bytes_per_second(1_000) > u.bytes_per_second(2_000));
    }
}
