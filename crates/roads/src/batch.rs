//! Batched concurrent query evaluation over one shared converged network.
//!
//! The replication overlay's pitch (§III-C) is that queries can start
//! anywhere, spreading entry load across the federation. [`QueryBatch`]
//! exploits the flip side of that in the simulation plane: a converged
//! [`RoadsNetwork`] is immutable during query processing, so any number of
//! workers can evaluate queries against one `Arc`-shared instance with no
//! coordination beyond handing out work. Each query's outcome is exactly
//! what [`execute_query`] returns for it — the batch only changes
//! wall-clock time, never results — so output is deterministic and ordered
//! like the input regardless of the worker count.

use crate::engine::RoadsNetwork;
use crate::queryexec::{execute_query, QueryOutcome, SearchScope};
use crate::tree::ServerId;
use roads_netsim::DelaySpace;
use roads_records::Query;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A worker pool evaluating a slice of queries over a shared network.
#[derive(Debug, Clone)]
pub struct QueryBatch {
    net: Arc<RoadsNetwork>,
    delays: Arc<DelaySpace>,
    threads: usize,
    scope: SearchScope,
}

impl QueryBatch {
    /// A batch executor over `net`/`delays` with one worker and the full
    /// search scope.
    pub fn new(net: Arc<RoadsNetwork>, delays: Arc<DelaySpace>) -> Self {
        QueryBatch {
            net,
            delays,
            threads: 1,
            scope: SearchScope::full(),
        }
    }

    /// Set the worker count (clamped to ≥ 1).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Restrict every query to `scope` (see [`SearchScope`]).
    pub fn scope(mut self, scope: SearchScope) -> Self {
        self.scope = scope;
        self
    }

    /// The shared network this batch queries.
    pub fn network(&self) -> &RoadsNetwork {
        &self.net
    }

    /// Evaluate every `(query, entry)` pair, returning outcomes in input
    /// order. Workers self-schedule off a shared cursor, so an expensive
    /// query never stalls the queue behind it.
    pub fn run(&self, queries: &[(Query, ServerId)]) -> Vec<QueryOutcome> {
        if self.threads <= 1 || queries.len() <= 1 {
            return queries
                .iter()
                .map(|(q, entry)| execute_query(&self.net, &self.delays, q, *entry, self.scope))
                .collect();
        }
        let cursor = AtomicUsize::new(0);
        let mut out: Vec<Option<QueryOutcome>> = vec![None; queries.len()];
        let slots = Mutex::new(&mut out);
        std::thread::scope(|s| {
            for _ in 0..self.threads.min(queries.len()) {
                s.spawn(|| {
                    // Buffer locally; one merge per worker keeps the result
                    // mutex off the evaluation path.
                    let mut local: Vec<(usize, QueryOutcome)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= queries.len() {
                            break;
                        }
                        let (q, entry) = &queries[i];
                        local.push((
                            i,
                            execute_query(&self.net, &self.delays, q, *entry, self.scope),
                        ));
                    }
                    let mut slots = slots.lock().expect("no worker panics while merging");
                    for (i, o) in local {
                        slots[i] = Some(o);
                    }
                });
            }
        });
        out.into_iter()
            .map(|o| o.expect("every query index was claimed by a worker"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RoadsConfig;
    use roads_records::{OwnerId, QueryBuilder, QueryId, Record, RecordId, Schema, Value};
    use roads_summary::SummaryConfig;

    fn fixture(n: usize) -> (Arc<RoadsNetwork>, Arc<DelaySpace>, Vec<(Query, ServerId)>) {
        let schema = Schema::unit_numeric(2);
        let cfg = RoadsConfig {
            max_children: 3,
            summary: SummaryConfig::with_buckets(64),
            ..RoadsConfig::paper_default()
        };
        let records: Vec<Vec<Record>> = (0..n)
            .map(|s| {
                (0..5)
                    .map(|i| {
                        Record::new_unchecked(
                            RecordId((s * 5 + i) as u64),
                            OwnerId(s as u32),
                            vec![
                                Value::Float(s as f64 / n as f64),
                                Value::Float(i as f64 / 5.0),
                            ],
                        )
                    })
                    .collect()
            })
            .collect();
        let net = Arc::new(RoadsNetwork::build(schema.clone(), cfg, records));
        let delays = Arc::new(DelaySpace::paper(n, 9));
        let queries: Vec<(Query, ServerId)> = (0..30u64)
            .map(|i| {
                let lo = (i as f64 / 30.0) * 0.7;
                let q = QueryBuilder::new(&schema, QueryId(i))
                    .range("x0", lo, lo + 0.25)
                    .build();
                (q, ServerId((i % n as u64) as u32))
            })
            .collect();
        (net, delays, queries)
    }

    #[test]
    fn batch_matches_sequential_execution_at_any_width() {
        let (net, delays, queries) = fixture(17);
        let expected: Vec<QueryOutcome> = queries
            .iter()
            .map(|(q, e)| execute_query(&net, &delays, q, *e, SearchScope::full()))
            .collect();
        for threads in [1, 2, 4, 33] {
            let got = QueryBatch::new(Arc::clone(&net), Arc::clone(&delays))
                .threads(threads)
                .run(&queries);
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn batch_honors_scope() {
        let (net, delays, queries) = fixture(17);
        let scoped = QueryBatch::new(Arc::clone(&net), Arc::clone(&delays))
            .threads(4)
            .scope(SearchScope::levels(0))
            .run(&queries);
        let expected: Vec<QueryOutcome> = queries
            .iter()
            .map(|(q, e)| execute_query(&net, &delays, q, *e, SearchScope::levels(0)))
            .collect();
        assert_eq!(scoped, expected);
    }

    #[test]
    fn batch_empty_and_threads_clamp() {
        let (net, delays, _) = fixture(5);
        let b = QueryBatch::new(net, delays).threads(0);
        assert!(b.run(&[]).is_empty());
    }
}
