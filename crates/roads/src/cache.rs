//! Per-server TTL'd query result cache, aged by update-round epochs and
//! invalidated per subtree by record deltas.
//!
//! Summaries change "on the order of several minutes at least" (§IV) while
//! queries arrive continuously, so the window between two update rounds is
//! a natural result-validity horizon: a result computed at epoch `e` is
//! served from cache while `current_epoch − e < ttl_rounds`, and every
//! [`ResultCache::advance_round`] (called when an update round /
//! replication wave lands) *expires* entries that aged out. `ttl_rounds =
//! 1` means "valid until the next round"; `0` disables caching.
//!
//! The incremental update path is finer: a [`RecordDelta`] names exactly
//! which servers changed and summarizes the changed values, so
//! [`ResultCache::invalidate_delta`] purges only entries whose search
//! scope reaches a dirty server **and** whose query may match the delta
//! summary — everything else stays hot across the round. Expiry (TTL
//! aging) and invalidation (delta-driven purges) are counted separately.
//!
//! Keys are structural query fingerprints ([`query_fingerprint`]) combined
//! with the entry server, the requester (policy-filtered result sets differ
//! per requester) and the search scope. Hit/miss/expiry/invalidation counts
//! are kept internally and mirrored into the OpenMetrics surface by the
//! runtime (`roads.cache.*`).

use crate::engine::RoadsNetwork;
use crate::planner::QueryPlan;
use crate::queryexec::{execute_query, execute_query_planned, QueryOutcome, SearchScope};
use crate::store::DeltaOutcome;
use crate::tree::{HierarchyTree, ServerId};
use roads_netsim::DelaySpace;
use roads_records::{wire::MSG_HEADER_BYTES, Predicate, Query, Record, Value, WireSize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Structural fingerprint of a query's predicates (FNV-1a over attribute
/// ids, variant tags and value bits). Two queries with the same predicates
/// collide regardless of their [`QueryId`](roads_records::QueryId) — the id
/// names the submission, not the question.
pub fn query_fingerprint(q: &Query) -> u64 {
    fn mix(h: u64, bytes: &[u8]) -> u64 {
        bytes
            .iter()
            .fold(h, |h, &b| (h ^ b as u64).wrapping_mul(0x100_0000_01b3))
    }
    fn mix_value(h: u64, v: &Value) -> u64 {
        match v {
            Value::Float(f) => mix(mix(h, &[10]), &f.to_bits().to_le_bytes()),
            Value::Int(i) => mix(mix(h, &[11]), &i.to_le_bytes()),
            Value::Text(s) => mix(mix(h, &[12]), s.as_bytes()),
            Value::Cat(s) => mix(mix(h, &[13]), s.as_bytes()),
            Value::Timestamp(t) => mix(mix(h, &[14]), &t.to_le_bytes()),
        }
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for p in q.predicates() {
        match p {
            Predicate::Range { attr, lo, hi } => {
                h = mix(h, &[1]);
                h = mix(h, &attr.0.to_le_bytes());
                h = mix(h, &lo.to_bits().to_le_bytes());
                h = mix(h, &hi.to_bits().to_le_bytes());
            }
            Predicate::Eq { attr, value } => {
                h = mix(h, &[2]);
                h = mix(h, &attr.0.to_le_bytes());
                h = mix_value(h, value);
            }
            Predicate::OneOf { attr, values } => {
                h = mix(h, &[3]);
                h = mix(h, &attr.0.to_le_bytes());
                for v in values {
                    h = mix(h, v.as_bytes());
                    h = mix(h, &[0xff]);
                }
            }
        }
    }
    h
}

/// A cached answer. The simulation plane stores match locations and counts
/// only; the threaded runtime also stores the (policy-filtered) records it
/// returned.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CachedResult {
    /// Servers whose local search produced at least one record.
    pub matching_servers: Vec<ServerId>,
    /// Total matching records.
    pub matching_records: usize,
    /// The records themselves (empty in the simulation plane).
    pub records: Vec<Record>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    at: ServerId,
    requester: u64,
    /// `u64::MAX` encodes an unscoped (full-hierarchy) search.
    levels_up: u64,
    fingerprint: u64,
}

fn cache_key(at: ServerId, requester: u64, scope: SearchScope, q: &Query) -> CacheKey {
    CacheKey {
        at,
        requester,
        levels_up: scope.levels_up.map(|l| l as u64).unwrap_or(u64::MAX),
        fingerprint: query_fingerprint(q),
    }
}

#[derive(Debug, Clone)]
struct Slot {
    stored_epoch: u64,
    /// The question this slot answers, kept so delta invalidation can test
    /// it against the summary of changed record values.
    query: Query,
    result: CachedResult,
}

/// True when a query entered at `at` with `levels_up` scope
/// (`u64::MAX` = unscoped) could have reached records attached at `d`.
///
/// A scoped search from `at` contacts replica targets that are children of
/// ancestors at most `levels_up + 1` levels above the entry, then descends
/// their whole subtrees, plus local-only probes of ancestors at most
/// `levels_up` above. All of that lies inside the subtree rooted at the
/// entry's ancestor `levels_up + 1` levels up — so a dirty server outside
/// that subtree provably cannot change the cached answer.
fn scope_covers(tree: &HierarchyTree, at: ServerId, levels_up: u64, d: ServerId) -> bool {
    if levels_up == u64::MAX {
        return true;
    }
    let mut anc = at;
    for _ in 0..=levels_up.min(tree.capacity() as u64) {
        match tree.parent(anc) {
            Some(p) => anc = p,
            None => break,
        }
    }
    let mut cur = d;
    loop {
        if cur == anc {
            return true;
        }
        match tree.parent(cur) {
            Some(p) => cur = p,
            None => return false,
        }
    }
}

/// TTL'd per-server result cache. Thread-safe: lookups and inserts take an
/// internal lock, counters are atomic, so one cache can serve a whole
/// cluster of server threads.
#[derive(Debug)]
pub struct ResultCache {
    ttl_rounds: u64,
    epoch: AtomicU64,
    map: Mutex<HashMap<CacheKey, Slot>>,
    hits: AtomicU64,
    misses: AtomicU64,
    expired: AtomicU64,
    invalidated: AtomicU64,
}

impl ResultCache {
    /// A cache whose entries survive `ttl_rounds` update rounds
    /// (`0` disables caching: every lookup misses, inserts are dropped).
    pub fn new(ttl_rounds: u64) -> Self {
        ResultCache {
            ttl_rounds,
            epoch: AtomicU64::new(0),
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
        }
    }

    /// The configured TTL in update rounds.
    pub fn ttl_rounds(&self) -> u64 {
        self.ttl_rounds
    }

    /// Update rounds observed so far.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// An update round / replication wave landed: advance the epoch and
    /// purge entries that aged past the TTL. Returns how many entries
    /// *expired* — TTL aging, distinct from delta-driven invalidation
    /// ([`ResultCache::invalidate_delta`]).
    pub fn advance_round(&self) -> u64 {
        let now = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        let mut map = self.map.lock().expect("cache lock");
        let before = map.len();
        map.retain(|_, slot| now.saturating_sub(slot.stored_epoch) < self.ttl_rounds);
        let purged = (before - map.len()) as u64;
        self.expired.fetch_add(purged, Ordering::Relaxed);
        purged
    }

    /// A [`RecordDelta`](crate::store::RecordDelta) landed: purge exactly
    /// the entries it can have changed. An entry is invalidated iff some
    /// dirty server lies inside the entry's search-scope subtree **and**
    /// the cached query may match the summary of the changed record values
    /// (summaries never produce false negatives, so retaining on a
    /// non-match is sound). Returns how many entries were invalidated.
    pub fn invalidate_delta(&self, tree: &HierarchyTree, outcome: &DeltaOutcome) -> u64 {
        if outcome.dirty.is_empty() {
            return 0;
        }
        let mut map = self.map.lock().expect("cache lock");
        let before = map.len();
        map.retain(|key, slot| {
            let scope_hit = outcome
                .dirty
                .iter()
                .any(|&d| scope_covers(tree, key.at, key.levels_up, d));
            !(scope_hit && outcome.delta_summary.may_match(&slot.query))
        });
        let purged = (before - map.len()) as u64;
        self.invalidated.fetch_add(purged, Ordering::Relaxed);
        purged
    }

    /// Look up a still-valid cached answer; counts a hit or a miss.
    pub fn lookup(
        &self,
        at: ServerId,
        requester: u64,
        scope: SearchScope,
        q: &Query,
    ) -> Option<CachedResult> {
        let found = if self.ttl_rounds == 0 {
            None
        } else {
            let now = self.epoch();
            let map = self.map.lock().expect("cache lock");
            map.get(&cache_key(at, requester, scope, q))
                .filter(|slot| now.saturating_sub(slot.stored_epoch) < self.ttl_rounds)
                .map(|slot| slot.result.clone())
        };
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Store an answer computed at the current epoch. Only complete
    /// answers should be inserted — the cache replays them verbatim.
    pub fn insert(
        &self,
        at: ServerId,
        requester: u64,
        scope: SearchScope,
        q: &Query,
        result: CachedResult,
    ) {
        if self.ttl_rounds == 0 {
            return;
        }
        let stored_epoch = self.epoch();
        let mut map = self.map.lock().expect("cache lock");
        map.insert(
            cache_key(at, requester, scope, q),
            Slot {
                stored_epoch,
                query: q.clone(),
                result,
            },
        );
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.map.lock().expect("cache lock").len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups answered from cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that fell through to execution.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries that aged past the TTL ([`ResultCache::advance_round`]).
    pub fn expired(&self) -> u64 {
        self.expired.load(Ordering::Relaxed)
    }

    /// Entries purged because a record delta could have changed their
    /// answer ([`ResultCache::invalidate_delta`]).
    pub fn invalidated(&self) -> u64 {
        self.invalidated.load(Ordering::Relaxed)
    }

    /// Fraction of lookups answered from cache (0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits() as f64;
        let m = self.misses() as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }
}

/// [`execute_query`](crate::queryexec::execute_query) through `cache`: a
/// valid cached answer is served by the entry alone (one query message, no
/// fan-out, zero added latency — the client is co-located); a miss
/// executes (planned when `plan` is given, greedy otherwise) and populates
/// the cache. Returns the outcome and whether it was a cache hit.
pub fn execute_query_cached(
    net: &RoadsNetwork,
    delays: &DelaySpace,
    query: &Query,
    start: ServerId,
    scope: SearchScope,
    cache: &ResultCache,
    plan: Option<&QueryPlan>,
) -> (QueryOutcome, bool) {
    if let Some(r) = cache.lookup(start, 0, scope, query) {
        let outcome = QueryOutcome {
            latency_ms: 0.0,
            query_bytes: (query.wire_size() + MSG_HEADER_BYTES) as u64,
            query_messages: 1,
            servers_contacted: 1,
            matching_servers: r.matching_servers,
            matching_records: r.matching_records,
        };
        return (outcome, true);
    }
    let outcome = match plan {
        Some(p) => execute_query_planned(net, delays, query, start, scope, p),
        None => execute_query(net, delays, query, start, scope),
    };
    cache.insert(
        start,
        0,
        scope,
        query,
        CachedResult {
            matching_servers: outcome.matching_servers.clone(),
            matching_records: outcome.matching_records,
            records: Vec::new(),
        },
    );
    (outcome, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RoadsConfig;
    use roads_records::{OwnerId, QueryBuilder, QueryId, RecordId, Schema};
    use roads_summary::SummaryConfig;

    fn network(n: usize) -> (RoadsNetwork, DelaySpace) {
        let schema = Schema::unit_numeric(1);
        let cfg = RoadsConfig {
            max_children: 3,
            summary: SummaryConfig::with_buckets(200),
            ..RoadsConfig::paper_default()
        };
        let records: Vec<Vec<Record>> = (0..n)
            .map(|s| {
                vec![Record::new_unchecked(
                    RecordId(s as u64),
                    OwnerId(s as u32),
                    vec![Value::Float(s as f64 / n as f64)],
                )]
            })
            .collect();
        let net = RoadsNetwork::build(schema, cfg, records);
        let delays = DelaySpace::paper(n, 77);
        (net, delays)
    }

    fn q(net: &RoadsNetwork, id: u64, lo: f64, hi: f64) -> Query {
        QueryBuilder::new(net.schema(), QueryId(id))
            .range("x0", lo, hi)
            .build()
    }

    #[test]
    fn fingerprint_ignores_query_id_but_not_predicates() {
        let (net, _) = network(10);
        let a = q(&net, 1, 0.2, 0.4);
        let b = q(&net, 999, 0.2, 0.4);
        let c = q(&net, 1, 0.2, 0.4001);
        assert_eq!(query_fingerprint(&a), query_fingerprint(&b));
        assert_ne!(query_fingerprint(&a), query_fingerprint(&c));
    }

    #[test]
    fn repeated_query_hits_until_ttl_expires() {
        let (net, delays) = network(20);
        let cache = ResultCache::new(2);
        let query = q(&net, 1, 0.0, 1.0);
        let start = ServerId(5);
        let scope = SearchScope::full();

        let (first, hit) = execute_query_cached(&net, &delays, &query, start, scope, &cache, None);
        assert!(!hit);
        let (second, hit) = execute_query_cached(&net, &delays, &query, start, scope, &cache, None);
        assert!(hit, "identical repeat must hit");
        assert_eq!(second.matching_servers, first.matching_servers);
        assert_eq!(second.matching_records, first.matching_records);
        assert_eq!(second.servers_contacted, 1, "served by the entry alone");
        assert!(second.query_bytes < first.query_bytes);

        // One round later the entry is still valid (ttl 2)…
        cache.advance_round();
        let (_, hit) = execute_query_cached(&net, &delays, &query, start, scope, &cache, None);
        assert!(hit);
        // …but the next round ages it out.
        let purged = cache.advance_round();
        assert_eq!(purged, 1);
        let (_, hit) = execute_query_cached(&net, &delays, &query, start, scope, &cache, None);
        assert!(!hit, "epoch advance expires");
        assert_eq!(cache.expired(), 1);
        assert_eq!(cache.invalidated(), 0, "TTL aging is not invalidation");
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 2);
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn delta_invalidates_only_scope_and_summary_matching_entries() {
        let (net, delays) = network(20);
        let cache = ResultCache::new(100);
        let leaf = *net.tree().leaves().iter().max().unwrap();

        // Three cached answers at the same entry: one full-scope query that
        // matches the churned values, one full-scope query that provably
        // cannot, and one zero-levels-up scoped query.
        let wide = q(&net, 1, 0.0, 1.0);
        let narrow = q(&net, 2, 0.90, 0.95); // churn happens at 0.5
        let scoped = q(&net, 3, 0.0, 1.0);
        let _ = execute_query_cached(
            &net,
            &delays,
            &wide,
            leaf,
            SearchScope::full(),
            &cache,
            None,
        );
        let _ = execute_query_cached(
            &net,
            &delays,
            &narrow,
            leaf,
            SearchScope::full(),
            &cache,
            None,
        );
        let _ = execute_query_cached(
            &net,
            &delays,
            &scoped,
            leaf,
            SearchScope::levels(0),
            &cache,
            None,
        );
        assert_eq!(cache.len(), 3);

        // Churn a record valued 0.5 at the root — inside every full scope,
        // but outside the leaf's zero-levels-up subtree.
        let mut net = net;
        let root = net.tree().root();
        assert!(
            !net.tree()
                .subtree(net.tree().parent(leaf).unwrap())
                .contains(&root),
            "test premise: the root is outside the leaf's levels(0) scope"
        );
        let mut delta = crate::store::RecordDelta::new();
        delta.insert(
            root,
            Record::new_unchecked(RecordId(900), OwnerId(0), vec![Value::Float(0.5)]),
        );
        let outcome = net.apply(&delta);
        let purged = cache.invalidate_delta(net.tree(), &outcome);

        assert_eq!(purged, 1, "only the wide full-scope entry is stale");
        assert_eq!(cache.invalidated(), 1);
        assert_eq!(cache.expired(), 0);
        assert!(
            cache
                .lookup(leaf, 0, SearchScope::full(), &narrow)
                .is_some(),
            "summary-mismatched query survives"
        );
        assert!(
            cache
                .lookup(leaf, 0, SearchScope::levels(0), &scoped)
                .is_some(),
            "out-of-scope entry survives"
        );
        assert!(cache.lookup(leaf, 0, SearchScope::full(), &wide).is_none());
    }

    #[test]
    fn delta_invalidation_respects_scope_subtrees() {
        let (net, delays) = network(20);
        let mut net = net;
        let cache = ResultCache::new(100);
        let leaf = *net.tree().leaves().iter().max().unwrap();
        let query = q(&net, 1, 0.0, 1.0);
        let _ = execute_query_cached(
            &net,
            &delays,
            &query,
            leaf,
            SearchScope::levels(0),
            &cache,
            None,
        );

        // A change *at the leaf itself* is inside every scope rooted there.
        let mut delta = crate::store::RecordDelta::new();
        delta.insert(
            leaf,
            Record::new_unchecked(RecordId(901), OwnerId(1), vec![Value::Float(0.25)]),
        );
        let outcome = net.apply(&delta);
        assert_eq!(cache.invalidate_delta(net.tree(), &outcome), 1);
        assert!(cache.is_empty());
    }

    #[test]
    fn empty_delta_invalidates_nothing() {
        let (mut net, delays) = network(10);
        let cache = ResultCache::new(10);
        let query = q(&net, 1, 0.0, 1.0);
        let _ = execute_query_cached(
            &net,
            &delays,
            &query,
            ServerId(2),
            SearchScope::full(),
            &cache,
            None,
        );
        let outcome = net.apply(&crate::store::RecordDelta::new());
        assert_eq!(cache.invalidate_delta(net.tree(), &outcome), 0);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.invalidated(), 0);
    }

    #[test]
    fn cache_is_keyed_by_entry_scope_and_requester() {
        let (net, delays) = network(20);
        let cache = ResultCache::new(10);
        let query = q(&net, 1, 0.0, 1.0);
        let leaf = *net.tree().leaves().iter().max().unwrap();
        let _ = execute_query_cached(
            &net,
            &delays,
            &query,
            leaf,
            SearchScope::full(),
            &cache,
            None,
        );
        // Different entry: miss.
        let (_, hit) = execute_query_cached(
            &net,
            &delays,
            &query,
            ServerId(0),
            SearchScope::full(),
            &cache,
            None,
        );
        assert!(!hit);
        // Different scope at the original entry: miss.
        let (_, hit) = execute_query_cached(
            &net,
            &delays,
            &query,
            leaf,
            SearchScope::levels(0),
            &cache,
            None,
        );
        assert!(!hit);
        // Different requester at the original key: miss.
        assert!(cache.lookup(leaf, 7, SearchScope::full(), &query).is_none());
        // Original key still hits.
        assert!(cache.lookup(leaf, 0, SearchScope::full(), &query).is_some());
    }

    #[test]
    fn ttl_zero_disables_caching() {
        let (net, delays) = network(10);
        let cache = ResultCache::new(0);
        let query = q(&net, 1, 0.0, 1.0);
        for _ in 0..3 {
            let (_, hit) = execute_query_cached(
                &net,
                &delays,
                &query,
                ServerId(2),
                SearchScope::full(),
                &cache,
                None,
            );
            assert!(!hit);
        }
        assert_eq!(cache.hits(), 0);
        assert!(cache.is_empty());
    }
}
