//! ROADS — Replication Overlay Assisted resource Discovery Service.
//!
//! Implementation of the paper's primary contribution (§III):
//!
//! * [`tree`] — the federated hierarchy: incremental, balance-aware join
//!   (least-depth / least-descendants walk), root paths, loop avoidance,
//!   departure handling.
//! * [`overlay`] — the replication overlay: each server replicates the
//!   branch summaries of its siblings, its ancestors and its ancestors'
//!   siblings, so combined they cover the whole hierarchy and any server can
//!   be a query entry point.
//! * [`engine`] — a converged ROADS network: per-server record stores,
//!   bottom-up branch-summary aggregation, conservative query evaluation
//!   returning redirect targets.
//! * [`queryexec`] — client-driven query execution over a
//!   [`roads_netsim::DelaySpace`]: redirection rounds, parallel branch
//!   descent, latency and byte accounting exactly as the paper measures
//!   them.
//! * [`batch`] — a worker pool evaluating whole query batches over one
//!   `Arc`-shared converged network (throughput experiments, fig. 14).
//! * [`updates`] — per-round update-overhead accounting (summary export,
//!   bottom-up aggregation, top-down replication).
//! * [`maintenance`] — the live protocol over the discrete-event simulator:
//!   heartbeats, failure detection, grandparent rejoin, root election.
//! * [`metrics`] — latency statistics helpers.
//! * [`audit`] — ground-truth auditing of the overlay: epoch-stamped
//!   replica copies ([`ReplicaLedger`]), staleness ages, divergence scores
//!   and per-level false-positive/false-negative probes.
//! * [`planner`] — replica-aware query planning: greedy set-cover source
//!   selection over the entry's replicated branch summaries, ancestor
//!   probes pruned by replicated *local* summaries, batch dispatch.
//! * [`store`] — mutable sharded per-server record stores: concurrent
//!   readers, per-shard write locks, exact incrementally-maintained shard
//!   summaries, and the [`RecordDelta`] plane one incremental update round
//!   applies.
//! * [`cache`] — per-server TTL'd result cache keyed by structural query
//!   fingerprints; entries age out by TTL and are invalidated per subtree
//!   by record deltas (dirty-scope intersection + delta-summary match).

pub mod audit;
pub mod batch;
pub mod cache;
pub mod config;
pub mod engine;
pub mod load;
pub mod maintenance;
pub mod metrics;
pub mod overlay;
pub mod planner;
pub mod policy;
pub mod protocol;
pub mod queryexec;
pub mod store;
pub mod tree;
pub mod updates;

pub use audit::{
    audit_probe, authoritative_branch, DivergenceReport, LevelAudit, ReplicaEntry, ReplicaLedger,
};
pub use batch::QueryBatch;
pub use cache::{execute_query_cached, query_fingerprint, CachedResult, ResultCache};
pub use config::RoadsConfig;
pub use engine::{BuildOptions, EvalResult, RoadsNetwork};
pub use load::{choose_entry, EntryPolicy, LoadTracker};
pub use metrics::{record_query_outcome, LatencyStats};
pub use overlay::{replication_set, ReplicaRole, ReplicationSet};
pub use planner::{
    greedy_set_cover, plan_query, plan_query_with, CoverCandidate, PlanAction, PlannedContact,
    QueryPlan,
};
pub use policy::{
    apply_policy, Disclosure, OpenPolicy, RequesterId, SharingPolicy, TieredPolicy, TrustClass,
};
pub use queryexec::{
    execute_query, execute_query_explained, execute_query_mode, execute_query_planned,
    execute_query_planned_traced, execute_query_recorded, execute_query_traced, explain_from_trace,
    record_query_events, trace_to_telemetry, ForwardingMode, QueryOutcome, SearchScope, TraceEvent,
    TraceRole,
};
pub use store::{
    ChangeEffect, DeltaOutcome, RecordChange, RecordDelta, ShardedStore, SHARDS_PER_STORE,
};
pub use tree::{BalanceStats, HierarchyTree, ServerId, TreeError};
pub use updates::{
    record_update_round_events, update_round, update_round_delta, update_round_full,
    update_round_stamped, UpdateBreakdown,
};
