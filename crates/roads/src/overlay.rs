//! The replication overlay (§III-C).
//!
//! "Each server replicates the branch summaries of its siblings, its
//! ancestors, and its ancestors' siblings (in addition to storing the
//! summaries from its children and directly attached owners). We choose
//! such nodes such that each server stores summaries which combined
//! together cover the whole hierarchy."
//!
//! In Fig. 2: server D₁ replicates its sibling D₂, its ancestors C₁, B₁, A,
//! and their siblings C₂, B₂ — so a search can start at D₁ and be redirected
//! straight to C₂ and B₂ without climbing to the root.

use crate::tree::{HierarchyTree, ServerId};

/// Why a server replicates a particular branch summary (§III-C's three
/// overlay constituents). The audit plane labels every ledger entry with
/// its role so divergence can be attributed to a constituent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ReplicaRole {
    /// A sibling's branch.
    Sibling,
    /// An ancestor's branch (coverage accounting and scope widening).
    Ancestor,
    /// An ancestor's sibling's branch (cross-branch redirect shortcut).
    AncestorSibling,
}

/// The set of remote servers whose branch summaries one server replicates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicationSet {
    /// Siblings of the server itself.
    pub siblings: Vec<ServerId>,
    /// Ancestors, nearest first (parent … root).
    pub ancestors: Vec<ServerId>,
    /// Siblings of each ancestor, flattened, nearest ancestor's first.
    pub ancestor_siblings: Vec<ServerId>,
}

impl ReplicationSet {
    /// All replicated servers in one list (siblings, then ancestor
    /// siblings, then ancestors).
    pub fn all(&self) -> Vec<ServerId> {
        let mut v = self.siblings.clone();
        v.extend(&self.ancestor_siblings);
        v.extend(&self.ancestors);
        v
    }

    /// The subset useful as *query redirect targets*: siblings and ancestor
    /// siblings. (Ancestor summaries are stored for coverage accounting and
    /// scope widening, but redirecting a query to an ancestor would
    /// re-search the requester's own branch.)
    pub fn redirect_targets(&self) -> Vec<ServerId> {
        let mut v = self.siblings.clone();
        v.extend(&self.ancestor_siblings);
        v
    }

    /// Servers that can stand in for this one when it is unreachable,
    /// best first: siblings (they replicate this server's branch summary
    /// and sit closest to its subtree), then ancestors nearest-first (the
    /// parent holds the branch summaries of *all* this server's children
    /// and can route around it directly). Ancestor siblings replicate the
    /// branch summary too but sit in foreign branches with no better
    /// knowledge than a sibling, so they are not nominated.
    pub fn failover_candidates(&self) -> Vec<ServerId> {
        let mut v = self.siblings.clone();
        v.extend(&self.ancestors);
        v
    }

    /// Every replicated server tagged with its overlay role, in [`all`]
    /// order (siblings, ancestor siblings, ancestors).
    ///
    /// [`all`]: ReplicationSet::all
    pub fn entries(&self) -> Vec<(ServerId, ReplicaRole)> {
        let mut v: Vec<(ServerId, ReplicaRole)> = self
            .siblings
            .iter()
            .map(|&s| (s, ReplicaRole::Sibling))
            .collect();
        v.extend(
            self.ancestor_siblings
                .iter()
                .map(|&s| (s, ReplicaRole::AncestorSibling)),
        );
        v.extend(self.ancestors.iter().map(|&s| (s, ReplicaRole::Ancestor)));
        v
    }

    /// Total number of replicated summaries (the paper's per-node storage
    /// term `k·i` for a level-`i` node with degree `k`).
    pub fn len(&self) -> usize {
        self.siblings.len() + self.ancestors.len() + self.ancestor_siblings.len()
    }

    /// True when the server replicates nothing (the root with no children).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Compute the replication set of `s` under the converged hierarchy.
pub fn replication_set(tree: &HierarchyTree, s: ServerId) -> ReplicationSet {
    let siblings = tree.siblings(s);
    let ancestors = tree.ancestors(s);
    let ancestor_siblings = ancestors.iter().flat_map(|&a| tree.siblings(a)).collect();
    ReplicationSet {
        siblings,
        ancestors,
        ancestor_siblings,
    }
}

/// Verify the overlay coverage invariant for `s`: the branches of
/// `children(s) ∪ siblings(s) ∪ ancestor_siblings(s)` plus `s` itself
/// partition the whole hierarchy. Returns the servers covered.
pub fn coverage(tree: &HierarchyTree, s: ServerId) -> Vec<ServerId> {
    let rs = replication_set(tree, s);
    let mut covered = vec![s];
    for &c in tree.children(s) {
        covered.extend(tree.subtree(c));
    }
    for t in rs.redirect_targets() {
        covered.extend(tree.subtree(t));
    }
    covered.extend(&rs.ancestors);
    covered.sort();
    covered.dedup();
    covered
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::HierarchyTree;

    #[test]
    fn fig2_shape() {
        // Three full levels of a binary hierarchy = Fig. 2's shape.
        let t = HierarchyTree::build(15, 2);
        let d1 = *t.leaves().iter().min().unwrap();
        let rs = replication_set(&t, d1);
        // One sibling (D2), three ancestors (C1, B1, A), and one sibling per
        // non-root ancestor (C2, B2) — the root has no siblings.
        assert_eq!(rs.siblings.len(), 1);
        assert_eq!(rs.ancestors.len(), 3);
        assert_eq!(rs.ancestor_siblings.len(), 2);
        assert_eq!(rs.len(), 6);
    }

    #[test]
    fn failover_candidates_prefer_siblings_then_nearest_ancestor() {
        let t = HierarchyTree::build(15, 2);
        let d1 = *t.leaves().iter().min().unwrap();
        let rs = replication_set(&t, d1);
        let cands = rs.failover_candidates();
        assert_eq!(cands.len(), rs.siblings.len() + rs.ancestors.len());
        assert_eq!(&cands[..rs.siblings.len()], &rs.siblings[..]);
        // Ancestors follow, parent first: the parent already stores every
        // branch summary of the dead server's children.
        assert_eq!(cands[rs.siblings.len()], t.parent(d1).unwrap());
        // Candidates never include the server itself.
        assert!(!cands.contains(&d1));
    }

    #[test]
    fn entries_tag_roles_in_all_order() {
        let t = HierarchyTree::build(15, 2);
        let d1 = *t.leaves().iter().min().unwrap();
        let rs = replication_set(&t, d1);
        let entries = rs.entries();
        let ids: Vec<ServerId> = entries.iter().map(|&(s, _)| s).collect();
        assert_eq!(ids, rs.all(), "entries follow all() order");
        let count = |role: ReplicaRole| entries.iter().filter(|&&(_, r)| r == role).count();
        assert_eq!(count(ReplicaRole::Sibling), rs.siblings.len());
        assert_eq!(count(ReplicaRole::Ancestor), rs.ancestors.len());
        assert_eq!(
            count(ReplicaRole::AncestorSibling),
            rs.ancestor_siblings.len()
        );
    }

    #[test]
    fn root_replicates_nothing() {
        let t = HierarchyTree::build(15, 2);
        let rs = replication_set(&t, t.root());
        assert!(rs.is_empty());
        assert!(rs.redirect_targets().is_empty());
    }

    #[test]
    fn coverage_is_complete_everywhere() {
        // The paper's invariant: from ANY server, own branch + replicated
        // branches cover the whole hierarchy.
        for (n, k) in [(15, 2), (40, 3), (156, 5), (100, 8)] {
            let t = HierarchyTree::build(n, k);
            for s in t.servers() {
                let covered = coverage(&t, s);
                assert_eq!(
                    covered.len(),
                    n,
                    "server {s} covers {}/{n} servers (k={k})",
                    covered.len()
                );
            }
        }
    }

    #[test]
    fn redirect_targets_disjoint_from_own_branch() {
        let t = HierarchyTree::build(40, 3);
        for s in t.servers() {
            let own: Vec<ServerId> = t.subtree(s);
            for target in replication_set(&t, s).redirect_targets() {
                assert!(
                    !own.contains(&target),
                    "redirect target {target} inside {s}'s own branch"
                );
            }
        }
    }

    #[test]
    fn storage_matches_level_formula() {
        // §IV Table I: a level-i node with degree k maintains k summaries
        // from children and ~k·i from ancestors and ancestors' siblings.
        // Exactly: i ancestors + (k-1) siblings per level (own + ancestors')
        // = i + i·(k-1) + (k-1) = full k·i + (k-1) when the tree is full.
        let t = HierarchyTree::build(156, 5); // full 4-level 5-ary tree
        for s in t.servers() {
            let i = t.depth(s);
            let rs = replication_set(&t, s);
            if i == 0 {
                assert_eq!(rs.len(), 0);
            } else {
                // i ancestors, (k−1) own siblings, (k−1) siblings for each
                // non-root ancestor (the root has none): (i−1)·(k−1).
                let expected = i + 4 + (i - 1) * 4;
                assert_eq!(rs.len(), expected, "server {s} at level {i}");
            }
        }
    }
}
