//! Latency statistics and query-metric recording.
//!
//! The summary type itself lives in `roads-telemetry` so that every crate
//! in the workspace — the simulator harness, the threaded prototype, and
//! the figure binaries — shares one latency currency (now including p99).
//! It is re-exported here under its historical path for existing callers.

pub use roads_telemetry::LatencyStats;

use crate::queryexec::QueryOutcome;
use roads_telemetry::Registry;

/// Record one executed query's outcome into `reg` under the `roads.*`
/// namespace: query/message/byte counters plus latency and fan-out
/// histograms. Figure binaries snapshot the registry into their JSON
/// export.
pub fn record_query_outcome(reg: &Registry, out: &QueryOutcome) {
    reg.counter("roads.queries").inc();
    reg.counter("roads.query_messages").add(out.query_messages);
    reg.counter("roads.query_bytes").add(out.query_bytes);
    reg.counter("roads.matching_records")
        .add(out.matching_records as u64);
    reg.histogram("roads.query_latency_ms")
        .record(out.latency_ms);
    reg.histogram("roads.servers_contacted")
        .record(out.servers_contacted as f64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_none() {
        assert!(LatencyStats::from_samples(&[]).is_none());
    }

    #[test]
    fn single_sample() {
        let s = LatencyStats::from_samples(&[42.0]).unwrap();
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.p50, 42.0);
        assert_eq!(s.p90, 42.0);
        assert_eq!(s.p99, 42.0);
        assert_eq!(s.min, 42.0);
        assert_eq!(s.max, 42.0);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = LatencyStats::from_samples(&samples).unwrap();
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p90, 90.0);
        assert_eq!(s.p99, 99.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-12);
    }

    #[test]
    fn unsorted_input_ok() {
        let s = LatencyStats::from_samples(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.p50, 2.0);
        assert_eq!(s.max, 3.0);
    }

    #[test]
    fn outcome_recorded_into_registry() {
        let reg = Registry::new();
        let out = QueryOutcome {
            latency_ms: 12.5,
            query_bytes: 400,
            query_messages: 5,
            servers_contacted: 5,
            matching_servers: vec![],
            matching_records: 2,
        };
        record_query_outcome(&reg, &out);
        record_query_outcome(&reg, &out);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["roads.queries"], 2);
        assert_eq!(snap.counters["roads.query_bytes"], 800);
        assert_eq!(snap.counters["roads.matching_records"], 4);
        assert_eq!(snap.histograms["roads.query_latency_ms"].count, 2);
    }
}
